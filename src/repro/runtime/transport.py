"""Reliable WAN transport: timeout/retransmit/ack for inter-cluster sends.

The simulator's base network delivers every message; under an injected
:class:`~repro.faults.plan.FaultPlan` the WAN drops, and an application
whose protocol assumes delivery deadlocks.  :class:`ReliableTransport`
restores the delivery guarantee the way a WAN transport would: each
inter-cluster send becomes a sequenced wire message that is retransmitted
with exponential backoff until a (64-byte by default) ack returns, and
the receiving side acks every arrival, drops duplicates, and releases
messages to the application **in per-flow sequence order** — so the
per-(src, dst) FIFO the runtime protocols rely on survives
retransmission-induced reordering on the wire.

Wire protocol (all tags are tuples, invisible to applications):

- data:  tag ``("_rt", src, dst, seq)``, payload a :class:`_DataEnvelope`
  carrying the application tag/size/payload and the original depart time;
- ack:   tag ``("_rt-ack", src, dst, seq)``, sent from ``dst`` back to
  ``src`` the moment the data reaches the destination endpoint.

Acks and retransmissions ride the normal router path, so they contend for
gateways and WAN bandwidth like any other traffic — loss does not just
delay messages, it *costs* the degraded link capacity, which is exactly
the effect the degraded-mode experiments measure.  Acks are issued by the
transport layer without host overhead, modelling the LANai co-processor
handling of the DAS network stack.

The retransmission timeout is ``max(min_rto, rto_factor *
uncontended_rtt)`` of the data + ack pair, doubling (``backoff``) per
retry; ``max_retries`` unacked transmissions raise :class:`TransportError`
out of ``machine.run()`` — a typed failure, never a hang.

Determinism: the transport introduces no randomness at all; timers and
retransmissions are scheduled purely from engine time, so a fixed seed
and plan replay bit-identically.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Tuple

from ..network.message import Message
from ..obs.events import RetransmitEvent


class TransportError(RuntimeError):
    """A reliable-transport send exhausted its retransmission budget."""

    def __init__(self, src: int, dst: int, tag, seq: int,
                 attempts: int) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.seq = seq
        self.attempts = attempts
        super().__init__(
            f"WAN send {src}->{dst} tag={tag!r} (flow seq {seq}) got no ack "
            f"after {attempts} transmission(s) — link presumed dead")


class _DataEnvelope:
    """What a reliable data message carries on the wire."""

    __slots__ = ("seq", "tag", "size", "payload", "send_time")

    def __init__(self, seq: int, tag, size: int, payload,
                 send_time: float) -> None:
        self.seq = seq
        self.tag = tag
        self.size = size
        self.payload = payload
        self.send_time = send_time


class _PendingSend:
    """Sender-side state of one unacked flow sequence number."""

    __slots__ = ("src", "dst", "seq", "envelope", "rto", "attempts")

    def __init__(self, src: int, dst: int, seq: int,
                 envelope: _DataEnvelope, rto: float) -> None:
        self.src = src
        self.dst = dst
        self.seq = seq
        self.envelope = envelope
        self.rto = rto
        self.attempts = 0


class _RxState:
    """Receiver-side reassembly state of one (src, dst) flow."""

    __slots__ = ("next_seq", "buffer")

    def __init__(self) -> None:
        self.next_seq = 0
        #: out-of-order envelopes awaiting the in-order flush, keyed by seq
        self.buffer: Dict[int, _DataEnvelope] = {}


class ReliableTransport:
    """Sequenced, acked, retransmitting delivery for inter-cluster sends."""

    def __init__(self, config, machine) -> None:
        self.config = config
        self.machine = machine
        self._engine = machine.engine
        self._router = machine.router
        self._deliver_fns = machine._deliver
        self._next_seq: Dict[Tuple[int, int], int] = {}
        self._pending: Dict[Tuple[int, int, int], _PendingSend] = {}
        self._rx: Dict[Tuple[int, int], _RxState] = {}
        # Pre-bound wire-delivery callbacks handed to Machine.transmit.
        self._on_data_cb = self._on_data
        self._on_ack_cb = self._on_ack

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def send(self, msg: Message, depart_time: float) -> None:
        """Take over one inter-cluster application send (from ``ctx.send``)."""
        src, dst = msg.src, msg.dst
        flow = (src, dst)
        seq = self._next_seq.get(flow, 0)
        self._next_seq[flow] = seq + 1
        envelope = _DataEnvelope(seq, msg.tag, msg.size, msg.payload,
                                 depart_time)
        config = self.config
        rtt = (self._router.uncontended_time(src, dst, msg.size)
               + self._router.uncontended_time(dst, src, config.ack_bytes))
        rto = max(config.min_rto, config.rto_factor * rtt)
        entry = _PendingSend(src, dst, seq, envelope, rto)
        self._pending[(src, dst, seq)] = entry
        self._transmit(entry, depart_time)

    def _transmit(self, entry: _PendingSend, when: float) -> None:
        entry.attempts += 1
        envelope = entry.envelope
        wire = Message(entry.src, entry.dst,
                       ("_rt", entry.src, entry.dst, entry.seq),
                       envelope.size, envelope)
        self.machine.transmit(wire, when, deliver=self._on_data_cb)
        self._engine.call_at(
            when + entry.rto,
            partial(self._on_timeout, entry, entry.attempts))

    def _on_timeout(self, entry: _PendingSend, attempt: int) -> None:
        key = (entry.src, entry.dst, entry.seq)
        if self._pending.get(key) is not entry or entry.attempts != attempt:
            return  # acked, or superseded by a newer retransmission timer
        config = self.config
        if entry.attempts > config.max_retries:
            raise TransportError(entry.src, entry.dst, entry.envelope.tag,
                                 entry.seq, entry.attempts)
        entry.rto *= config.backoff
        machine = self.machine
        machine.stats.retransmits += 1
        now = self._engine.now
        bus = machine.bus
        if bus.want_fault_retransmit:
            bus.emit("fault_retransmit", RetransmitEvent(
                now, entry.src, entry.dst, entry.seq, entry.attempts,
                entry.rto, entry.envelope.size, entry.envelope.tag))
        self._transmit(entry, now)

    def _on_ack(self, msg: Message) -> None:
        _kind, src, dst, seq = msg.tag
        self._pending.pop((src, dst, seq), None)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        envelope: _DataEnvelope = msg.payload
        src, dst = msg.src, msg.dst
        now = self._engine.now
        machine = self.machine
        # Ack every arrival, duplicates included — the earlier ack may be
        # the one that was lost.  Acks leave immediately with no host
        # overhead (co-processor), but pay gateway + WAN contention.
        ack = Message(dst, src, ("_rt-ack", src, dst, envelope.seq),
                      self.config.ack_bytes, None)
        machine.transmit(ack, now, deliver=self._on_ack_cb)
        machine.stats.acks += 1

        flow = (src, dst)
        rx = self._rx.get(flow)
        if rx is None:
            rx = self._rx[flow] = _RxState()
        seq = envelope.seq
        if seq < rx.next_seq or seq in rx.buffer:
            machine.stats.dup_data_drops += 1
            return
        rx.buffer[seq] = envelope
        # In-order release: the application sees the flow's messages in
        # send order, whatever the wire did.
        deliver = self._deliver_fns[dst]
        while rx.next_seq in rx.buffer:
            env = rx.buffer.pop(rx.next_seq)
            rx.next_seq += 1
            deliver(Message(src, dst, env.tag, env.size, env.payload,
                            send_time=env.send_time, deliver_time=now,
                            inter_cluster=True))

    # ------------------------------------------------------------------
    # End-of-run introspection (sanitizer + reports)
    # ------------------------------------------------------------------
    def unacked(self) -> int:
        """Sends still awaiting an ack (in flight when the run stopped)."""
        return len(self._pending)

    def buffered(self) -> int:
        """Received data held for in-order release (gap ahead of it)."""
        return sum(len(self._rx[flow].buffer) for flow in sorted(self._rx))


__all__ = ["ReliableTransport", "TransportError"]
