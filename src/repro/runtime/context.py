"""Per-process API for application code — the Panda-like messaging layer.

A :class:`Context` is bound to one rank of one :class:`Machine`.  Its
methods return syscall objects that the process yields::

    def body(ctx):
        yield ctx.compute(2e-3)
        yield ctx.send(dst=3, size=4096, tag="row")
        msg = yield ctx.recv("row")

Composite operations (``rpc``) are generators used with ``yield from``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..network.message import Message
from ..obs.events import (BlockEvent, ComputeEvent, OpEvent, PhaseEvent,
                          UnblockEvent)
from ..sim.process import Process, Syscall
from ..sim.rng import make_rng
from .machine import Machine

#: Size in bytes of a bare control message (ack, token, seq request).
CONTROL_BYTES = 64


@dataclass
class RpcEnvelope:
    """Wraps an RPC request payload with the tag the reply must use."""

    reply_tag: Any
    body: Any


class _Compute(Syscall):
    __slots__ = ("ctx", "duration")

    def __init__(self, ctx: "Context", duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative compute duration {duration!r}")
        self.ctx = ctx
        self.duration = duration

    def apply(self, proc: Process) -> None:
        ctx = self.ctx
        machine = ctx.machine
        end = machine.cpus[ctx.rank].reserve(machine.now, self.duration)
        machine.rank_stats[ctx.rank].compute_time += self.duration
        bus = machine.bus
        if bus.want_compute and self.duration > 0:
            bus.emit("compute", ComputeEvent(end - self.duration, end, ctx.rank))
        if bus.want_op:
            bus.emit("op", OpEvent(machine.now, proc.name, ctx.rank, proc.daemon,
                                   "compute", duration=self.duration))
        machine.engine.call_at(end, lambda: proc._step(None, None))


class _Send(Syscall):
    __slots__ = ("ctx", "dst", "size", "tag", "payload")

    def __init__(self, ctx: "Context", dst: int, size: int, tag: Any, payload: Any) -> None:
        self.ctx = ctx
        self.dst = dst
        self.size = size
        self.tag = tag
        self.payload = payload

    def apply(self, proc: Process) -> None:
        ctx = self.ctx
        machine = ctx.machine
        topo = machine.topology
        spec = topo.local if topo.same_cluster(ctx.rank, self.dst) else topo.wide
        # Host overhead is paid sequentially by this process but does not
        # reserve the rank CPU: on the DAS, messaging ran on the LANai
        # co-processor / Panda upcall thread, so a computing process does
        # not stall the message pipeline of its neighbours on the rank.
        overhead_end = machine.now + spec.send_overhead
        machine.rank_stats[ctx.rank].send_overhead_time += spec.send_overhead
        if machine.bus.want_op:
            machine.bus.emit("op", OpEvent(machine.now, proc.name, ctx.rank,
                                           proc.daemon, "send", dst=self.dst,
                                           size=self.size, tag=self.tag))
        msg = Message(src=ctx.rank, dst=self.dst, tag=self.tag,
                      size=self.size, payload=self.payload)
        machine.transmit(msg, overhead_end)
        # Asynchronous send: the sender continues once the host overhead
        # is paid (the NIC/gateway pipeline drains without the CPU).
        machine.engine.call_at(overhead_end, lambda: proc._step(None, None))


class _Multicast(Syscall):
    __slots__ = ("ctx", "dsts", "size", "tag", "payload")

    def __init__(self, ctx: "Context", dsts, size: int, tag: Any, payload: Any) -> None:
        self.ctx = ctx
        self.dsts = list(dsts)
        self.size = size
        self.tag = tag
        self.payload = payload

    def apply(self, proc: Process) -> None:
        ctx = self.ctx
        machine = ctx.machine
        spec = machine.topology.local
        overhead_end = machine.now + spec.send_overhead
        machine.rank_stats[ctx.rank].send_overhead_time += spec.send_overhead
        if machine.bus.want_op:
            machine.bus.emit("op", OpEvent(machine.now, proc.name, ctx.rank,
                                           proc.daemon, "multicast",
                                           dst=tuple(self.dsts), size=self.size,
                                           tag=self.tag))
        machine.transmit_multicast(ctx.rank, self.dsts, self.size, self.tag,
                                   self.payload, overhead_end)
        machine.engine.call_at(overhead_end, lambda: proc._step(None, None))


class _Recv(Syscall):
    __slots__ = ("ctx", "tag")

    def __init__(self, ctx: "Context", tag: Any) -> None:
        self.ctx = ctx
        self.tag = tag

    def apply(self, proc: Process) -> None:
        ctx = self.ctx
        machine = ctx.machine
        wait_start = machine.now
        bus = machine.bus
        if bus.want_block:
            bus.emit("block", BlockEvent(wait_start, ctx.rank, self.tag))
        if bus.want_op:
            bus.emit("op", OpEvent(wait_start, proc.name, ctx.rank, proc.daemon,
                                   "recv", tag=self.tag))

        def on_message(msg: Message) -> None:
            stats = machine.rank_stats[ctx.rank]
            if not proc.daemon:
                # Idle time is only meaningful for application processes;
                # service daemons block on their inboxes by design.
                stats.recv_blocked_time += machine.now - wait_start
            if bus.want_unblock:
                bus.emit("unblock", UnblockEvent(machine.now, ctx.rank, self.tag,
                                                 machine.now - wait_start))
            if bus.want_op:
                bus.emit("op", OpEvent(machine.now, proc.name, ctx.rank,
                                       proc.daemon, "recv_done", src=msg.src,
                                       size=msg.size, tag=self.tag))
            topo = machine.topology
            spec = topo.wide if msg.inter_cluster else topo.local
            # Like the send overhead, this is a sequential delay for the
            # receiving process, not a rank-CPU reservation (see _Send).
            end = machine.now + spec.recv_overhead
            stats.recv_overhead_time += spec.recv_overhead
            stats.messages_received += 1
            machine.engine.call_at(end, lambda: proc._step(msg, None))

        machine.endpoints[ctx.rank].box(self.tag).get_event().add_callback(on_message)


class _RecvNowait(Syscall):
    __slots__ = ("ctx", "tag")

    def __init__(self, ctx: "Context", tag: Any) -> None:
        self.ctx = ctx
        self.tag = tag

    def apply(self, proc: Process) -> None:
        ctx = self.ctx
        machine = ctx.machine
        msg = machine.endpoints[ctx.rank].box(self.tag).try_get()
        if msg is not None:
            machine.rank_stats[ctx.rank].messages_received += 1
        if machine.bus.want_op:
            machine.bus.emit("op", OpEvent(
                machine.now, proc.name, ctx.rank, proc.daemon, "poll",
                src=msg.src if msg is not None else -1, tag=self.tag,
                detail=msg is not None))
        proc.resume(msg)


class _PhaseScope:
    """Publishes phase enter/exit events around a ``with`` block."""

    __slots__ = ("ctx", "name")

    def __init__(self, ctx: "Context", name: str) -> None:
        self.ctx = ctx
        self.name = name

    def __enter__(self) -> "_PhaseScope":
        machine = self.ctx.machine
        machine.bus.emit("phase", PhaseEvent(machine.now, self.ctx.rank,
                                             self.name, "enter"))
        return self

    def __exit__(self, *exc) -> bool:
        machine = self.ctx.machine
        machine.bus.emit("phase", PhaseEvent(machine.now, self.ctx.rank,
                                             self.name, "exit"))
        return False


class _NullPhase:
    """Shared no-op scope returned when nothing subscribes to phases."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class Context:
    """Bound per-process handle on the machine (one per spawned process)."""

    def __init__(self, machine: Machine, rank: int) -> None:
        self.machine = machine
        self.rank = rank
        self.process: Optional[Process] = None
        self._rpc_ids = itertools.count()
        self.rng = make_rng(machine.seed, f"rank{rank}")

    # ------------------------------------------------------------------
    # Topology conveniences
    # ------------------------------------------------------------------
    @property
    def topology(self):
        return self.machine.topology

    @property
    def num_ranks(self) -> int:
        return self.machine.topology.num_ranks

    @property
    def cluster(self) -> int:
        return self.machine.topology.cluster_of(self.rank)

    @property
    def now(self) -> float:
        return self.machine.now

    def is_local(self, other: int) -> bool:
        return self.machine.topology.same_cluster(self.rank, other)

    # ------------------------------------------------------------------
    # Syscall factories
    # ------------------------------------------------------------------
    def compute(self, duration: float) -> Syscall:
        """Charge ``duration`` seconds of CPU work on this rank."""
        return _Compute(self, duration)

    def send(self, dst: int, size: int, tag: Any, payload: Any = None) -> Syscall:
        """Asynchronously send ``size`` bytes to rank ``dst`` under ``tag``."""
        return _Send(self, dst, size, tag, payload)

    def multicast(self, dsts, size: int, tag: Any, payload: Any = None) -> Syscall:
        """Intra-cluster multicast: one NIC transfer, many deliveries.

        Models the LFC spanning-tree multicast of the DAS Myrinet; all
        destinations must be in this rank's cluster.
        """
        return _Multicast(self, dsts, size, tag, payload)

    def recv(self, tag: Any) -> Syscall:
        """Block until a message tagged ``tag`` arrives; yields the Message."""
        return _Recv(self, tag)

    def recv_nowait(self, tag: Any) -> Syscall:
        """Poll for a message tagged ``tag``; yields the Message or None."""
        return _RecvNowait(self, tag)

    def phase(self, name: str):
        """Scope marking a named application phase on this rank::

            with ctx.phase("exchange"):
                yield ctx.send(...)
                msg = yield ctx.recv(...)

        Enter/exit events go to the probe bus (topic ``phase``) and show
        up as nested slices in the Perfetto export.  When nothing is
        subscribed this returns a shared no-op scope, so un-instrumented
        runs pay one flag check.  The runtime collectives (barriers,
        broadcasts, reductions) are pre-annotated with their own names.
        """
        if not self.machine.bus.want_phase:
            return _NULL_PHASE
        return _PhaseScope(self, name)

    # ------------------------------------------------------------------
    # Composites
    # ------------------------------------------------------------------
    def rpc(
        self,
        dst: int,
        tag: Any,
        size: int = CONTROL_BYTES,
        payload: Any = None,
    ) -> Generator:
        """Request/reply round trip: returns the reply payload.

        The server must answer with :meth:`reply` (or send to the request's
        envelope tag).  Usage: ``result = yield from ctx.rpc(dst, tag, ...)``.
        """
        reply_tag = ("_rpc", self.rank, next(self._rpc_ids))
        envelope = RpcEnvelope(reply_tag=reply_tag, body=payload)
        yield self.send(dst, size, tag, envelope)
        msg = yield self.recv(reply_tag)
        return msg.payload

    def reply(self, request: Message, size: int = CONTROL_BYTES, payload: Any = None) -> Syscall:
        """Answer an RPC ``request`` previously received."""
        envelope = request.payload
        if not isinstance(envelope, RpcEnvelope):
            raise TypeError(f"message {request.tag!r} is not an RPC request")
        return self.send(request.src, size, envelope.reply_tag, payload)

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def spawn_service(
        self, body_factory: Callable[["Context"], Generator], name: str = "svc"
    ) -> Process:
        """Start a daemon process on this same rank (shares this rank's CPU)."""
        child_name = f"rank{self.rank}.{name}"
        machine = self.machine
        if machine.bus.want_op and self.process is not None:
            machine.bus.emit("op", OpEvent(
                machine.now, self.process.name, self.rank, self.process.daemon,
                "spawn", detail=child_name))
        return machine.spawn(self.rank, body_factory, name=child_name, daemon=True)
