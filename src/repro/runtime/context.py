"""Per-process API for application code — the Panda-like messaging layer.

A :class:`Context` is bound to one rank of one :class:`Machine`.  Its
methods return syscall objects that the process yields::

    def body(ctx):
        yield ctx.compute(2e-3)
        yield ctx.send(dst=3, size=4096, tag="row")
        msg = yield ctx.recv("row")

Composite operations (``rpc``) are generators used with ``yield from``.

Hot-path layout: a context pre-resolves its per-rank resources (CPU
clock, stats record, endpoint, engine, bus) once at construction, and
the four hot syscalls (``compute``/``send``/``recv``/``recv_nowait``)
are *reused* per context — a syscall object is yielded, applied and dead
within one process step, so the factory methods refill one cached
instance instead of allocating.  An ``in_flight`` flag falls back to a
fresh allocation for code that holds a syscall across a yield.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..network.message import Message
from ..obs.events import (BlockEvent, ComputeEvent, OpEvent, PhaseEvent,
                          UnblockEvent)
from ..sim.process import Process, Syscall
from ..sim.rng import make_rng
from .machine import Machine

#: Size in bytes of a bare control message (ack, token, seq request).
CONTROL_BYTES = 64


@dataclass
class RpcEnvelope:
    """Wraps an RPC request payload with the tag the reply must use."""

    reply_tag: Any
    body: Any


class _Compute(Syscall):
    __slots__ = ("ctx", "duration", "in_flight")

    def __init__(self, ctx: "Context", duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative compute duration {duration!r}")
        self.ctx = ctx
        self.duration = duration
        self.in_flight = False

    def apply(self, proc: Process) -> None:
        self.in_flight = False
        ctx = self.ctx
        duration = self.duration
        engine = ctx._engine
        now = engine.now
        end = ctx._cpu.reserve(now, duration)
        ctx._stats.compute_time += duration
        bus = ctx._bus
        if bus.want_compute and duration > 0:
            bus.emit("compute", ComputeEvent(end - duration, end, ctx.rank))
        if bus.want_op:
            bus.emit("op", OpEvent(now, proc.name, ctx.rank, proc.daemon,
                                   "compute", duration=duration))
        if end > now:
            engine.call_at(end, proc.trampoline)
        else:
            engine.call_soon(proc.trampoline)


class _Send(Syscall):
    __slots__ = ("ctx", "dst", "size", "tag", "payload", "in_flight")

    def __init__(self, ctx: "Context", dst: int, size: int, tag: Any, payload: Any) -> None:
        self.ctx = ctx
        self.dst = dst
        self.size = size
        self.tag = tag
        self.payload = payload
        self.in_flight = False

    def apply(self, proc: Process) -> None:
        self.in_flight = False
        ctx = self.ctx
        machine = ctx.machine
        dst = self.dst
        size = self.size
        tag = self.tag
        inter = ctx._rank_cluster[dst] != ctx._my_cluster
        spec = ctx._wide_spec if inter else ctx._local_spec
        # Host overhead is paid sequentially by this process but does not
        # reserve the rank CPU: on the DAS, messaging ran on the LANai
        # co-processor / Panda upcall thread, so a computing process does
        # not stall the message pipeline of its neighbours on the rank.
        engine = ctx._engine
        now = engine.now
        overhead_end = now + spec.send_overhead
        ctx._stats.send_overhead_time += spec.send_overhead
        if ctx._bus.want_op:
            ctx._bus.emit("op", OpEvent(now, proc.name, ctx.rank,
                                        proc.daemon, "send", dst=dst,
                                        size=size, tag=tag))
        msg = Message(ctx.rank, dst, tag, size, self.payload)
        self.payload = None
        bus = ctx._bus
        if inter and ctx._transport is not None:
            # Reliable WAN transport: the send becomes a sequenced,
            # acked, retransmitted wire message.  The sender still only
            # pays its host overhead and continues asynchronously.
            ctx._transport.send(msg, overhead_end)
        elif bus.want_send or bus.want_deliver:
            machine.transmit(msg, overhead_end)
        else:
            # Un-instrumented fast path: route directly with the pre-bound
            # endpoint deliver (same behaviour as Machine.transmit minus
            # the probe emits, which nothing is subscribed to).
            ctx._route(msg, overhead_end, engine, ctx._deliver_fns[dst])
            stats = ctx._stats
            stats.messages_sent += 1
            stats.bytes_sent += size
        # Asynchronous send: the sender continues once the host overhead
        # is paid (the NIC/gateway pipeline drains without the CPU).
        if overhead_end > now:
            engine.call_at(overhead_end, proc.trampoline)
        else:
            engine.call_soon(proc.trampoline)


class _Multicast(Syscall):
    __slots__ = ("ctx", "dsts", "size", "tag", "payload")

    def __init__(self, ctx: "Context", dsts, size: int, tag: Any, payload: Any) -> None:
        self.ctx = ctx
        self.dsts = tuple(dsts)
        self.size = size
        self.tag = tag
        self.payload = payload

    def apply(self, proc: Process) -> None:
        ctx = self.ctx
        machine = ctx.machine
        spec = machine.topology.local
        overhead_end = machine.now + spec.send_overhead
        ctx._stats.send_overhead_time += spec.send_overhead
        if ctx._bus.want_op:
            ctx._bus.emit("op", OpEvent(machine.now, proc.name, ctx.rank,
                                        proc.daemon, "multicast",
                                        dst=self.dsts, size=self.size,
                                        tag=self.tag))
        machine.transmit_multicast(ctx.rank, self.dsts, self.size, self.tag,
                                   self.payload, overhead_end)
        machine.engine.call_at(overhead_end, proc.trampoline)


class _Recv(Syscall):
    """Blocking receive.

    The syscall object itself is the mailbox receiver: ``apply`` stashes
    the waiting process and wait-start time and registers one pre-bound
    method, so the un-instrumented blocking path allocates nothing.  The
    state is consumed when the message arrives, which always happens
    before the owning process can issue another receive — so the
    per-context reuse is safe even while blocked.
    """

    __slots__ = ("ctx", "tag", "proc", "wait_start", "in_flight", "_receiver")

    def __init__(self, ctx: "Context", tag: Any) -> None:
        self.ctx = ctx
        self.tag = tag
        self.proc: Optional[Process] = None
        self.wait_start = 0.0
        self.in_flight = False
        self._receiver = self._on_message

    def apply(self, proc: Process) -> None:
        self.in_flight = False
        ctx = self.ctx
        tag = self.tag
        bus = ctx._bus
        self.proc = proc
        wait_start = self.wait_start = ctx._engine.now
        if bus.want_block:
            bus.emit("block", BlockEvent(wait_start, ctx.rank, tag))
        if bus.want_op:
            bus.emit("op", OpEvent(wait_start, proc.name, ctx.rank,
                                   proc.daemon, "recv", tag=tag))
        ctx._endpoint.box(tag).add_receiver(self._receiver)

    def _on_message(self, msg: Message) -> None:
        ctx = self.ctx
        proc = self.proc
        tag = self.tag
        engine = ctx._engine
        now = engine.now
        stats = ctx._stats
        bus = ctx._bus
        if not proc.daemon:
            # Idle time is only meaningful for application processes;
            # service daemons block on their inboxes by design.
            stats.recv_blocked_time += now - self.wait_start
        if bus.want_unblock:
            bus.emit("unblock", UnblockEvent(now, ctx.rank, tag,
                                             now - self.wait_start,
                                             msg.src, msg.size,
                                             msg.send_time,
                                             msg.inter_cluster))
        if bus.want_op:
            bus.emit("op", OpEvent(now, proc.name, ctx.rank, proc.daemon,
                                   "recv_done", src=msg.src,
                                   size=msg.size, tag=tag))
        spec = ctx._wide_spec if msg.inter_cluster else ctx._local_spec
        # Like the send overhead, this is a sequential delay for the
        # receiving process, not a rank-CPU reservation (see _Send).
        end = now + spec.recv_overhead
        stats.recv_overhead_time += spec.recv_overhead
        stats.messages_received += 1
        proc._value = msg
        if end > now:
            engine.call_at(end, proc.trampoline)
        else:
            engine.call_soon(proc.trampoline)


class _Sleep(Syscall):
    """Suspend for simulated time *visibly*: like the engine-level
    :class:`~repro.sim.primitives.Sleep`, but published on the ``op``
    topic so timer-driven protocols (work stealing retries) stay
    observable to the probe-bus profilers.  Scheduling is identical to
    the bare primitive, so runs are byte-identical with probes off."""

    __slots__ = ("ctx", "duration", "in_flight")

    def __init__(self, ctx: "Context", duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative sleep duration {duration!r}")
        self.ctx = ctx
        self.duration = duration
        self.in_flight = False

    def apply(self, proc: Process) -> None:
        self.in_flight = False
        ctx = self.ctx
        bus = ctx._bus
        if bus.want_op:
            bus.emit("op", OpEvent(ctx._engine.now, proc.name, ctx.rank,
                                   proc.daemon, "sleep",
                                   duration=self.duration))
        ctx._engine.call_after(self.duration, proc.trampoline)


class _RecvNowait(Syscall):
    __slots__ = ("ctx", "tag", "in_flight")

    def __init__(self, ctx: "Context", tag: Any) -> None:
        self.ctx = ctx
        self.tag = tag
        self.in_flight = False

    def apply(self, proc: Process) -> None:
        self.in_flight = False
        ctx = self.ctx
        msg = ctx._endpoint.box(self.tag).try_get()
        if msg is not None:
            ctx._stats.messages_received += 1
        if ctx._bus.want_op:
            ctx._bus.emit("op", OpEvent(
                ctx._engine.now, proc.name, ctx.rank, proc.daemon, "poll",
                src=msg.src if msg is not None else -1, tag=self.tag,
                detail=msg is not None))
        proc.resume(msg)


class _PhaseScope:
    """Publishes phase enter/exit events around a ``with`` block."""

    __slots__ = ("ctx", "name")

    def __init__(self, ctx: "Context", name: str) -> None:
        self.ctx = ctx
        self.name = name

    def __enter__(self) -> "_PhaseScope":
        machine = self.ctx.machine
        machine.bus.emit("phase", PhaseEvent(machine.now, self.ctx.rank,
                                             self.name, "enter"))
        return self

    def __exit__(self, *exc) -> bool:
        machine = self.ctx.machine
        machine.bus.emit("phase", PhaseEvent(machine.now, self.ctx.rank,
                                             self.name, "exit"))
        return False


class _NullPhase:
    """Shared no-op scope returned when nothing subscribes to phases."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class Context:
    """Bound per-process handle on the machine (one per spawned process)."""

    def __init__(self, machine: Machine, rank: int) -> None:
        self.machine = machine
        self.rank = rank
        self.process: Optional[Process] = None
        self._rpc_ids = itertools.count()
        self.rng = make_rng(machine.seed, f"rank{rank}")
        # Pre-resolved per-rank resources (stable for the machine's life).
        self._engine = machine.engine
        self._bus = machine.bus
        self._cpu = machine.cpus[rank]
        self._stats = machine.rank_stats[rank]
        self._endpoint = machine.endpoints[rank]
        topo = machine.topology
        self._rank_cluster = topo._rank_cluster
        self._my_cluster = topo._rank_cluster[rank]
        self._local_spec = topo.local
        self._wide_spec = topo.wide
        self._route = machine.router.route
        self._deliver_fns = machine._deliver
        self._transport = machine.transport
        # Reusable hot syscalls (see module docstring).
        self._compute = _Compute(self, 0.0)
        self._send = _Send(self, 0, 0, None, None)
        self._recv = _Recv(self, None)
        self._recv_nowait = _RecvNowait(self, None)
        self._sleep = _Sleep(self, 0.0)

    # ------------------------------------------------------------------
    # Topology conveniences
    # ------------------------------------------------------------------
    @property
    def topology(self):
        return self.machine.topology

    @property
    def num_ranks(self) -> int:
        return self.machine.topology.num_ranks

    @property
    def cluster(self) -> int:
        return self.machine.topology.cluster_of(self.rank)

    @property
    def now(self) -> float:
        return self._engine.now

    def is_local(self, other: int) -> bool:
        return self.machine.topology.same_cluster(self.rank, other)

    # ------------------------------------------------------------------
    # Syscall factories
    # ------------------------------------------------------------------
    def compute(self, duration: float) -> Syscall:
        """Charge ``duration`` seconds of CPU work on this rank."""
        if duration < 0:
            raise ValueError(f"negative compute duration {duration!r}")
        sc = self._compute
        if sc.in_flight:
            return _Compute(self, duration)
        sc.in_flight = True
        sc.duration = duration
        return sc

    def send(self, dst: int, size: int, tag: Any, payload: Any = None) -> Syscall:
        """Asynchronously send ``size`` bytes to rank ``dst`` under ``tag``."""
        sc = self._send
        if sc.in_flight:
            return _Send(self, dst, size, tag, payload)
        sc.in_flight = True
        sc.dst = dst
        sc.size = size
        sc.tag = tag
        sc.payload = payload
        return sc

    def multicast(self, dsts, size: int, tag: Any, payload: Any = None) -> Syscall:
        """Intra-cluster multicast: one NIC transfer, many deliveries.

        Models the LFC spanning-tree multicast of the DAS Myrinet; all
        destinations must be in this rank's cluster.
        """
        return _Multicast(self, dsts, size, tag, payload)

    def recv(self, tag: Any) -> Syscall:
        """Block until a message tagged ``tag`` arrives; yields the Message."""
        sc = self._recv
        if sc.in_flight:
            return _Recv(self, tag)
        sc.in_flight = True
        sc.tag = tag
        return sc

    def sleep(self, duration: float) -> Syscall:
        """Suspend this process for ``duration`` simulated seconds.

        Unlike :meth:`compute` no CPU is reserved or charged — the
        process is simply parked, like a timer.  Unlike yielding the raw
        :class:`~repro.sim.primitives.Sleep` primitive, the timer is
        published as an ``op`` probe event, so profilers see it instead
        of an unexplained gap in the process timeline.
        """
        if duration < 0:
            raise ValueError(f"negative sleep duration {duration!r}")
        sc = self._sleep
        if sc.in_flight:
            return _Sleep(self, duration)
        sc.in_flight = True
        sc.duration = duration
        return sc

    def recv_nowait(self, tag: Any) -> Syscall:
        """Poll for a message tagged ``tag``; yields the Message or None."""
        sc = self._recv_nowait
        if sc.in_flight:
            return _RecvNowait(self, tag)
        sc.in_flight = True
        sc.tag = tag
        return sc

    def phase(self, name: str):
        """Scope marking a named application phase on this rank::

            with ctx.phase("exchange"):
                yield ctx.send(...)
                msg = yield ctx.recv(...)

        Enter/exit events go to the probe bus (topic ``phase``) and show
        up as nested slices in the Perfetto export.  When nothing is
        subscribed this returns a shared no-op scope, so un-instrumented
        runs pay one flag check.  The runtime collectives (barriers,
        broadcasts, reductions) are pre-annotated with their own names.
        """
        if not self.machine.bus.want_phase:
            return _NULL_PHASE
        return _PhaseScope(self, name)

    # ------------------------------------------------------------------
    # Composites
    # ------------------------------------------------------------------
    def rpc(
        self,
        dst: int,
        tag: Any,
        size: int = CONTROL_BYTES,
        payload: Any = None,
    ) -> Generator:
        """Request/reply round trip: returns the reply payload.

        The server must answer with :meth:`reply` (or send to the request's
        envelope tag).  Usage: ``result = yield from ctx.rpc(dst, tag, ...)``.
        """
        reply_tag = ("_rpc", self.rank, next(self._rpc_ids))
        envelope = RpcEnvelope(reply_tag=reply_tag, body=payload)
        yield self.send(dst, size, tag, envelope)
        msg = yield self.recv(reply_tag)
        return msg.payload

    def reply(self, request: Message, size: int = CONTROL_BYTES, payload: Any = None) -> Syscall:
        """Answer an RPC ``request`` previously received."""
        envelope = request.payload
        if not isinstance(envelope, RpcEnvelope):
            raise TypeError(f"message {request.tag!r} is not an RPC request")
        return self.send(request.src, size, envelope.reply_tag, payload)

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def spawn_service(
        self, body_factory: Callable[["Context"], Generator], name: str = "svc"
    ) -> Process:
        """Start a daemon process on this same rank (shares this rank's CPU)."""
        child_name = f"rank{self.rank}.{name}"
        machine = self.machine
        if machine.bus.want_op and self.process is not None:
            machine.bus.emit("op", OpEvent(
                machine.now, self.process.name, self.rank, self.process.daemon,
                "spawn", detail=child_name))
        return machine.spawn(self.rank, body_factory, name=child_name, daemon=True)
