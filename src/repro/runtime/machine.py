"""The simulated parallel machine: topology + engine + message delivery.

A :class:`Machine` owns the event engine, the router and one
:class:`Endpoint` per rank.  Application code is spawned as per-rank
processes (``machine.spawn(rank, body)``); ``machine.run()`` drives the
simulation until every non-daemon process has finished.

CPU model: each rank has a serializing CPU clock.  ``compute`` time and
per-message send/receive overheads all reserve the CPU, so a rank that is
busy forwarding messages (a gateway or coordinator rank) genuinely loses
computation time — the effect the paper's optimizations trade against.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..network.message import Message
from ..network.router import Router
from ..network.stats import TrafficStats
from ..network.topology import Topology
from ..obs.bus import ProbeBus
from ..obs.events import DeliverEvent, SendEvent
from ..sim.engine import Engine
from ..sim.events import Mailbox
from ..sim.process import Process


class DeadlockError(RuntimeError):
    """The event queue drained while application processes were blocked."""


class CpuClock:
    """Serializes CPU work on one rank (FIFO, like a link for time)."""

    __slots__ = ("next_free", "busy_time")

    def __init__(self) -> None:
        self.next_free = 0.0
        self.busy_time = 0.0

    def reserve(self, now: float, duration: float) -> float:
        """Book ``duration`` seconds of CPU starting no earlier than ``now``;
        returns the completion time."""
        start = max(now, self.next_free)
        end = start + duration
        self.next_free = end
        self.busy_time += duration
        return end


class RankStats:
    """Per-rank accounting used by Figure 4 style analyses."""

    __slots__ = ("compute_time", "send_overhead_time", "recv_overhead_time",
                 "recv_blocked_time", "messages_sent", "messages_received",
                 "bytes_sent", "finish_time")

    def __init__(self) -> None:
        self.compute_time = 0.0
        self.send_overhead_time = 0.0
        self.recv_overhead_time = 0.0
        self.recv_blocked_time = 0.0
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.finish_time = 0.0


class Endpoint:
    """Per-rank message reception: one mailbox per tag."""

    __slots__ = ("rank", "_boxes")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._boxes: Dict[Any, Mailbox] = {}

    def box(self, tag: Any) -> Mailbox:
        mb = self._boxes.get(tag)
        if mb is None:
            mb = Mailbox()
            self._boxes[tag] = mb
        return mb

    def deliver(self, msg: Message) -> None:
        self.box(msg.tag).put(msg)

    def pending(self) -> Dict[Any, int]:
        return {tag: len(mb) for tag, mb in self._boxes.items() if len(mb)}

    def waiting(self) -> List[Any]:
        return [tag for tag, mb in self._boxes.items() if mb.waiting_receivers]


class Machine:
    """A two-layer parallel machine executing simulated processes."""

    def __init__(self, topology: Topology, seed: int = 0, tracer=None,
                 bus: Optional[ProbeBus] = None, sanitize: bool = False,
                 faults=None) -> None:
        self.topology = topology
        self.seed = seed
        #: the probe bus every layer of this machine publishes into;
        #: subscribe/attach before or after construction, at will
        self.bus = bus if bus is not None else ProbeBus()
        #: optional :class:`repro.trace.Tracer`; kept as an attribute for
        #: backwards compatibility, attached to the bus like any subscriber
        self.tracer = tracer
        if tracer is not None:
            self.bus.attach(tracer)
        #: opt-in runtime protocol sanitizer (:mod:`repro.lint.sanitizer`);
        #: an ordinary bus subscriber, so ``sanitize=False`` keeps every
        #: topic cold and the hot path un-instrumented
        self.sanitizer = None
        if sanitize:
            from ..lint.sanitizer import Sanitizer  # avoid an import cycle

            self.sanitizer = Sanitizer()
            self.bus.attach(self.sanitizer)
        self.engine = Engine()
        self.stats = TrafficStats(topology.num_clusters)
        self.bus.attach(self.stats)
        self.router = Router(topology, self.stats, seed=seed, bus=self.bus)
        self.endpoints: List[Endpoint] = [Endpoint(r) for r in topology.ranks()]
        # Pre-bound per-rank deliver methods: transmit() hands these to the
        # router so the un-instrumented path allocates nothing per message.
        self._deliver: List[Callable[[Message], None]] = [
            ep.deliver for ep in self.endpoints
        ]
        self.cpus: List[CpuClock] = [CpuClock() for _ in topology.ranks()]
        self.rank_stats: List[RankStats] = [RankStats() for _ in topology.ranks()]
        self._main_procs: List[Process] = []
        self._daemon_procs: List[Process] = []
        self._live_main = 0
        #: compiled :class:`~repro.faults.inject.FaultInjector` and
        #: :class:`~repro.runtime.transport.ReliableTransport`, or None.
        #: With ``faults=None`` (the default) these stay None and every
        #: hot-path hook is one attribute load and a branch — the
        #: call-count parity guard in benchmarks/test_faults_overhead.py
        #: holds the subsystem to exactly zero disabled cost.
        self.fault_injector = None
        self.transport = None
        if faults is not None and faults.active:
            from ..faults.inject import FaultInjector  # avoid an import cycle

            if faults.has_faults:
                self.fault_injector = FaultInjector(faults, self)
            if faults.transport is not None:
                from .transport import ReliableTransport

                self.transport = ReliableTransport(faults.transport, self)

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        rank: int,
        body_factory: Callable[["Context"], Generator],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> Process:
        """Start a process on ``rank``.  ``body_factory`` receives a bound
        :class:`~repro.runtime.context.Context` and returns the generator.

        Daemon processes (services) do not keep the run alive.
        """
        from .context import Context  # local import to avoid a cycle

        ctx = Context(self, rank)
        pname = name or f"rank{rank}"
        proc = Process(self.engine, body_factory(ctx), name=pname, daemon=daemon)
        ctx.process = proc
        if daemon:
            self._daemon_procs.append(proc)
        else:
            self._main_procs.append(proc)
            self._live_main += 1
            proc.on_done(self._main_done)
        proc.start()
        return proc

    def _main_done(self, proc: Process) -> None:
        self._live_main -= 1
        rank = self._rank_of(proc)
        if rank is not None:
            self.rank_stats[rank].finish_time = self.engine.now
        if self._live_main == 0:
            # End the simulation right after this callback: remaining
            # daemon events stay queued, exactly like the old step() loop
            # that re-checked the live count before every event.
            self.engine.stop()

    def _rank_of(self, proc: Process) -> Optional[int]:
        name = proc.name
        if name.startswith("rank"):
            head = name[4:].split(".", 1)[0]
            if head.isdigit():
                return int(head)
        return None

    # ------------------------------------------------------------------
    # Message transport (called from Context syscalls)
    # ------------------------------------------------------------------
    def transmit(self, msg: Message, depart_time: float,
                 deliver: Optional[Callable[[Message], None]] = None) -> None:
        """Route ``msg``; delivery is scheduled through the engine (shared
        resources are reserved in arrival order along the path).

        ``deliver`` overrides the destination callback — the reliable
        transport routes its wire messages into its own handlers this way
        while still paying every link/gateway cost and emitting the same
        probe events.
        """
        bus = self.bus
        if deliver is None:
            deliver = self._deliver[msg.dst]
        if bus.want_deliver:
            final = deliver
            engine = self.engine

            def deliver(m: Message) -> None:
                bus.emit("deliver", DeliverEvent(engine.now, m.src, m.dst,
                                                 m.size, m.tag,
                                                 engine.now - m.send_time))
                final(m)
        self.router.route(msg, depart_time, self.engine, deliver)
        if bus.want_send:
            # After route(): the message knows whether it crossed the WAN.
            bus.emit("send", SendEvent(depart_time, msg.src, msg.dst,
                                       msg.size, msg.tag, msg.inter_cluster))
        st = self.rank_stats[msg.src]
        st.messages_sent += 1
        st.bytes_sent += msg.size

    def transmit_multicast(self, src: int, dsts: List[int], size: int,
                           tag: Any, payload: Any, depart_time: float) -> float:
        """Intra-cluster hardware multicast (LFC-style spanning tree).

        The payload crosses the sender's NIC *once* and is delivered to all
        destinations one local latency later; traffic statistics count it
        once, matching how the DAS measurements count multicast data.
        All destinations must be in the sender's cluster.
        """
        topo = self.topology
        for dst in dsts:
            if not topo.same_cluster(src, dst):
                raise ValueError(
                    f"multicast from {src} to {dst} crosses clusters; "
                    f"use point-to-point sends over the WAN"
                )
        deliver_time = self.router.nic(src).transfer(depart_time, size)
        self.bus.emit_traffic_intra(size)
        deliver_fns = self._deliver
        for dst in dsts:
            msg = Message(src, dst, tag, size, payload,
                          send_time=depart_time, deliver_time=deliver_time)
            self.engine.call_at(deliver_time, partial(deliver_fns[dst], msg))
        st = self.rank_stats[src]
        st.messages_sent += 1
        st.bytes_sent += size
        return deliver_time

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until all non-daemon processes finish; returns finish time.

        Raises :class:`DeadlockError` if the event queue drains while main
        processes are still blocked (a protocol bug in the application);
        with the sanitizer attached the error carries the wait-for-cycle
        report.  ``max_events`` bounds this call's event budget: exceeding
        it with work still pending raises :class:`TimeoutError` (used by
        the protocol fuzz tests to guard against runaway schedules).
        """
        eng = self.engine
        if self._live_main > 0:
            # The engine runs flat out; _main_done stops it the moment the
            # last main process finishes (leaving daemon events queued).
            eng.run(until=until, max_events=max_events)
            if self._live_main > 0:
                # The engine returned on its own: it either drained, hit
                # the horizon, or exhausted the event budget with main
                # processes still blocked.
                if until is not None:
                    raise TimeoutError(
                        f"simulation exceeded until={until}s with "
                        f"{self._live_main} main processes still live"
                    )
                if max_events is not None and eng.pending > 0:
                    raise TimeoutError(
                        f"simulation exceeded the {max_events}-event budget "
                        f"with {self._live_main} main processes still live"
                    )
                blocked = [p.name for p in self._main_procs if not p.finished]
                waiting = {
                    ep.rank: ep.waiting() for ep in self.endpoints if ep.waiting()
                }
                detail = ""
                if self.sanitizer is not None:
                    report = self.sanitizer.on_deadlock(self)
                    detail = "\n" + report.render()
                raise DeadlockError(
                    f"event queue drained with live processes {blocked}; "
                    f"ranks blocked on tags: {waiting}{detail}"
                )
        self.stats.mark_end(eng.now)
        if self.sanitizer is not None and self._live_main == 0:
            self.sanitizer.finish(self, drained=(eng.pending == 0))
        return eng.now

    @property
    def now(self) -> float:
        return self.engine.now

    def runtime(self) -> float:
        """Completion time of the slowest main process."""
        return max(s.finish_time for s in self.rank_stats)

    def results(self) -> List[Any]:
        """Return values of all main processes, in spawn order."""
        return [p.result for p in self._main_procs]
