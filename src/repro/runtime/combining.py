"""Message combining: batching many small messages into fewer large ones.

Both Awari variants and Barnes-Hut use per-destination combining (the
paper: "All efficient BSP implementations perform message combining");
the *optimized* multi-cluster variants add a second combining layer per
target cluster.  This module provides the per-destination buffer and the
batch wire format; the cluster-level relay protocol lives with the apps
that use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Tuple

from .context import Context

#: Framing cost per combined item (length/type header on the wire).
ITEM_HEADER_BYTES = 8


@dataclass
class Batch:
    """Payload of one combined message: the original items and their sizes."""

    items: List[Any] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)

    def add(self, item: Any, nbytes: int) -> None:
        self.items.append(item)
        self.sizes.append(nbytes)

    @property
    def wire_size(self) -> int:
        return sum(self.sizes) + ITEM_HEADER_BYTES * len(self.items)

    def __len__(self) -> int:
        return len(self.items)


class CombiningBuffer:
    """Per-destination batching of small messages.

    ``add`` buffers an item for ``dst`` and transparently flushes when the
    batch reaches ``flush_count`` items or ``flush_bytes`` payload bytes.
    Call ``flush_all`` at phase boundaries.  All methods are generators —
    drive them with ``yield from``.
    """

    def __init__(self, ctx: Context, tag: Any,
                 flush_count: int = 64, flush_bytes: int = 65536) -> None:
        if flush_count < 1:
            raise ValueError("flush_count must be >= 1")
        if flush_bytes < 1:
            raise ValueError("flush_bytes must be >= 1")
        self.ctx = ctx
        self.tag = tag
        self.flush_count = flush_count
        self.flush_bytes = flush_bytes
        self._pending: Dict[int, Batch] = {}
        self.batches_sent = 0
        self.items_sent = 0

    def add(self, dst: int, item: Any, nbytes: int) -> Generator:
        """Buffer ``item`` for ``dst``; may emit a combined send."""
        batch = self._pending.get(dst)
        if batch is None:
            batch = Batch()
            self._pending[dst] = batch
        batch.add(item, nbytes)
        if len(batch) >= self.flush_count or sum(batch.sizes) >= self.flush_bytes:
            yield from self.flush(dst)

    def flush(self, dst: int) -> Generator:
        """Send the pending batch for ``dst``, if any."""
        batch = self._pending.pop(dst, None)
        if batch is None or not len(batch):
            return
        self.batches_sent += 1
        self.items_sent += len(batch)
        yield self.ctx.send(dst, batch.wire_size, self.tag, batch)

    def flush_all(self) -> Generator:
        """Send every pending batch (ascending destination for determinism)."""
        for dst in sorted(self._pending):
            yield from self.flush(dst)

    def pending_items(self) -> int:
        return sum(len(b) for b in self._pending.values())


def recv_batch(ctx: Context, tag: Any) -> Generator:
    """Receive one combined message; returns its list of items."""
    msg = yield ctx.recv(tag)
    batch: Batch = msg.payload
    return batch.items
