"""Convenience entry point for running SPMD programs on a machine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..network.stats import TrafficStats
from ..network.topology import Topology
from .context import Context
from .machine import Machine, RankStats

MainBody = Callable[[Context], Generator]


@dataclass
class RunResult:
    """Outcome of one simulated program run."""

    runtime: float
    results: List[Any]
    machine: Machine

    @property
    def stats(self) -> TrafficStats:
        return self.machine.stats

    @property
    def rank_stats(self) -> List[RankStats]:
        return self.machine.rank_stats

    def traffic_summary(self) -> Dict[str, float]:
        return self.machine.stats.summary()


def run_spmd(
    topology: Topology,
    main: MainBody,
    seed: int = 0,
    until: Optional[float] = None,
) -> RunResult:
    """Run ``main(ctx)`` on every rank of ``topology`` to completion.

    ``main`` receives a bound :class:`Context`; it may spawn services.
    Returns the :class:`RunResult` with the parallel runtime (completion
    time of the slowest rank) and each rank's return value.
    """
    machine = Machine(topology, seed=seed)
    for rank in topology.ranks():
        machine.spawn(rank, main, name=f"rank{rank}")
    machine.run(until=until)
    return RunResult(runtime=machine.runtime(), results=machine.results(), machine=machine)
