"""Convenience entry point for running SPMD programs on a machine."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..network.stats import TrafficStats
from ..network.topology import Topology
from ..obs.bus import ProbeBus
from ..obs.report import active_reporter, run_record
from .context import Context
from .machine import Machine, RankStats

MainBody = Callable[[Context], Generator]


@dataclass
class RunResult:
    """Outcome of one simulated program run."""

    runtime: float
    results: List[Any]
    machine: Machine
    #: host wall-clock seconds spent inside ``machine.run()``
    wall_time: float = 0.0

    @property
    def stats(self) -> TrafficStats:
        return self.machine.stats

    @property
    def rank_stats(self) -> List[RankStats]:
        return self.machine.rank_stats

    def traffic_summary(self) -> Dict[str, float]:
        return self.machine.stats.summary()


def run_spmd(
    topology: Topology,
    main: MainBody,
    seed: int = 0,
    until: Optional[float] = None,
    bus: Optional[ProbeBus] = None,
    report_meta: Optional[Dict[str, Any]] = None,
    sanitize: bool = False,
    faults=None,
    max_events: Optional[int] = None,
) -> RunResult:
    """Run ``main(ctx)`` on every rank of ``topology`` to completion.

    ``main`` receives a bound :class:`Context`; it may spawn services.
    Returns the :class:`RunResult` with the parallel runtime (completion
    time of the slowest rank) and each rank's return value.

    ``bus`` attaches a prepared :class:`~repro.obs.bus.ProbeBus` (with
    tracers/metrics/exporters already subscribed) to the machine.  Use a
    fresh bus per run — the machine wires its own traffic accounting into
    it.  When a run reporter is active (see
    :func:`repro.obs.report.active_reporter`), one JSON-lines record is
    emitted per run, tagged with ``report_meta``.

    ``sanitize=True`` attaches the runtime protocol sanitizer
    (:class:`repro.lint.Sanitizer`): FIFO/conservation/monotonicity
    violations raise at run end, deadlocks get wait-for-cycle reports,
    and leak findings land on ``result.machine.sanitizer.findings``.
    Results are byte-identical with the sanitizer on or off.

    ``faults`` takes a :class:`~repro.faults.plan.FaultPlan`: injected
    WAN faults plus (unless the plan disables it) the reliable transport
    that lets the run complete under loss.  ``max_events`` bounds the
    engine event budget (:class:`TimeoutError` on exhaustion) — the chaos
    tests' guarantee that a faulty run ends instead of hanging.
    """
    machine = Machine(topology, seed=seed, bus=bus, sanitize=sanitize,
                      faults=faults)
    for rank in topology.ranks():
        machine.spawn(rank, main, name=f"rank{rank}")
    # Host wall-time measurement for reports, not simulated time.
    wall_start = time.perf_counter()  # lint: ignore[wall-clock]
    machine.run(until=until, max_events=max_events)
    wall = time.perf_counter() - wall_start  # lint: ignore[wall-clock]
    result = RunResult(runtime=machine.runtime(), results=machine.results(),
                       machine=machine, wall_time=wall)
    reporter = active_reporter()
    if reporter is not None:
        reporter.emit(run_record(machine, result.runtime, wall,
                                 meta=report_meta))
    return result
