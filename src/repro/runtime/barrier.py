"""Barrier synchronization, flat and cluster-aware.

``flat_barrier`` is the topology-unaware gather/release barrier the
original (uniform-network) applications use; with multiple clusters most
of its messages cross the slow links.  ``tree_barrier`` synchronizes
within each cluster first and sends exactly one message per cluster over
the WAN in each direction.

All ranks of the group must call the same barrier with the same
``barrier_id`` exactly once; ids must be unique per barrier instance
(use a per-phase counter).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from .context import CONTROL_BYTES, Context


def flat_barrier(ctx: Context, barrier_id: Any, root: int = 0,
                 ranks: Optional[Sequence[int]] = None) -> Generator:
    """Centralized barrier: everyone reports to ``root``, root releases."""
    group = list(ranks) if ranks is not None else list(ctx.topology.ranks())
    arrive = ("bar-arrive", barrier_id)
    release = ("bar-release", barrier_id)
    with ctx.phase("flat_barrier"):
        if ctx.rank == root:
            for _ in range(len(group) - 1):
                yield ctx.recv(arrive)
            for r in group:
                if r != root:
                    yield ctx.send(r, CONTROL_BYTES, release)
        else:
            yield ctx.send(root, CONTROL_BYTES, arrive)
            yield ctx.recv(release)


def tree_barrier(ctx: Context, barrier_id: Any) -> Generator:
    """Two-level barrier: cluster members -> leader, leaders -> rank 0.

    Costs one WAN round trip regardless of cluster size, versus O(ranks)
    WAN messages for :func:`flat_barrier` on a multi-cluster machine.
    """
    topo = ctx.topology
    leader = topo.cluster_leader(ctx.cluster)
    root = topo.cluster_leader(0)
    local_arrive = ("tbar-la", barrier_id)
    wan_arrive = ("tbar-wa", barrier_id)
    local_release = ("tbar-lr", barrier_id)
    wan_release = ("tbar-wr", barrier_id)

    with ctx.phase("tree_barrier"):
        if ctx.rank == leader:
            for _ in range(len(topo.cluster_members(ctx.cluster)) - 1):
                yield ctx.recv(local_arrive)
            if leader == root:
                for _ in range(topo.num_clusters - 1):
                    yield ctx.recv(wan_arrive)
                for cid in topo.clusters():
                    other = topo.cluster_leader(cid)
                    if other != root:
                        yield ctx.send(other, CONTROL_BYTES, wan_release)
            else:
                yield ctx.send(root, CONTROL_BYTES, wan_arrive)
                yield ctx.recv(wan_release)
            for r in topo.cluster_members(ctx.cluster):
                if r != leader:
                    yield ctx.send(r, CONTROL_BYTES, local_release)
        else:
            yield ctx.send(leader, CONTROL_BYTES, local_arrive)
            yield ctx.recv(local_release)
