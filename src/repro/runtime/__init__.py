"""Panda/Orca-like messaging runtime on top of the simulated interconnect."""

from .barrier import flat_barrier, tree_barrier
from .bcast import flat_bcast, hier_bcast
from .combining import ITEM_HEADER_BYTES, Batch, CombiningBuffer, recv_batch
from .context import CONTROL_BYTES, Context, RpcEnvelope
from .machine import CpuClock, DeadlockError, Endpoint, Machine, RankStats
from .reduction import allreduce, binomial_reduce, hier_reduce, linear_reduce
from .run import RunResult, run_spmd
from .sequencer import SequencerService, get_seq, migrate_sequencer
from .transport import ReliableTransport, TransportError
from .workqueue import (
    AccountantService,
    CentralQueueService,
    ClusterQueueService,
    get_central_job,
    get_cluster_job,
    report_job_done,
)

__all__ = [
    "flat_barrier",
    "tree_barrier",
    "flat_bcast",
    "hier_bcast",
    "ITEM_HEADER_BYTES",
    "Batch",
    "CombiningBuffer",
    "recv_batch",
    "CONTROL_BYTES",
    "Context",
    "RpcEnvelope",
    "CpuClock",
    "DeadlockError",
    "Endpoint",
    "Machine",
    "RankStats",
    "allreduce",
    "binomial_reduce",
    "hier_reduce",
    "linear_reduce",
    "RunResult",
    "run_spmd",
    "ReliableTransport",
    "TransportError",
    "SequencerService",
    "get_seq",
    "migrate_sequencer",
    "AccountantService",
    "CentralQueueService",
    "ClusterQueueService",
    "get_central_job",
    "get_cluster_job",
    "report_job_done",
]
