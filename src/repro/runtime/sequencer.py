"""Sequencer service for totally-ordered broadcast.

Orca's write operations on replicated objects are serialized by a
sequencer node that hands out sequence numbers.  ASP's row broadcasts use
this: the sender must fetch a sequence number *synchronously* before its
broadcast may proceed, which on a multi-cluster makes 75% of broadcasts
pay a WAN round trip (the effect the migrating-sequencer optimization
removes).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator

from .context import CONTROL_BYTES, Context

TAG_SEQ = "seq-service"
TAG_HANDOFF = "seq-handoff"


class SequencerService:
    """Hands out consecutive sequence numbers; supports migration.

    Spawn one instance (as a daemon) on every rank that may ever hold the
    sequencer role; exactly one is *active* at a time.  Migration: the
    active service receives a ``("migrate", dst)`` request, transfers its
    counter to ``dst`` and goes dormant.
    """

    def __init__(self, initially_active: bool, start: int = 0) -> None:
        self.active = initially_active
        self.counter = start
        self.requests_served = 0

    def body(self, ctx: Context) -> Generator:
        while True:
            if not self.active:
                msg = yield ctx.recv(TAG_HANDOFF)
                self.counter = msg.payload
                self.active = True
            msg = yield ctx.recv(TAG_SEQ)
            command = msg.payload.body
            if command is None or command.get("kind") == "get":
                seq = self.counter
                self.counter += 1
                self.requests_served += 1
                yield ctx.reply(msg, CONTROL_BYTES, seq)
            elif command.get("kind") == "migrate":
                dst = command["dst"]
                self.active = False
                yield ctx.reply(msg, CONTROL_BYTES, "migrated")
                if dst != ctx.rank:
                    yield ctx.send(dst, CONTROL_BYTES, TAG_HANDOFF, self.counter)
                else:
                    self.active = True
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown sequencer command {command!r}")


def get_seq(ctx: Context, sequencer_rank: int) -> Generator:
    """Synchronously fetch the next sequence number (one round trip)."""
    seq = yield from ctx.rpc(sequencer_rank, TAG_SEQ, CONTROL_BYTES, {"kind": "get"})
    return seq


def migrate_sequencer(ctx: Context, from_rank: int, to_rank: int) -> Generator:
    """Ask the active sequencer on ``from_rank`` to move to ``to_rank``."""
    ack = yield from ctx.rpc(from_rank, TAG_SEQ, CONTROL_BYTES,
                             {"kind": "migrate", "dst": to_rank})
    return ack
