"""Reduction trees: one-level (flat) and two-level (cluster-aware).

The paper's Water optimization is exactly the move from a one-level
reduction (every rank ships its contribution to the root, most of them
over the WAN) to a two-level tree where cluster leaders combine locally
and forward a single partial result per cluster over the slow links.

``op`` combines two payloads; size is the on-the-wire size of one
contribution (reductions do not shrink data in these apps).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from .bcast import flat_bcast, hier_bcast
from .context import Context


def linear_reduce(ctx: Context, red_id: Any, root: int, size: int,
                  value: Any, op: Callable[[Any, Any], Any]) -> Generator:
    """One-level reduction: all ranks send directly to ``root``.

    Returns the combined value on ``root``; None elsewhere.  Combination
    order is ascending rank, so non-commutative ``op`` is deterministic.
    """
    tag = ("lred", red_id)
    with ctx.phase("linear_reduce"):
        if ctx.rank == root:
            contributions = {root: value}
            for _ in range(ctx.num_ranks - 1):
                msg = yield ctx.recv(tag)
                contributions[msg.src] = msg.payload
            acc = None
            for r in sorted(contributions):
                acc = contributions[r] if acc is None else op(acc, contributions[r])
            return acc
        yield ctx.send(root, size, tag, value)
        return None


def binomial_reduce(ctx: Context, red_id: Any, root: int, size: int,
                    value: Any, op: Callable[[Any, Any], Any]) -> Generator:
    """Binomial-tree reduction over rank order (MPICH-style, topology-unaware)."""
    topo = ctx.topology
    p = topo.num_ranks
    tag = ("bred", red_id)
    vrank = (ctx.rank - root) % p
    acc = value
    mask = 1
    with ctx.phase("binomial_reduce"):
        while mask < p:
            if vrank & mask:
                parent = ((vrank & ~mask) + root) % p
                yield ctx.send(parent, size, tag, acc)
                return None
            peer = vrank | mask
            if peer < p:
                msg = yield ctx.recv(tag)
                acc = op(acc, msg.payload)
            mask <<= 1
        return acc


def hier_reduce(ctx: Context, red_id: Any, root: int, size: int,
                value: Any, op: Callable[[Any, Any], Any]) -> Generator:
    """Two-level reduction: combine inside each cluster at the leader,
    then one WAN message per cluster to ``root``."""
    topo = ctx.topology
    tag_loc = ("hred-l", red_id)
    tag_wan = ("hred-w", red_id)
    root_cluster = topo.cluster_of(root)
    # Within the root's cluster the root itself acts as leader so the
    # result does not take an extra local hop.
    leader = root if ctx.cluster == root_cluster else topo.cluster_leader(ctx.cluster)

    with ctx.phase("hier_reduce"):
        if ctx.rank != leader:
            yield ctx.send(leader, size, tag_loc, value)
            return None

        acc = value
        contributions = {ctx.rank: value}
        for _ in range(len(topo.cluster_members(ctx.cluster)) - 1):
            msg = yield ctx.recv(tag_loc)
            contributions[msg.src] = msg.payload
        acc = None
        for r in sorted(contributions):
            acc = contributions[r] if acc is None else op(acc, contributions[r])

        if ctx.rank == root:
            cluster_parts = {root_cluster: acc}
            for _ in range(topo.num_clusters - 1):
                msg = yield ctx.recv(tag_wan)
                cluster_parts[topo.cluster_of(msg.src)] = msg.payload
            total = None
            for cid in sorted(cluster_parts):
                part = cluster_parts[cid]
                total = part if total is None else op(total, part)
            return total
        yield ctx.send(root, size, tag_wan, acc)
        return None


def allreduce(ctx: Context, red_id: Any, size: int, value: Any,
              op: Callable[[Any, Any], Any], hierarchical: bool = False,
              root: int = 0) -> Generator:
    """Reduce-then-broadcast allreduce in flat or cluster-aware flavour."""
    if hierarchical:
        result = yield from hier_reduce(ctx, red_id, root, size, value, op)
        result = yield from hier_bcast(ctx, ("ar", red_id), root, size, result)
    else:
        result = yield from linear_reduce(ctx, red_id, root, size, value, op)
        result = yield from flat_bcast(ctx, ("ar", red_id), root, size, result)
    return result
