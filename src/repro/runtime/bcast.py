"""Broadcast algorithms: flat binomial tree vs. cluster-aware two-level.

``flat_bcast`` is what a topology-unaware MPI (MPICH-style) does: a
binomial tree over rank order that happily routes many edges over the
slow links.  ``hier_bcast`` sends each payload exactly once per remote
cluster (root -> cluster leaders over the WAN), then fans out inside each
cluster on the fast network — the MagPIe/optimized-ASP structure.

All group members must call the same function with the same ``bcast_id``
and ``root``; the call returns the payload on every rank.
"""

from __future__ import annotations

from typing import Any, Generator

from .context import Context


def flat_bcast(ctx: Context, bcast_id: Any, root: int, size: int,
               payload: Any = None) -> Generator:
    """Binomial-tree broadcast over rank order (topology-unaware)."""
    topo = ctx.topology
    p = topo.num_ranks
    tag = ("bcast", bcast_id)
    vrank = (ctx.rank - root) % p
    with ctx.phase("flat_bcast"):
        if vrank != 0:
            msg = yield ctx.recv(tag)
            payload = msg.payload
        # After receiving (or as root), forward along the binomial tree: in
        # round k, ranks with vrank < 2^k send to vrank + 2^k.
        mask = 1
        while mask < p:
            if vrank < mask:
                peer = vrank + mask
                if peer < p:
                    yield ctx.send((peer + root) % p, size, tag, payload)
            mask <<= 1
        # Receivers above have already received before forwarding because the
        # binomial schedule guarantees the parent's send precedes the child's
        # forwarding rounds; Python-level we enforced it by receiving first.
        return payload


def hier_bcast(ctx: Context, bcast_id: Any, root: int, size: int,
               payload: Any = None) -> Generator:
    """Two-level broadcast: once per remote cluster over the WAN, then the
    intra-cluster hardware multicast primitive (Section 3.2: "point-to-point
    communication from the sender to the cluster gateways, and multicast
    primitives inside clusters")."""
    topo = ctx.topology
    tag_wan = ("hbcast-w", bcast_id)
    tag_loc = ("hbcast-l", bcast_id)
    root_cluster = topo.cluster_of(root)
    # The entry rank of a cluster is the root itself in the root's cluster,
    # the cluster leader elsewhere.
    my_entry = root if ctx.cluster == root_cluster else topo.cluster_leader(ctx.cluster)

    with ctx.phase("hier_bcast"):
        if ctx.rank == root:
            for cid in topo.clusters():
                if cid != root_cluster:
                    yield ctx.send(topo.cluster_leader(cid), size, tag_wan, payload)
        elif ctx.rank == my_entry:
            msg = yield ctx.recv(tag_wan)
            payload = msg.payload

        members = list(topo.cluster_members(ctx.cluster))
        if ctx.rank == my_entry:
            others = [r for r in members if r != ctx.rank]
            if others:
                yield ctx.multicast(others, size, tag_loc, payload)
        else:
            msg = yield ctx.recv(tag_loc)
            payload = msg.payload
        return payload
