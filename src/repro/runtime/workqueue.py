"""Work queues: centralized (uniform-network design) and per-cluster with
inter-cluster work stealing (the paper's TSP optimization).

Centralized queue
    One service holds every job; each worker request is an RPC to that
    rank — on a 4-cluster machine 75% of them cross the WAN.

Distributed queue
    One queue service per cluster (on the cluster leader).  Workers only
    talk to their local queue.  When a queue runs dry it steals batches
    from remote queues.  Global termination is detected by an accountant
    service that counts job completions and broadcasts TERM, at which
    point parked workers are released with ``None``.

The steal protocol is fully asynchronous inside the queue service (single
inbox, no blocking RPCs) so two queues stealing from each other cannot
deadlock.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from .context import CONTROL_BYTES, Context

TAG_CENTRAL = "wq-central"
TAG_QUEUE = "wq-cluster"
TAG_ACCOUNTANT = "wq-accountant"


class CentralQueueService:
    """Single job queue on one rank; replies ``None`` when exhausted."""

    def __init__(self, jobs: List[Any], job_bytes: int = 128) -> None:
        self.jobs: Deque[Any] = deque(jobs)
        self.job_bytes = job_bytes
        self.jobs_handed_out = 0

    def body(self, ctx: Context) -> Generator:
        while True:
            msg = yield ctx.recv(TAG_CENTRAL)
            if self.jobs:
                job = self.jobs.popleft()
                self.jobs_handed_out += 1
                yield ctx.reply(msg, self.job_bytes, job)
            else:
                yield ctx.reply(msg, CONTROL_BYTES, None)


def get_central_job(ctx: Context, queue_rank: int) -> Generator:
    """Fetch the next job from the central queue (None when exhausted)."""
    job = yield from ctx.rpc(queue_rank, TAG_CENTRAL, CONTROL_BYTES, {"kind": "get"})
    return job


class AccountantService:
    """Counts job completions; broadcasts TERM to queue services when done."""

    def __init__(self, total_jobs: int, queue_ranks: List[int]) -> None:
        self.total_jobs = total_jobs
        self.queue_ranks = queue_ranks
        self.completed = 0

    def body(self, ctx: Context) -> Generator:
        while self.completed < self.total_jobs:
            yield ctx.recv(TAG_ACCOUNTANT)
            self.completed += 1
        for q in self.queue_ranks:
            yield ctx.send(q, CONTROL_BYTES, TAG_QUEUE,
                           {"kind": "term", "reply_tag": None})


def report_job_done(ctx: Context, accountant_rank: int) -> Generator:
    """Fire-and-forget completion notification."""
    yield ctx.send(accountant_rank, CONTROL_BYTES, TAG_ACCOUNTANT, {"kind": "done"})


class ClusterQueueService:
    """One per-cluster job queue with asynchronous inter-cluster stealing.

    Messages (all on ``TAG_QUEUE``, ``kind`` dispatched):

    - ``get``: worker requests a job; replied with a job or parked.
    - ``steal-req``: a remote queue asks for a batch of jobs.
    - ``steal-reply``: jobs (possibly empty list) arriving from a victim.
    - ``term``: the accountant declared global completion.
    """

    def __init__(self, jobs: List[Any], peer_ranks: List[int],
                 job_bytes: int = 128, steal_fraction: float = 0.5,
                 terminate_on_drain: bool = False) -> None:
        self.jobs: Deque[Any] = deque(jobs)
        self.peer_ranks = peer_ranks
        self.job_bytes = job_bytes
        self.steal_fraction = steal_fraction
        #: When True, a fully failed steal round (every peer empty) releases
        #: parked workers with None instead of waiting for an accountant's
        #: TERM — correct for static job sets because rounds are sequential,
        #: so no stolen loot can arrive after the None replies.
        self.terminate_on_drain = terminate_on_drain
        self.parked: Deque[Tuple[int, Any]] = deque()  # (worker_rank, reply_tag)
        self.terminated = False
        self.steal_in_flight = False
        self._steal_cursor = 0
        self._steal_failures_this_round = 0
        self.jobs_handed_out = 0
        self.jobs_stolen_in = 0
        self.jobs_stolen_away = 0

    # -- helpers -------------------------------------------------------
    def _reply(self, ctx: Context, worker: int, reply_tag: Any,
               job: Optional[Any]) -> Generator:
        size = self.job_bytes if job is not None else CONTROL_BYTES
        yield ctx.send(worker, size, reply_tag, job)

    def _serve_parked(self, ctx: Context) -> Generator:
        while self.parked and self.jobs:
            worker, reply_tag = self.parked.popleft()
            job = self.jobs.popleft()
            self.jobs_handed_out += 1
            yield from self._reply(ctx, worker, reply_tag, job)
        if self.terminated:
            while self.parked:
                worker, reply_tag = self.parked.popleft()
                yield from self._reply(ctx, worker, reply_tag, None)

    def _maybe_start_steal(self, ctx: Context) -> Generator:
        if (self.steal_in_flight or self.terminated or not self.parked
                or not self.peer_ranks or self.jobs):
            return
        victim = self.peer_ranks[self._steal_cursor % len(self.peer_ranks)]
        self._steal_cursor += 1
        self.steal_in_flight = True
        yield ctx.send(victim, CONTROL_BYTES, TAG_QUEUE,
                       {"kind": "steal-req", "thief": ctx.rank})

    # -- main loop -----------------------------------------------------
    def body(self, ctx: Context) -> Generator:
        while True:
            msg = yield ctx.recv(TAG_QUEUE)
            command = msg.payload
            kind = command["kind"]
            if kind == "get":
                if self.jobs:
                    job = self.jobs.popleft()
                    self.jobs_handed_out += 1
                    yield from self._reply(ctx, msg.src, command["reply_tag"], job)
                elif self.terminated:
                    yield from self._reply(ctx, msg.src, command["reply_tag"], None)
                else:
                    self.parked.append((msg.src, command["reply_tag"]))
                    self._steal_failures_this_round = 0
                    if self.peer_ranks:
                        yield from self._maybe_start_steal(ctx)
                    elif self.terminate_on_drain:
                        # No peers to steal from: the queue is drained.
                        self.terminated = True
                        yield from self._serve_parked(ctx)
            elif kind == "steal-req":
                count = int(len(self.jobs) * self.steal_fraction)
                loot = [self.jobs.pop() for _ in range(count)]
                self.jobs_stolen_away += len(loot)
                size = max(CONTROL_BYTES, self.job_bytes * len(loot))
                yield ctx.send(command["thief"], size, TAG_QUEUE,
                               {"kind": "steal-reply", "jobs": loot})
            elif kind == "steal-reply":
                self.steal_in_flight = False
                loot = command["jobs"]
                if loot:
                    self.jobs_stolen_in += len(loot)
                    self.jobs.extend(loot)
                    self._steal_failures_this_round = 0
                    yield from self._serve_parked(ctx)
                else:
                    self._steal_failures_this_round += 1
                if self.parked and not self.terminated and not self.jobs:
                    if self._steal_failures_this_round < len(self.peer_ranks):
                        yield from self._maybe_start_steal(ctx)
                    elif self.terminate_on_drain:
                        self.terminated = True
                        yield from self._serve_parked(ctx)
                    else:
                        # Every peer was dry this round.  Back off for one
                        # WAN round trip, then retry — the remaining jobs may
                        # drain slowly at a remote cluster.
                        delay = 2 * ctx.topology.wide.latency + 1e-4
                        ctx.spawn_service(
                            lambda c: _steal_retry_timer(c, delay), name="wq-retry"
                        )
            elif kind == "steal-retry":
                if self.parked and not self.terminated and not self.jobs:
                    self._steal_failures_this_round = 0
                    yield from self._maybe_start_steal(ctx)
            elif kind == "term":
                self.terminated = True
                yield from self._serve_parked(ctx)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown queue command {kind!r}")


def _steal_retry_timer(ctx: Context, delay: float) -> Generator:
    """One-shot timer: after ``delay``, poke the local queue service.

    ``ctx.sleep`` (not the bare ``Sleep`` primitive) keeps the timer
    visible on the probe bus: without it the retry delay shows up in
    profiles as an unexplained hole in the daemon's timeline.
    """
    yield ctx.sleep(delay)
    yield ctx.send(ctx.rank, CONTROL_BYTES, TAG_QUEUE, {"kind": "steal-retry"})


def get_cluster_job(ctx: Context, queue_rank: int, request_id: Any) -> Generator:
    """Fetch the next job from this cluster's queue (None = terminate)."""
    reply_tag = ("wq-job", ctx.rank, request_id)
    yield ctx.send(queue_rank, CONTROL_BYTES, TAG_QUEUE,
                   {"kind": "get", "reply_tag": reply_tag})
    msg = yield ctx.recv(reply_tag)
    return msg.payload
