"""Command-line entry point: ``python -m repro <experiment> [args...]``.

Lists and dispatches the experiment harnesses (see EXPERIMENTS.md).
"""

from __future__ import annotations

import sys

from .experiments import (
    ablations,
    algselect,
    bench,
    breakdown,
    clusters,
    degraded,
    export,
    figure1,
    figure3,
    figure4,
    magpie_bench,
    table1,
    table2,
    variability,
)
from .critpath import cli as profile_cli
from .experiments import cache as cache_cli
from .faults import cli as chaos_cli
from .lint import cli as lint_cli
from .obs import cli as trace_cli
from .replay import cli as replay_cli
from .serve import cli as serve_cli
from .whatif import cli as whatif_cli

COMMANDS = {
    "table1": (table1.main, "Table 1: single-cluster speedups/traffic/runtime"),
    "table2": (table2.main, "Table 2: patterns, optimizations, WAN message cuts"),
    "figure1": (figure1.main, "Figure 1: inter-cluster traffic scatter"),
    "figure3": (figure3.main, "Figure 3: relative-speedup panels (the main result)"),
    "figure4": (figure4.main, "Figure 4: communication-time percentages"),
    "clusters": (clusters.main, "Section 5.1: 8x4 vs 4x8 cluster structure"),
    "magpie": (magpie_bench.main, "Section 6: MagPIe vs MPICH collectives"),
    "variability": (variability.main, "Further work: WAN latency/bandwidth jitter"),
    "breakdown": (breakdown.main, "Per-rank time breakdown at a grid point"),
    "ablations": (ablations.main, "Ablations of each optimization's ingredients"),
    "export": (export.main, "Export experiment data as CSV/JSON"),
    "algselect": (algselect.main, "Collective algorithm selection across the gap"),
    "trace": (trace_cli.main, "Run one app instrumented; write Perfetto trace + report"),
    "profile": (profile_cli.main, "Critical-path profile: time attribution + WAN blame"),
    "whatif": (whatif_cli.main, "Record-once what-if analysis: predicted Figure-3 grid"),
    "replay": (replay_cli.main, "Vectorized Figure-3 grid from a compiled replay program"),
    "cache": (cache_cli.main, "Inspect/clear the on-disk simulation result cache"),
    "bench": (bench.main, "Hot-path benchmarks; record/check BENCH_simperf.json"),
    "lint": (lint_cli.main, "Static determinism/protocol lint over app modules"),
    "protograph": (lint_cli.protograph_main,
                   "Export static communication graphs + stability labels"),
    "chaos": (chaos_cli.main, "Run one app under an injected WAN fault plan"),
    "degraded": (degraded.main, "Figure 3 re-run under fixed WAN loss rates"),
    "serve": (serve_cli.serve_main, "Run the simulation-as-a-service front end"),
    "submit": (serve_cli.submit_main, "Submit a job to a running serve instance"),
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:")
        for name, (_, desc) in COMMANDS.items():
            print(f"  {name:12s} {desc}")
        return 0
    name, rest = argv[0], argv[1:]
    if name not in COMMANDS:
        print(f"unknown experiment {name!r}; run `python -m repro --help`",
              file=sys.stderr)
        return 2
    rc = COMMANDS[name][0](rest)
    return int(rc) if rc else 0


if __name__ == "__main__":
    sys.exit(main())
