"""Compiling a :class:`~repro.faults.plan.FaultPlan` into live injection.

A :class:`FaultInjector` is built by the :class:`~repro.runtime.machine.
Machine` when a plan is passed, *after* the router exists: directives are
matched (``fnmatch``) against the actual WAN link names, per-link fault
state is attached to the :class:`~repro.network.link.Link` objects (for
latency bursts) and to the router (for drop decisions), and every
finite outage/crash window gets engine timers that publish
``fault_link`` up/down transitions on the probe bus.

Determinism: every random decision draws from a per-link
``random.Random`` derived via :func:`repro.sim.rng.make_rng` with the
machine seed and the stable key ``"fault:<link-name>"``, and draws are
consumed in engine event order — so the same seed and plan replay to
bit-identical results, and adding a fault stream for one link never
perturbs another link's stream.
"""

from __future__ import annotations

import math
from fnmatch import fnmatchcase
from functools import partial
from typing import Dict, List, Tuple

from ..obs.events import FaultDropEvent, FaultLinkEvent, FaultSpikeEvent
from ..sim.rng import make_rng
from .plan import FaultPlan

Window = Tuple[float, float]  # (start, end)


def _window(start: float, duration: float) -> Window:
    return (start, math.inf if math.isinf(duration) else start + duration)


def _in_any(windows: List[Window], when: float) -> bool:
    for start, end in windows:
        if start <= when < end:
            return True
    return False


class LinkFaultState:
    """Per-WAN-link compiled fault schedule (drop windows + bursts)."""

    __slots__ = ("name", "outages", "loss", "bursts", "rng", "bus",
                 "drops", "spikes")

    def __init__(self, name: str, seed: int, bus) -> None:
        self.name = name
        #: outage windows, in plan order
        self.outages: List[Window] = []
        #: loss windows with probability: (start, end, p), in plan order
        self.loss: List[Tuple[float, float, float]] = []
        #: burst windows: (start, end, factor, extra, jitter_cv)
        self.bursts: List[Tuple[float, float, float, float, float]] = []
        self.rng = make_rng(seed, f"fault:{name}")
        self.bus = bus
        self.drops = 0
        self.spikes = 0

    # -- drop decisions (router hook) ----------------------------------
    def drop_reason(self, when: float):
        """``"outage"``/``"loss"``/None for a message hitting the wire."""
        if _in_any(self.outages, when):
            return "outage"
        for start, end, probability in self.loss:
            if start <= when < end:
                # One draw per message per lossy wire entry, in engine
                # event order — replays are bit-identical.
                if self.rng.random() < probability:
                    return "loss"
                return None
        return None

    # -- latency adjustment (Link.transfer hook) -----------------------
    def adjust_latency(self, when: float, latency: float, size: int) -> float:
        for start, end, factor, extra, jitter_cv in self.bursts:
            if start <= when < end:
                adjusted = latency * factor + extra
                if jitter_cv > 0.0:
                    # Lognormal with mean 1 and the requested coefficient
                    # of variation, one draw per affected transfer.
                    sigma2 = math.log(1.0 + jitter_cv * jitter_cv)
                    mu = -0.5 * sigma2
                    adjusted *= self.rng.lognormvariate(mu, math.sqrt(sigma2))
                self.spikes += 1
                bus = self.bus
                if bus.want_fault_spike:
                    bus.emit("fault_spike", FaultSpikeEvent(
                        when, self.name, latency, adjusted, size))
                return adjusted
        return latency


class FaultInjector:
    """Live fault state for one machine, compiled from a :class:`FaultPlan`.

    The router consults :meth:`gateway_down` and :meth:`wan_drop` on the
    inter-cluster path (guarded by ``router._faults is not None``, so the
    fault-free hot path is untouched); links with burst windows carry
    their :class:`LinkFaultState` directly.  All drops funnel through
    :meth:`record_drop`, which feeds the ``fault_drop`` probe topic and
    the machine's :class:`~repro.network.stats.TrafficStats` counters.
    """

    def __init__(self, plan: FaultPlan, machine) -> None:
        self.plan = plan
        self.machine = machine
        self.bus = machine.bus
        self.stats = machine.stats
        router = machine.router
        seed = machine.seed

        #: per-(src_cluster, dst_cluster) link fault state (matched links only)
        self.links: Dict[Tuple[int, int], LinkFaultState] = {}
        #: per-cluster gateway crash windows
        self.crashes: Dict[int, List[Window]] = {}
        self.drops = 0
        self.drops_by_reason: Dict[str, int] = {}
        self.drops_by_link: Dict[str, int] = {}

        wan_items = sorted(router._wan.items())
        for pair, link in wan_items:
            state = None
            for d in plan.outages:
                if fnmatchcase(link.name, d.link):
                    state = state or LinkFaultState(link.name, seed, self.bus)
                    state.outages.append(_window(d.start, d.duration))
            for d in plan.loss:
                if fnmatchcase(link.name, d.link):
                    state = state or LinkFaultState(link.name, seed, self.bus)
                    state.loss.append(
                        _window(d.start, d.duration) + (d.probability,))
            for d in plan.bursts:
                if fnmatchcase(link.name, d.link):
                    state = state or LinkFaultState(link.name, seed, self.bus)
                    state.bursts.append(
                        _window(d.start, d.duration)
                        + (d.factor, d.extra, d.jitter_cv))
            if state is not None:
                self.links[pair] = state
                if state.bursts:
                    link.faults = state

        clusters = set(machine.topology.clusters())
        for d in plan.crashes:
            if d.cluster not in clusters:
                raise ValueError(
                    f"GatewayCrash targets cluster {d.cluster}, but the "
                    f"topology has clusters {sorted(clusters)}")
            self.crashes.setdefault(d.cluster, []).append(
                _window(d.start, d.duration))

        router._faults = self
        self._schedule_transitions(machine.engine)

    # ------------------------------------------------------------------
    def _schedule_transitions(self, engine) -> None:
        """Engine timers publishing ``fault_link`` up/down transitions."""
        transitions: List[Tuple[float, str, str]] = []
        for pair in sorted(self.links):
            state = self.links[pair]
            for start, end in state.outages:
                transitions.append((start, state.name, "down"))
                if not math.isinf(end):
                    transitions.append((end, state.name, "up"))
        for cluster in sorted(self.crashes):
            for start, end in self.crashes[cluster]:
                transitions.append((start, f"gw{cluster}", "down"))
                if not math.isinf(end):
                    transitions.append((end, f"gw{cluster}", "up"))
        for when, name, kind in sorted(transitions):
            engine.call_at(when, partial(self._emit_transition, when, name, kind))

    def _emit_transition(self, when: float, name: str, kind: str) -> None:
        if self.bus.want_fault_link:
            self.bus.emit("fault_link", FaultLinkEvent(when, name, kind))

    # ------------------------------------------------------------------
    # Router hooks
    # ------------------------------------------------------------------
    def gateway_down(self, cluster: int, when: float) -> bool:
        windows = self.crashes.get(cluster)
        return windows is not None and _in_any(windows, when)

    def wan_drop(self, src_cluster: int, dst_cluster: int, when: float):
        """Drop reason for a message entering the WAN wire, or None."""
        state = self.links.get((src_cluster, dst_cluster))
        if state is None:
            return None
        reason = state.drop_reason(when)
        if reason is not None:
            state.drops += 1
        return reason

    def record_drop(self, msg, link_name: str, reason: str,
                    when: float) -> None:
        """Account one injected drop and publish it on the probe bus."""
        self.drops += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        self.drops_by_link[link_name] = self.drops_by_link.get(link_name, 0) + 1
        self.stats.fault_drops += 1
        bus = self.bus
        if bus.want_fault_drop:
            bus.emit("fault_drop", FaultDropEvent(
                when, link_name, reason, msg.src, msg.dst, msg.size, msg.tag,
                msg.send_time))

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Injection accounting for reports and the chaos CLI."""
        return {
            "drops": self.drops,
            "by_reason": {k: self.drops_by_reason[k]
                          for k in sorted(self.drops_by_reason)},
            "by_link": {k: self.drops_by_link[k]
                        for k in sorted(self.drops_by_link)},
            "spikes": sum(self.links[p].spikes for p in sorted(self.links)),
        }


__all__ = ["FaultInjector", "LinkFaultState"]
