"""Declarative fault schedules for the two-layer interconnect.

A :class:`FaultPlan` describes, ahead of a run, every imperfection the
WAN layer should exhibit — packet loss, latency spikes/jitter bursts,
link outages, gateway crash-and-recover windows — plus the reliable
transport (:class:`TransportConfig`) that lets applications complete in
spite of them.  Plans are plain frozen data: the same plan compiled
against the same seed produces bit-identical runs (see docs/faults.md
for the determinism contract).

Directives select WAN links by ``fnmatch`` pattern against the router's
link names (``"wan0->1"``, ``"wan*"``, ``"wan2->*"``); gateway crashes
select a cluster id.  Only the wide-area layer is fault-prone — the
paper's premise is that the local Myrinet is reliable and the WAN is the
weak layer — so intra-cluster NIC hops never drop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

#: Matches every WAN link.
ALL_WAN = "wan*"


def _check_window(start: float, duration: float, what: str) -> None:
    if start < 0 or math.isnan(start):
        raise ValueError(f"{what}: negative or NaN start {start!r}")
    if duration <= 0 or math.isnan(duration):
        raise ValueError(f"{what}: duration must be positive, got {duration!r}")


@dataclass(frozen=True)
class PacketLoss:
    """Independent per-message drop probability on matching WAN links."""

    link: str = ALL_WAN
    probability: float = 0.01
    start: float = 0.0
    duration: float = math.inf

    def validate(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"PacketLoss({self.link!r}): probability must be in [0, 1], "
                f"got {self.probability!r}")
        _check_window(self.start, self.duration, f"PacketLoss({self.link!r})")


@dataclass(frozen=True)
class LatencyBurst:
    """A window in which matching WAN links run slow and/or jittery.

    While active, each transfer's propagation latency becomes
    ``latency * factor + extra`` seconds, optionally multiplied by a
    per-message lognormal jitter sample with coefficient of variation
    ``jitter_cv`` (drawn from the link's seeded fault stream).
    """

    link: str = ALL_WAN
    start: float = 0.0
    duration: float = math.inf
    factor: float = 1.0
    extra: float = 0.0
    jitter_cv: float = 0.0

    def validate(self) -> None:
        what = f"LatencyBurst({self.link!r})"
        _check_window(self.start, self.duration, what)
        if self.factor < 0 or self.extra < 0 or self.jitter_cv < 0:
            raise ValueError(f"{what}: factor/extra/jitter_cv must be >= 0")
        if self.factor == 1.0 and self.extra == 0.0 and self.jitter_cv == 0.0:
            raise ValueError(f"{what}: burst has no effect "
                             f"(factor=1, extra=0, jitter_cv=0)")


@dataclass(frozen=True)
class Outage:
    """A window in which matching WAN links drop every message."""

    link: str = ALL_WAN
    start: float = 0.0
    duration: float = math.inf

    def validate(self) -> None:
        _check_window(self.start, self.duration, f"Outage({self.link!r})")


@dataclass(frozen=True)
class GatewayCrash:
    """A window in which one cluster's gateway machine is down.

    While crashed, the gateway forwards nothing: messages arriving at it
    — outbound from its cluster or inbound to it — are dropped.
    """

    cluster: int = 0
    start: float = 0.0
    duration: float = math.inf

    def validate(self) -> None:
        if self.cluster < 0:
            raise ValueError(f"GatewayCrash: negative cluster {self.cluster}")
        _check_window(self.start, self.duration,
                      f"GatewayCrash(cluster={self.cluster})")


@dataclass(frozen=True)
class TransportConfig:
    """Timeout/retransmit/ack parameters of the reliable WAN transport.

    The retransmission timeout for a message is
    ``max(min_rto, rto_factor * uncontended_rtt)`` where the RTT is the
    analytic no-queueing round trip of the data plus its ack; each
    retry multiplies the timeout by ``backoff``.  ``max_retries``
    retransmissions without an ack raise
    :class:`~repro.runtime.transport.TransportError`.
    """

    max_retries: int = 10
    rto_factor: float = 3.0
    min_rto: float = 1e-3
    backoff: float = 2.0
    ack_bytes: int = 64

    def validate(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.rto_factor <= 0 or self.min_rto <= 0:
            raise ValueError("rto_factor and min_rto must be positive")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.ack_bytes <= 0:
            raise ValueError(f"ack_bytes must be positive, got {self.ack_bytes}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, declarative fault schedule for one run.

    ``transport`` defaults to an enabled :class:`TransportConfig` so that
    lossy runs complete; pass ``transport=None`` to study the unprotected
    runtime (losses then surface as :class:`~repro.runtime.DeadlockError`).
    A plan with no fault directives but a transport config is valid — it
    enables the reliable transport on a clean network.
    """

    loss: Tuple[PacketLoss, ...] = ()
    bursts: Tuple[LatencyBurst, ...] = ()
    outages: Tuple[Outage, ...] = ()
    crashes: Tuple[GatewayCrash, ...] = ()
    transport: Optional[TransportConfig] = field(default_factory=TransportConfig)

    def __post_init__(self) -> None:
        # Accept lists for convenience; store tuples so plans hash/compare.
        for name in ("loss", "bursts", "outages", "crashes"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        self.validate()

    def validate(self) -> None:
        for directive in self.loss + self.bursts + self.outages + self.crashes:
            directive.validate()
        if self.transport is not None:
            self.transport.validate()

    @property
    def has_faults(self) -> bool:
        """True when any injection directive is present."""
        return bool(self.loss or self.bursts or self.outages or self.crashes)

    @property
    def active(self) -> bool:
        """True when the plan changes the run at all (faults or transport)."""
        return self.has_faults or self.transport is not None

    def without_transport(self) -> "FaultPlan":
        return replace(self, transport=None)

    def describe(self) -> List[str]:
        """Human-readable one-liners, stable order, for CLIs and reports."""
        lines = []
        for d in self.loss:
            lines.append(f"loss {d.probability:g} on {d.link} "
                         f"[{d.start:g}s, +{d.duration:g}s)")
        for d in self.bursts:
            lines.append(f"latency burst x{d.factor:g}+{d.extra:g}s "
                         f"(jitter_cv={d.jitter_cv:g}) on {d.link} "
                         f"[{d.start:g}s, +{d.duration:g}s)")
        for d in self.outages:
            lines.append(f"outage on {d.link} [{d.start:g}s, +{d.duration:g}s)")
        for d in self.crashes:
            lines.append(f"gateway crash on cluster {d.cluster} "
                         f"[{d.start:g}s, +{d.duration:g}s)")
        lines.append("reliable transport: "
                     + ("off" if self.transport is None else
                        f"max_retries={self.transport.max_retries}, "
                        f"rto_factor={self.transport.rto_factor:g}, "
                        f"backoff={self.transport.backoff:g}"))
        return lines

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def wan_loss(probability: float,
                 transport: Optional[TransportConfig] = None) -> "FaultPlan":
        """Uniform packet loss on every WAN link, reliable transport on."""
        return FaultPlan(
            loss=(PacketLoss(link=ALL_WAN, probability=probability),),
            transport=transport if transport is not None else TransportConfig())

    @staticmethod
    def reliable_only(config: Optional[TransportConfig] = None) -> "FaultPlan":
        """No injected faults; just enable the reliable WAN transport."""
        return FaultPlan(
            transport=config if config is not None else TransportConfig())


__all__ = [
    "ALL_WAN",
    "FaultPlan",
    "GatewayCrash",
    "LatencyBurst",
    "Outage",
    "PacketLoss",
    "TransportConfig",
]
