"""Chaos harness: ``python -m repro chaos <app> [faults...]``.

Runs one application variant on the paper's 4x8 two-layer system with a
:class:`~repro.faults.plan.FaultPlan` assembled from the command line —
WAN packet loss, latency bursts, link outages, gateway crashes — and
reports whether the run survived, at what cost (retransmissions, drops,
runtime overhead), and optionally whether it replays bit-identically.

Exit codes: 0 when the run completes, 1 when it fails with a typed
error (``TransportError``, ``DeadlockError``, event-budget
``TimeoutError``) or a replay check diverges, 2 on usage errors.

Examples::

    python -m repro chaos water --loss 0.01
    python -m repro chaos asp --variant optimized --loss 0.05 --replay-check
    python -m repro chaos fft --outage 0.5:0.2 --spike 0.1:1.0:x3+5
    python -m repro chaos tsp --crash 2:0.4:0.3 --sanitize
    python -m repro chaos barnes --loss 0.2 --no-transport  # expect exit 1
"""

from __future__ import annotations

import argparse
from typing import Optional

from ..apps import run_app
from ..network.topology import das_topology
from ..runtime.machine import DeadlockError
from ..runtime.transport import TransportError
from .plan import (ALL_WAN, FaultPlan, GatewayCrash, LatencyBurst, Outage,
                   PacketLoss, TransportConfig)


def _parse_spike(text: str) -> LatencyBurst:
    """``START:DUR:xFACTOR[+EXTRA_MS][:cvCV]`` -> :class:`LatencyBurst`.

    e.g. ``0.1:1.0:x3+5`` — from t=0.1s for 1s, latency*3 + 5 ms, and
    ``0.0:2.0:x1+0:cv0.3`` — pure jitter with CV 0.3.
    """
    try:
        parts = text.split(":")
        start, duration = float(parts[0]), float(parts[1])
        factor, extra, cv = 1.0, 0.0, 0.0
        for part in parts[2:]:
            if part.startswith("cv"):
                cv = float(part[2:])
            else:
                if "+" in part:
                    head, _, extra_ms = part.partition("+")
                    extra = float(extra_ms) * 1e-3
                else:
                    head = part
                if head:
                    factor = float(head.lstrip("x"))
        return LatencyBurst(ALL_WAN, start=start, duration=duration,
                            factor=factor, extra=extra, jitter_cv=cv)
    except (ValueError, IndexError) as exc:
        raise argparse.ArgumentTypeError(
            f"bad --spike {text!r} (want START:DUR:xFACTOR[+EXTRA_MS][:cvCV])"
        ) from exc


def _parse_outage(text: str) -> Outage:
    """``START:DUR`` -> :class:`Outage` on every WAN link."""
    try:
        start, _, duration = text.partition(":")
        return Outage(ALL_WAN, start=float(start), duration=float(duration))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad --outage {text!r} (want START:DUR)") from exc


def _parse_crash(text: str) -> GatewayCrash:
    """``CLUSTER:START:DUR`` -> :class:`GatewayCrash`."""
    try:
        cluster, start, duration = text.split(":")
        return GatewayCrash(int(cluster), start=float(start),
                            duration=float(duration))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad --crash {text!r} (want CLUSTER:START:DUR)") from exc


def build_plan(args: argparse.Namespace) -> FaultPlan:
    loss = (PacketLoss(ALL_WAN, args.loss),) if args.loss else ()
    transport: Optional[TransportConfig] = None
    if not args.no_transport:
        transport = TransportConfig(max_retries=args.max_retries)
    return FaultPlan(loss=loss, bursts=tuple(args.spike),
                     outages=tuple(args.outage), crashes=tuple(args.crash),
                     transport=transport)


def _run_once(args: argparse.Namespace, plan: FaultPlan):
    topo = das_topology(args.clusters, args.cluster_size, args.latency_ms,
                        args.bandwidth)
    return run_app(args.app, args.variant, topo, scale=args.scale,
                   seed=args.seed, sanitize=args.sanitize, faults=plan,
                   max_events=args.max_events)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("app", help="application name (e.g. water, asp)")
    parser.add_argument("--variant", default="unoptimized",
                        choices=["unoptimized", "optimized"])
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="packet-loss probability on every WAN link")
    parser.add_argument("--spike", type=_parse_spike, action="append",
                        default=[], metavar="START:DUR:xF[+MS][:cvCV]",
                        help="latency burst on every WAN link")
    parser.add_argument("--outage", type=_parse_outage, action="append",
                        default=[], metavar="START:DUR",
                        help="hard outage on every WAN link")
    parser.add_argument("--crash", type=_parse_crash, action="append",
                        default=[], metavar="CLUSTER:START:DUR",
                        help="gateway crash-and-recover for one cluster")
    parser.add_argument("--no-transport", action="store_true",
                        help="disable the reliable transport (lossy runs "
                             "then typically deadlock)")
    parser.add_argument("--max-retries", type=int, default=10)
    parser.add_argument("--bandwidth", type=float, default=1.0,
                        help="WAN MByte/s per link")
    parser.add_argument("--latency-ms", type=float, default=10.0,
                        help="one-way WAN latency")
    parser.add_argument("--clusters", type=int, default=4)
    parser.add_argument("--cluster-size", type=int, default=8)
    parser.add_argument("--max-events", type=int, default=20_000_000,
                        help="engine event budget; exceeded -> exit 1")
    parser.add_argument("--sanitize", action="store_true",
                        help="attach the runtime protocol sanitizer")
    parser.add_argument("--replay-check", action="store_true",
                        help="run twice and require identical results")
    args = parser.parse_args(argv)

    plan = build_plan(args)
    print(f"{args.app} {args.variant} on {args.clusters}x{args.cluster_size} "
          f"@ {args.bandwidth:g} MByte/s, {args.latency_ms:g} ms WAN, "
          f"seed {args.seed}")
    for line in plan.describe():
        print(f"  {line}")
    try:
        result = _run_once(args, plan)
    except (TransportError, DeadlockError, TimeoutError, ValueError) as exc:
        print(f"FAILED: {type(exc).__name__}: {exc}")
        return 2 if isinstance(exc, ValueError) else 1

    print(f"runtime: {result.runtime:.6f} s")
    injector = result.machine.fault_injector
    if injector is not None:
        for key, value in sorted(injector.summary().items()):
            print(f"  {key}: {value}")
    faults_summary = result.traffic_summary().get("faults")
    if faults_summary:
        print(f"  traffic: {faults_summary}")

    if args.replay_check:
        replay = _run_once(args, plan)
        before = repr((result.runtime, result.traffic_summary()))
        after = repr((replay.runtime, replay.traffic_summary()))
        if before != after:
            print("REPLAY MISMATCH:")
            print(f"  first:  {before}")
            print(f"  second: {after}")
            return 1
        print("replay: identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
