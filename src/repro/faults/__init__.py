"""Deterministic fault injection for the two-layer interconnect.

Declare *what goes wrong* as a :class:`FaultPlan` (packet loss, latency
bursts, link outages, gateway crash-and-recover, all on the WAN layer),
hand it to ``Machine``/``run_spmd``/``run_app`` via ``faults=``, and the
run replays bit-identically per seed — every injected event published on
the probe bus's ``fault_*`` topics, every loss survived by the reliable
transport in :mod:`repro.runtime.transport` unless the plan turns it
off.  See docs/faults.md.
"""

from .inject import FaultInjector, LinkFaultState
from .plan import (ALL_WAN, FaultPlan, GatewayCrash, LatencyBurst, Outage,
                   PacketLoss, TransportConfig)

__all__ = [
    "ALL_WAN",
    "FaultInjector",
    "FaultPlan",
    "GatewayCrash",
    "LatencyBurst",
    "LinkFaultState",
    "Outage",
    "PacketLoss",
    "TransportConfig",
]
