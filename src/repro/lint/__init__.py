"""Correctness tooling: determinism lint + simulation sanitizer.

Two prongs guard the invariants every published number rests on:

- :mod:`repro.lint.static` — an AST linter flagging determinism hazards
  (wall-clock reads, global RNG, hash-order iteration), protocol misuse
  (non-syscall yields, blocking calls, unmatched receives) and shared
  mutable module state.  CLI: ``python -m repro lint [--strict] [paths]``.
- :mod:`repro.lint.sanitizer` — an opt-in probe-bus subscriber
  (``run_spmd(..., sanitize=True)``) checking FIFO delivery order,
  message conservation and engine-time monotonicity live, and turning
  drained-while-blocked states into wait-for-cycle reports with
  per-process blocked-at backtraces.

A third prong, :mod:`repro.lint.proto`, lifts the static checks to
whole programs: an interprocedural abstract interpreter extracts each
registered app/variant's rank-symbolic communication skeleton, then
checks static deadlock cycles, unmatched symbolic channels and
determinism taint, and classifies every app's order stability
(``stable | unstable | timing-sensitive``) for the replay ladder.
CLI: ``python -m repro lint --proto`` / ``python -m repro protograph``.

See ``docs/lint.md`` for the rule catalogue and suppression syntax.
"""

from .baseline import filter_new, load_baseline, write_baseline
from .rules import (Finding, PROTO_RULES, RULES, RUNTIME_RULES, Rule,
                    STATIC_RULES)
from .sanitizer import (DeadlockReport, Sanitizer, SanitizerError,
                        blocked_frames)
from .static import lint_paths, lint_source

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "STATIC_RULES",
    "RUNTIME_RULES",
    "PROTO_RULES",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
    "filter_new",
    "Sanitizer",
    "SanitizerError",
    "DeadlockReport",
    "blocked_frames",
]
