"""Correctness tooling: determinism lint + simulation sanitizer.

Two prongs guard the invariants every published number rests on:

- :mod:`repro.lint.static` — an AST linter flagging determinism hazards
  (wall-clock reads, global RNG, hash-order iteration), protocol misuse
  (non-syscall yields, blocking calls, unmatched receives) and shared
  mutable module state.  CLI: ``python -m repro lint [--strict] [paths]``.
- :mod:`repro.lint.sanitizer` — an opt-in probe-bus subscriber
  (``run_spmd(..., sanitize=True)``) checking FIFO delivery order,
  message conservation and engine-time monotonicity live, and turning
  drained-while-blocked states into wait-for-cycle reports with
  per-process blocked-at backtraces.

See ``docs/lint.md`` for the rule catalogue and suppression syntax.
"""

from .rules import Finding, RULES, RUNTIME_RULES, Rule, STATIC_RULES
from .sanitizer import (DeadlockReport, Sanitizer, SanitizerError,
                        blocked_frames)
from .static import lint_paths, lint_source

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "STATIC_RULES",
    "RUNTIME_RULES",
    "lint_paths",
    "lint_source",
    "Sanitizer",
    "SanitizerError",
    "DeadlockReport",
    "blocked_frames",
]
