"""Runtime simulation sanitizer: protocol invariants checked live.

The :class:`Sanitizer` is an opt-in probe-bus subscriber
(``Machine(..., sanitize=True)`` / ``run_spmd(..., sanitize=True)``)
that observes the ``send``/``deliver``/``op`` topics and checks, as the
run executes:

- **engine-time monotonicity** — observed event times never regress;
- **per-(src, dst, tag) FIFO** — deliveries on a channel happen in send
  order (each delivery is matched to the oldest outstanding send via its
  latency, so a reordering is caught at the exact message);
- **message conservation** — at a drained run end every routed message
  was delivered, and mailbox contents that no receiver ever consumed are
  reported per channel as leaks;
- **deadlock cycles** — when the event queue drains with live processes,
  a wait-for graph over the blocked processes (edges to the historical
  senders of the awaited channel) names every rank and channel in each
  cycle, with per-process blocked-at backtraces read straight off the
  suspended generator frames.

Because it is an ordinary bus subscriber, the sanitizer reuses the
no-subscriber fast path: with ``sanitize=False`` (the default) no topic
flag flips and the simulation runs the exact un-instrumented hot path.
With it on, the simulation is *observed but untouched* — results stay
byte-identical (see ``tests/lint/test_golden_parity.py``).

Error-severity findings (FIFO violations, time regressions, lost
messages) raise :class:`SanitizerError` at run end; leak reports are
warnings available on :attr:`Sanitizer.findings`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from ..obs.events import DeliverEvent, FaultDropEvent, OpEvent, SendEvent
from .rules import Finding, make_finding

#: Relative tolerance when matching a delivery back to its send time.
_TIME_EPS = 1e-9

Channel = Tuple[int, int, Any]  # (src, dst, tag)

#: Tag heads of the reliable transport's wire channels.  Their messages
#: are conservation-checked like any other, but (a) retransmitted
#: attempts may legally overtake each other on a jittery wire, so the
#: strict FIFO check is replaced by exact send-time matching, and (b)
#: acks/duplicates still in flight when the run stops are protocol
#: residue, not application leaks.
_TRANSPORT_HEADS = ("_rt", "_rt-ack")


def _is_transport_tag(tag: Any) -> bool:
    return isinstance(tag, tuple) and bool(tag) and tag[0] in _TRANSPORT_HEADS


class SanitizerError(RuntimeError):
    """An error-severity runtime invariant was violated."""

    def __init__(self, findings: List[Finding]) -> None:
        self.findings = findings
        lines = "\n".join("  " + f.render() for f in findings)
        super().__init__(f"simulation sanitizer: {len(findings)} "
                         f"invariant violation(s)\n{lines}")


class DeadlockReport:
    """Structured description of a drained-while-blocked state."""

    def __init__(self, blocked: List[Dict[str, Any]],
                 cycles: List[List[Dict[str, Any]]]) -> None:
        #: every live-but-blocked process: proc/rank/tag/frames
        self.blocked = blocked
        #: wait-for cycles; each entry lists the processes in the cycle
        self.cycles = cycles

    def render(self) -> str:
        lines = []
        for cyc in self.cycles:
            arrow = " -> ".join(
                f"rank{e['rank']}[{e['proc']}] waits {e['tag']!r}"
                for e in cyc)
            lines.append(f"deadlock cycle: {arrow} -> (back to start)")
        for entry in self.blocked:
            where = entry["frames"][-1] if entry["frames"] else None
            at = f" at {where[0]}:{where[1]} in {where[2]}" if where else ""
            lines.append(f"  rank{entry['rank']} [{entry['proc']}] blocked "
                         f"on recv({entry['tag']!r}){at}")
        return "\n".join(lines)

    def ranks_in_cycles(self) -> Set[int]:
        return {e["rank"] for cyc in self.cycles for e in cyc}

    def tags_in_cycles(self) -> Set[Any]:
        return {e["tag"] for cyc in self.cycles for e in cyc}


def blocked_frames(proc) -> List[Tuple[str, int, str]]:
    """(file, line, function) chain of a suspended process generator,
    outermost first — the innermost entry is where it is blocked."""
    frames: List[Tuple[str, int, str]] = []
    gen = getattr(proc, "_body", None)
    seen = 0
    while gen is not None and seen < 64:
        frame = getattr(gen, "gi_frame", None)
        if frame is None:
            break
        frames.append((frame.f_code.co_filename, frame.f_lineno,
                       frame.f_code.co_name))
        gen = getattr(gen, "gi_yieldfrom", None)
        seen += 1
    return frames


class Sanitizer:
    """Probe-bus subscriber enforcing runtime protocol invariants."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.deadlock_report: Optional[DeadlockReport] = None
        #: outstanding send times per channel (depart-time FIFO)
        self._send_fifo: Dict[Channel, deque] = {}
        self._sent: Dict[Channel, int] = {}
        self._delivered: Dict[Channel, int] = {}
        #: messages eaten by injected faults, per channel
        self._dropped: Dict[Channel, int] = {}
        #: consumed message count per (rank, tag) — recv_done + poll hits
        self._consumed: Dict[Tuple[int, Any], int] = {}
        #: historical senders per (dst_rank, tag) — the wait-for edges
        self._senders: Dict[Tuple[int, Any], Set[int]] = {}
        #: proc name -> (rank, tag) while blocked in a recv
        self._blocked: Dict[str, Tuple[int, Any]] = {}
        self._last_time = 0.0
        self._events_seen = 0

    # ------------------------------------------------------------------
    # Bus handlers (wired by ProbeBus.attach)
    # ------------------------------------------------------------------
    def on_send(self, ev: SendEvent) -> None:
        # ev.time is the *depart* time (now + host overhead), which may
        # lie ahead of other events observed this instant — it feeds the
        # per-channel FIFO, not the global monotonicity check.
        chan = (ev.src, ev.dst, ev.tag)
        fifo = self._send_fifo.get(chan)
        if fifo is None:
            fifo = self._send_fifo[chan] = deque()
        fifo.append(ev.time)
        self._sent[chan] = self._sent.get(chan, 0) + 1
        self._senders.setdefault((ev.dst, ev.tag), set()).add(ev.src)
        self._events_seen += 1

    def on_deliver(self, ev: DeliverEvent) -> None:
        self._check_monotonic(ev.time)
        chan = (ev.src, ev.dst, ev.tag)
        self._delivered[chan] = self._delivered.get(chan, 0) + 1
        fifo = self._send_fifo.get(chan)
        if not fifo:
            self.findings.append(make_finding(
                "deliver-without-send",
                f"delivery on channel {chan!r} at t={ev.time:.9f} with no "
                f"outstanding send"))
            return
        actual = ev.time - ev.latency  # the delivered message's send time
        if _is_transport_tag(ev.tag):
            # Transport wire channel: a retransmission may overtake an
            # earlier attempt on a jittery link, so match the delivery to
            # *its* send instead of demanding FIFO order (the app-facing
            # FIFO is enforced by the transport's in-order release).
            if not self._remove_send(fifo, actual):
                self.findings.append(make_finding(
                    "deliver-without-send",
                    f"transport channel {chan!r}: delivery at "
                    f"t={ev.time:.9f} matches no outstanding send"))
            return
        expected = fifo.popleft()
        tol = _TIME_EPS * max(1.0, abs(expected))
        if abs(actual - expected) > tol:
            self.findings.append(make_finding(
                "fifo-violation",
                f"channel {chan!r}: delivered message sent at "
                f"t={actual:.9f} but the oldest outstanding send departed "
                f"at t={expected:.9f} — per-channel FIFO order broken"))

    def on_fault_drop(self, ev: FaultDropEvent) -> None:
        # ev.time may sit ahead of engine-now events (drops are decided at
        # wire-entry time, like send depart times), so no monotonic check.
        chan = (ev.src, ev.dst, ev.tag)
        self._dropped[chan] = self._dropped.get(chan, 0) + 1
        fifo = self._send_fifo.get(chan)
        if fifo is None or not self._remove_send(fifo, ev.send_time):
            self.findings.append(make_finding(
                "phantom-drop",
                f"channel {chan!r}: fault drop on {ev.link} at "
                f"t={ev.time:.9f} matches no outstanding send"))

    @staticmethod
    def _remove_send(fifo: deque, send_time: float) -> bool:
        """Remove the outstanding send matching ``send_time`` (within the
        float-matching tolerance); False when none matches."""
        tol = _TIME_EPS * max(1.0, abs(send_time))
        for entry in fifo:
            if abs(entry - send_time) <= tol:
                fifo.remove(entry)
                return True
        return False

    def on_op(self, ev: OpEvent) -> None:
        self._check_monotonic(ev.time)
        kind = ev.kind
        if kind == "recv":
            self._blocked[ev.proc] = (ev.rank, ev.tag)
        elif kind == "recv_done":
            self._blocked.pop(ev.proc, None)
            key = (ev.rank, ev.tag)
            self._consumed[key] = self._consumed.get(key, 0) + 1
        elif kind == "poll":
            if ev.detail:
                key = (ev.rank, ev.tag)
                self._consumed[key] = self._consumed.get(key, 0) + 1
        elif kind == "send":
            # Application-level channel history.  The routed send events
            # already record senders, but with the reliable transport a
            # WAN message travels under a rewritten ``_rt`` wire tag —
            # the wait-for edges the deadlock analysis needs live here,
            # on the operation the process actually issued.
            self._senders.setdefault((ev.dst, ev.tag), set()).add(ev.rank)
        elif kind == "multicast":
            # Multicast bypasses the routed send/deliver probes; track the
            # sender for wait-for edges (leak accounting reads the actual
            # mailboxes at run end, which covers multicast payloads too).
            for dst in (ev.dst if isinstance(ev.dst, tuple) else (ev.dst,)):
                self._senders.setdefault((dst, ev.tag), set()).add(ev.rank)
        self._events_seen += 1

    def _check_monotonic(self, when: float) -> None:
        if when < self._last_time - _TIME_EPS:
            self.findings.append(make_finding(
                "time-regression",
                f"observed event at t={when:.9f} after t="
                f"{self._last_time:.9f} — engine time moved backwards"))
        elif when > self._last_time:
            self._last_time = when

    # ------------------------------------------------------------------
    # End-of-run checks (called by Machine.run)
    # ------------------------------------------------------------------
    def finish(self, machine, drained: bool) -> None:
        """Conservation + leak accounting; raises on error findings.

        Injected fault drops are part of the conservation balance: a sent
        message must be delivered *or* dropped.  Transport wire channels
        with traffic still in flight at a stopped (not drained) run end
        are protocol residue — trailing acks, a retransmit racing its ack
        — and are not reported as leaks.
        """
        for chan, sent in sorted(self._sent.items(), key=repr):
            in_flight = (sent - self._delivered.get(chan, 0)
                         - self._dropped.get(chan, 0))
            if in_flight <= 0:
                continue
            if not drained and _is_transport_tag(chan[2]):
                continue
            if drained:
                # The queue is empty, so the delivery event can never run:
                # an engine/transport invariant broke, not an app bug.
                self.findings.append(make_finding(
                    "lost-in-flight",
                    f"channel {chan!r}: {in_flight} message(s) sent but "
                    f"never delivered although the event queue drained"))
            else:
                self.findings.append(make_finding(
                    "leaked-messages",
                    f"channel {chan!r}: {in_flight} message(s) still in "
                    f"flight when the run stopped (no receiver consumed "
                    f"them)"))
        for endpoint in machine.endpoints:
            for tag, count in sorted(endpoint.pending().items(), key=repr):
                self.findings.append(make_finding(
                    "leaked-messages",
                    f"rank {endpoint.rank}, tag {tag!r}: {count} message(s) "
                    f"delivered but never received by any process"))
        transport = getattr(machine, "transport", None)
        if transport is not None and transport.buffered():
            self.findings.append(make_finding(
                "leaked-messages",
                f"reliable transport: {transport.buffered()} data message(s) "
                f"held for in-order release when the run ended (a flow "
                f"stopped with a sequence gap ahead of them)"))
        errors = [f for f in self.findings if f.severity == "error"]
        if errors:
            raise SanitizerError(errors)

    def leaks(self) -> List[Finding]:
        return [f for f in self.findings if f.rule == "leaked-messages"]

    # ------------------------------------------------------------------
    # Deadlock analysis (called by Machine.run on drain-while-live)
    # ------------------------------------------------------------------
    def on_deadlock(self, machine) -> DeadlockReport:
        """Build the wait-for graph over blocked processes and report."""
        procs = [p for p in machine._main_procs + machine._daemon_procs
                 if not p.finished]
        blocked_entries: List[Dict[str, Any]] = []
        by_rank: Dict[int, List[str]] = {}
        info: Dict[str, Dict[str, Any]] = {}
        for proc in procs:
            where = self._blocked.get(proc.name)
            rank, tag = where if where is not None else (None, None)
            entry = {"proc": proc.name, "rank": rank, "tag": tag,
                     "frames": blocked_frames(proc)}
            blocked_entries.append(entry)
            info[proc.name] = entry
            if rank is not None:
                by_rank.setdefault(rank, []).append(proc.name)

        # Wait-for edges: P waits on (rank, tag); every blocked process on
        # a rank that historically sent that channel may be the one whose
        # progress P needs.
        edges: Dict[str, List[str]] = {}
        for entry in blocked_entries:
            if entry["rank"] is None:
                continue
            senders = self._senders.get((entry["rank"], entry["tag"]), ())
            targets = []
            for sender_rank in sorted(senders):
                targets.extend(by_rank.get(sender_rank, ()))
            edges[entry["proc"]] = targets

        cycles = _find_cycles(edges)
        report = DeadlockReport(
            blocked=blocked_entries,
            cycles=[[info[name] for name in cyc] for cyc in cycles])
        self.deadlock_report = report
        for cyc in report.cycles:
            names = ", ".join(f"rank{e['rank']}<-{e['tag']!r}" for e in cyc)
            self.findings.append(make_finding(
                "deadlock-cycle",
                f"wait-for cycle over {len(cyc)} process(es): {names}"))
        return report


def _find_cycles(edges: Dict[str, List[str]]) -> List[List[str]]:
    """Cycles in the wait-for graph: Tarjan SCCs of size > 1, plus
    self-loops, each reported once in a stable node order."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: (node, child-iterator) frames.
        work = [(v, iter(edges.get(v, ())))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in edges and w not in index:
                    continue
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(edges.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                if len(scc) > 1 or node in edges.get(node, ()):
                    sccs.append(list(reversed(scc)))

    for v in edges:
        if v not in index:
            strongconnect(v)
    return sccs
