"""AST-based determinism and protocol lint for simulated-app modules.

The linter walks Python source for the hazards that invalidate
deterministic simulation results (see docs/lint.md for the catalogue
with examples):

- determinism: wall-clock reads, global/unseeded RNG use, hash-order
  iteration (sets, id()-keyed containers), dict-view iteration feeding
  message emission;
- protocol misuse: yielding non-:class:`~repro.sim.process.Syscall`
  values from a process coroutine, real blocking calls inside
  coroutines, receives on channels nothing sends on;
- structure: module-level mutable state mutated from a coroutine (every
  rank runs the same module, so that state is cross-rank shared).

A *process coroutine* is any function that contains ``yield`` and takes
a context parameter (named ``ctx`` or annotated ``Context``).  Channel
matching for ``recv-unmatched`` is global across one lint run: a recv
tag *shape* (constants kept, dynamic parts wildcarded) must unify with
some send tag shape collected anywhere in the linted set.

Suppression: ``# lint: ignore[rule-a, rule-b]`` (or bare
``# lint: ignore``) on the offending line or the line directly above;
``# lint: skip-file`` anywhere skips the whole file.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .rules import Finding, RULES, make_finding

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([^\]]*)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")

_WALL_CLOCK_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
}
_WALL_CLOCK_DT_FNS = {"now", "utcnow", "today"}

_BLOCKING_TIME_FNS = {"sleep"}
_BLOCKING_SUBPROCESS_FNS = {"run", "Popen", "call", "check_call",
                            "check_output", "getoutput"}
_BLOCKING_OS_FNS = {"system", "popen", "wait", "waitpid"}
_BLOCKING_MODULES = {"socket", "requests", "urllib", "http", "select"}

_GLOBAL_RNG_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "seed", "randbytes",
}
_NUMPY_RNG_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "standard_normal",
    "seed", "exponential", "poisson", "bytes",
}

_MUTABLE_FACTORIES = {"list", "dict", "set", "deque", "defaultdict",
                      "OrderedDict", "Counter"}
_MUTATOR_METHODS = {"append", "appendleft", "add", "update", "setdefault",
                    "extend", "insert", "pop", "popleft", "popitem",
                    "remove", "discard", "clear"}
_KEYED_METHODS = {"get", "setdefault", "add", "pop", "remove", "discard",
                  "append", "__contains__"}

#: A dynamic (non-constant) component of a channel-tag shape.
WILD = ("?",)


# ----------------------------------------------------------------------
# Tag shapes: structural channel matching for recv-unmatched
# ----------------------------------------------------------------------
def tag_shape(node: ast.AST) -> Any:
    """Fold a tag expression into a matchable shape.

    Constants keep their value, tuples recurse.  Formatted strings
    (f-strings and ``"...".format(...)``) keep their constant *prefix*
    — ``f"ack-{rank}"`` becomes ``("prefix", "ack-")`` and only unifies
    with strings that start with ``"ack-"``.  Anything else dynamic
    becomes the :data:`WILD` marker (which unifies with everything).
    """
    if isinstance(node, ast.Constant):
        return ("const", node.value)
    if isinstance(node, ast.Tuple):
        return ("tuple", tuple(tag_shape(e) for e in node.elts))
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and isinstance(node.operand, ast.Constant):
        return ("const", -node.operand.value)
    if isinstance(node, ast.JoinedStr):
        return _joined_shape(node)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "format" \
            and isinstance(node.func.value, ast.Constant) \
            and isinstance(node.func.value.value, str):
        return _format_shape(node.func.value.value)
    return WILD


def _joined_shape(node: ast.JoinedStr) -> Any:
    """Shape of an f-string: the constant prefix before the first hole."""
    parts = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            return ("prefix", "".join(parts))
    return ("const", "".join(parts))


def _format_shape(template: str) -> Any:
    """Shape of a ``str.format`` template: prefix up to the first field.

    ``{{``/``}}`` escapes are literal braces; a bare ``{`` opens the
    first replacement field and ends the constant prefix.
    """
    parts = []
    i = 0
    while i < len(template):
        ch = template[i]
        if ch in "{}" and template[i + 1:i + 2] == ch:
            parts.append(ch)
            i += 2
            continue
        if ch == "{":
            return ("prefix", "".join(parts))
        parts.append(ch)
        i += 1
    return ("const", "".join(parts))


def shapes_unify(a: Any, b: Any) -> bool:
    if a is WILD or b is WILD:
        return True
    if a[0] == "prefix" or b[0] == "prefix":
        if a[0] == b[0]:
            return a[1].startswith(b[1]) or b[1].startswith(a[1])
        prefix, other = (a[1], b) if a[0] == "prefix" else (b[1], a)
        if other[0] == "const":
            return isinstance(other[1], str) and other[1].startswith(prefix)
        return False        # a formatted string is never a tuple
    if a[0] != b[0]:
        return False
    if a[0] == "const":
        return a[1] == b[1]
    # tuples: lengths must agree, elements unify pairwise
    return len(a[1]) == len(b[1]) and all(
        shapes_unify(x, y) for x, y in zip(a[1], b[1]))


def shape_repr(shape: Any) -> str:
    if shape is WILD:
        return "*"
    if shape[0] == "const":
        return repr(shape[1])
    if shape[0] == "prefix":
        return repr(shape[1]) + "*"
    return "(" + ", ".join(shape_repr(e) for e in shape[1]) + ")"


def _is_wild_only(shape: Any) -> bool:
    if shape is WILD:
        return True
    if shape[0] == "prefix":
        return shape[1] == ""
    if shape[0] == "tuple":
        return all(_is_wild_only(e) for e in shape[1])
    return False


# ----------------------------------------------------------------------
# Per-module analysis
# ----------------------------------------------------------------------
class _Imports:
    """Names the module binds to the stdlib modules the rules care about."""

    def __init__(self) -> None:
        self.time_mods: Set[str] = set()
        self.datetime_mods: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        self.random_mods: Set[str] = set()
        self.numpy_mods: Set[str] = set()
        self.subprocess_mods: Set[str] = set()
        self.os_mods: Set[str] = set()
        self.blocking_mods: Set[str] = set()
        # from-imports: local name -> (module, original name)
        self.from_names: Dict[str, Tuple[str, str]] = {}

    def collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    root = alias.name.split(".", 1)[0]
                    if root == "time":
                        self.time_mods.add(name)
                    elif root == "datetime":
                        self.datetime_mods.add(name)
                    elif root == "random":
                        self.random_mods.add(name)
                    elif root == "numpy":
                        self.numpy_mods.add(name)
                    elif root == "subprocess":
                        self.subprocess_mods.add(name)
                    elif root == "os":
                        self.os_mods.add(name)
                    elif root in _BLOCKING_MODULES:
                        self.blocking_mods.add(name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".", 1)[0]
                for alias in node.names:
                    local = alias.asname or alias.name
                    if root in ("time", "datetime", "random", "subprocess",
                                "os") or root in _BLOCKING_MODULES:
                        self.from_names[local] = (root, alias.name)
                    if root == "datetime" and alias.name == "datetime":
                        self.datetime_classes.add(local)


class _FunctionInfo:
    """What the linter needs to know about one enclosing function."""

    __slots__ = ("node", "is_coroutine", "ctx_name", "set_names")

    def __init__(self, node: ast.AST, is_coroutine: bool,
                 ctx_name: Optional[str]) -> None:
        self.node = node
        self.is_coroutine = is_coroutine
        self.ctx_name = ctx_name
        #: local names currently known to hold a set
        self.set_names: Set[str] = set()


def _scan_yield(node: ast.AST) -> bool:
    """True when ``node`` contains a yield not hidden in a nested function."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _scan_yield(child):
            return True
    return False


def _ctx_param(fn: ast.AST) -> Optional[str]:
    """The context parameter name, if the function takes one."""
    args = getattr(fn, "args", None)
    if args is None:
        return None
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.arg == "ctx":
            return arg.arg
        ann = arg.annotation
        if ann is not None:
            ann_name = ann.id if isinstance(ann, ast.Name) else (
                ann.attr if isinstance(ann, ast.Attribute) else None)
            if ann_name == "Context":
                return arg.arg
    return None


def _is_ctx_receiver(node: ast.AST, ctx_name: Optional[str]) -> bool:
    """True when ``node`` is the context object (``ctx`` / ``self.ctx``)."""
    if isinstance(node, ast.Name):
        return node.id == "ctx" or (ctx_name is not None and node.id == ctx_name)
    if isinstance(node, ast.Attribute):
        return node.attr == "ctx"
    return False


class _ModuleLinter(ast.NodeVisitor):
    """One-pass linter for a single parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.findings: List[Finding] = []
        #: (shape, file, line) for every recv observed, resolved globally
        self.recv_shapes: List[Tuple[Any, str, int, Any]] = []
        self.send_shapes: List[Any] = []
        self.imports = _Imports()
        self.imports.collect(tree)
        self._suppressed = _parse_suppressions(source)
        self.skip_file = bool(_SKIP_FILE_RE.search(source))
        self._fn_stack: List[_FunctionInfo] = []
        # module-level mutable names -> definition line
        self._module_mutables: Dict[str, int] = {}
        self._collect_module_mutables(tree)

    # -- plumbing ------------------------------------------------------
    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        allowed = self._suppressed.get(line)
        if allowed is not None and ("*" in allowed or rule_id in allowed):
            return
        self.findings.append(make_finding(rule_id, message, file=self.path,
                                          line=line, col=col))

    def _current_fn(self) -> Optional[_FunctionInfo]:
        return self._fn_stack[-1] if self._fn_stack else None

    def _in_coroutine(self) -> bool:
        fn = self._current_fn()
        return fn is not None and fn.is_coroutine

    # -- module-level mutable state ------------------------------------
    def _collect_module_mutables(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            targets = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_expr(value):
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    self._module_mutables[tgt.id] = stmt.lineno

    # -- function scope ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        ctx_name = _ctx_param(node)
        info = _FunctionInfo(node, _scan_yield(node) and ctx_name is not None,
                             ctx_name)
        self._fn_stack.append(info)
        self.generic_visit(node)
        self._fn_stack.pop()

    # -- assignments: track set-holding locals -------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        fn = self._current_fn()
        if fn is not None:
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    if _is_set_expr(node.value, fn.set_names):
                        fn.set_names.add(tgt.id)
                    else:
                        fn.set_names.discard(tgt.id)
        self._check_mutation_target(node.targets)
        self._check_id_keys(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_target([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_mutation_target(node.targets)
        self.generic_visit(node)

    def _check_mutation_target(self, targets: Sequence[ast.AST]) -> None:
        if not self._in_coroutine():
            return
        for tgt in targets:
            if isinstance(tgt, ast.Subscript) and \
                    isinstance(tgt.value, ast.Name) and \
                    tgt.value.id in self._module_mutables:
                self.report(
                    "module-state", tgt,
                    f"module-level {tgt.value.id!r} (defined at line "
                    f"{self._module_mutables[tgt.value.id]}) is mutated from "
                    f"a coroutine; every rank shares it")

    def _check_id_keys(self, targets: Sequence[ast.AST]) -> None:
        for tgt in targets:
            if isinstance(tgt, ast.Subscript) and _contains_id_call(tgt.slice):
                self.report("id-keyed", tgt,
                            "container keyed by id(); object identities are "
                            "allocation-order dependent")

    # -- loops and comprehensions --------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, loop_body=node.body)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, loop_body=None)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.AST,
                         loop_body: Optional[List[ast.stmt]]) -> None:
        fn = self._current_fn()
        set_names = fn.set_names if fn is not None else set()
        if _is_set_expr(iter_node, set_names):
            self.report("set-iteration", iter_node,
                        "iterating a set; wrap in sorted(...) so the order "
                        "is reproducible")
            return
        if loop_body is not None and self._in_coroutine() and \
                _is_dict_view(iter_node) and _emits_messages(loop_body):
            self.report("dict-view-order", iter_node,
                        "dict-view iteration emits messages; if insertion "
                        "order depends on arrival order, emission order "
                        "varies — iterate over a sorted or explicit key list")

    # -- yields --------------------------------------------------------
    def visit_Yield(self, node: ast.Yield) -> None:
        fn = self._current_fn()
        if fn is not None and fn.is_coroutine:
            self._check_yield_value(node, fn)
        self.generic_visit(node)

    def _check_yield_value(self, node: ast.Yield, fn: _FunctionInfo) -> None:
        val = node.value
        bad = None
        if val is None:
            bad = "a bare yield (yields None)"
        elif isinstance(val, ast.Constant):
            bad = f"the constant {val.value!r}"
        elif isinstance(val, (ast.List, ast.Tuple, ast.Dict, ast.Set,
                              ast.ListComp, ast.DictComp, ast.SetComp,
                              ast.GeneratorExp)):
            bad = "a literal/comprehension"
        elif isinstance(val, (ast.BinOp, ast.BoolOp, ast.Compare,
                              ast.JoinedStr)):
            bad = "an expression result"
        if bad is not None:
            self.report("yield-non-syscall", node,
                        f"process coroutine yields {bad}; yield a Syscall "
                        f"(ctx.send/recv/compute/...) or use 'yield from' "
                        f"for sub-operations")

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_wall_clock(node)
        self._check_blocking(node)
        self._check_rng(node)
        self._check_set_materialization(node)
        self._check_id_in_call(node)
        self._check_mutator_call(node)
        self._collect_channels(node)
        self.generic_visit(node)

    def _resolved(self, node: ast.Call) -> Tuple[Optional[str], Optional[str]]:
        """(module, function) for calls on tracked module aliases."""
        func = node.func
        imp = self.imports
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in imp.time_mods:
                return "time", func.attr
            if base in imp.datetime_mods:
                return "datetime-mod", func.attr
            if base in imp.datetime_classes:
                return "datetime", func.attr
            if base in imp.random_mods:
                return "random", func.attr
            if base in imp.subprocess_mods:
                return "subprocess", func.attr
            if base in imp.os_mods:
                return "os", func.attr
            if base in imp.blocking_mods:
                return "blocking", func.attr
        if isinstance(func, ast.Name) and func.id in imp.from_names:
            return imp.from_names[func.id]
        return None, None

    def _numpy_random_attr(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Attribute) and \
                func.value.attr == "random" and \
                isinstance(func.value.value, ast.Name) and \
                func.value.value.id in self.imports.numpy_mods:
            return func.attr
        return None

    def _check_wall_clock(self, node: ast.Call) -> None:
        mod, fn = self._resolved(node)
        hit = (mod == "time" and fn in _WALL_CLOCK_TIME_FNS) or \
              (mod == "datetime" and fn in _WALL_CLOCK_DT_FNS)
        if not hit and mod == "datetime-mod":
            # datetime.datetime.now() spelled through the module
            func = node.func
            hit = isinstance(func, ast.Attribute) and fn in _WALL_CLOCK_DT_FNS
        if not hit and isinstance(node.func, ast.Attribute) and \
                node.func.attr in _WALL_CLOCK_DT_FNS and \
                isinstance(node.func.value, ast.Attribute) and \
                node.func.value.attr == "datetime" and \
                isinstance(node.func.value.value, ast.Name) and \
                node.func.value.value.id in self.imports.datetime_mods:
            hit = True
        if hit:
            self.report("wall-clock", node,
                        f"wall-clock read ({_call_name(node)}); simulation "
                        f"results must not depend on host time — use "
                        f"ctx.now / engine.now")

    def _check_blocking(self, node: ast.Call) -> None:
        mod, fn = self._resolved(node)
        hit = (mod == "time" and fn in _BLOCKING_TIME_FNS) or \
              (mod == "subprocess" and fn in _BLOCKING_SUBPROCESS_FNS) or \
              (mod == "os" and fn in _BLOCKING_OS_FNS) or \
              (mod == "blocking")
        if not hit and isinstance(node.func, ast.Name) and \
                node.func.id == "input" and "input" not in self.imports.from_names:
            hit = True
        if hit:
            self.report("blocking-call", node,
                        f"real blocking call ({_call_name(node)}) stalls the "
                        f"host, not simulated time; use ctx.compute / "
                        f"ctx.recv instead")

    def _check_rng(self, node: ast.Call) -> None:
        mod, fn = self._resolved(node)
        if mod == "random":
            if fn in _GLOBAL_RNG_FNS:
                self.report("global-rng", node,
                            f"global RNG call ({_call_name(node)}); use a "
                            f"seeded stream from repro.sim.rng.make_rng "
                            f"(or ctx.rng)")
                return
            if fn == "Random" and not node.args and not node.keywords:
                self.report("unseeded-rng", node,
                            "random.Random() without a seed draws from OS "
                            "entropy; pass a derived seed")
                return
        np_fn = self._numpy_random_attr(node)
        if np_fn is not None:
            if np_fn in _NUMPY_RNG_FNS:
                self.report("global-rng", node,
                            f"numpy global RNG call ({_call_name(node)}); "
                            f"use np.random.default_rng(seed)")
            elif np_fn in ("default_rng", "RandomState", "Generator") and \
                    not node.args and not node.keywords:
                self.report("unseeded-rng", node,
                            f"{_call_name(node)} without a seed is "
                            f"entropy-seeded; pass an explicit seed")

    def _check_set_materialization(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple") \
                and len(node.args) == 1:
            fn = self._current_fn()
            set_names = fn.set_names if fn is not None else set()
            if _is_set_expr(node.args[0], set_names):
                self.report("set-iteration", node,
                            f"{node.func.id}() over a set materializes "
                            f"hash order; use sorted(...)")

    def _check_id_in_call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _KEYED_METHODS:
            for arg in node.args[:1]:
                if _contains_id_call(arg):
                    self.report("id-keyed", node,
                                "container operation keyed by id(); object "
                                "identities are allocation-order dependent")

    def _check_mutator_call(self, node: ast.Call) -> None:
        if not self._in_coroutine():
            return
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in _MUTATOR_METHODS and \
                isinstance(func.value, ast.Name) and \
                func.value.id in self._module_mutables:
            self.report(
                "module-state", node,
                f"module-level {func.value.id!r} (defined at line "
                f"{self._module_mutables[func.value.id]}) is mutated from a "
                f"coroutine; every rank shares it")

    # -- channel shape collection --------------------------------------
    def _collect_channels(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        fn_info = self._current_fn()
        ctx_name = fn_info.ctx_name if fn_info is not None else None
        if not _is_ctx_receiver(func.value, ctx_name):
            return
        kw = {k.arg: k.value for k in node.keywords if k.arg}
        if func.attr in ("send",):
            tag = kw.get("tag") or (node.args[2] if len(node.args) > 2 else None)
            if tag is not None:
                self.send_shapes.append(tag_shape(tag))
        elif func.attr == "multicast":
            tag = kw.get("tag") or (node.args[2] if len(node.args) > 2 else None)
            if tag is not None:
                self.send_shapes.append(tag_shape(tag))
        elif func.attr in ("recv", "recv_nowait"):
            tag = kw.get("tag") or (node.args[0] if node.args else None)
            if tag is not None:
                self.recv_shapes.append((tag_shape(tag), self.path,
                                         node.lineno, node))

    # -- dict literal id() keys ----------------------------------------
    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and _contains_id_call(key):
                self.report("id-keyed", key,
                            "dict literal keyed by id(); object identities "
                            "are allocation-order dependent")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Expression helpers
# ----------------------------------------------------------------------
def _call_name(node: ast.Call) -> str:
    try:
        return ast.unparse(node.func) + "()"
    except Exception:  # pragma: no cover - unparse is 3.9+, always present
        return "call"


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left, set_names) or \
            _is_set_expr(node.right, set_names)
    return False


def _is_mutable_expr(node: ast.AST) -> bool:
    """A list/dict/set literal or a call to a mutable-container factory."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None)
        return name in _MUTABLE_FACTORIES
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and not node.args and \
        isinstance(node.func, ast.Attribute) and \
        node.func.attr in ("keys", "values", "items")


def _emits_messages(body: List[ast.stmt]) -> bool:
    """True when the loop body yields a send/multicast/reply syscall."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Yield) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Attribute) and \
                    node.value.func.attr in ("send", "multicast", "reply"):
                return True
    return False


def _contains_id_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) and \
                sub.func.id == "id":
            return True
    return False


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> suppressed rule ids ('*' for all).

    A comment suppresses its own line and the line below, so both
    trailing comments and comment-above style work.
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(text)
        if not m:
            continue
        rules = {"*"} if m.group(1) is None else {
            r.strip() for r in m.group(1).split(",") if r.strip()}
        for target in (lineno, lineno + 1):
            suppressed.setdefault(target, set()).update(rules)
    return suppressed


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def lint_source(source: str, filename: str = "<string>",
                match_channels: bool = True) -> List[Finding]:
    """Lint one source string; standalone channel matching included."""
    linter = _lint_one(source, filename)
    if linter is None:
        return []
    findings = list(linter.findings)
    if match_channels:
        findings.extend(_match_channels([linter]))
    return _sort_findings(findings)


def _lint_one(source: str, filename: str) -> Optional[_ModuleLinter]:
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as err:
        linter = _ModuleLinter.__new__(_ModuleLinter)
        linter.path = filename
        linter.findings = [Finding(
            rule="syntax-error", severity="error",
            message=f"cannot parse: {err.msg}", file=filename,
            line=err.lineno or 0, col=err.offset or 0)]
        linter.recv_shapes = []
        linter.send_shapes = []
        linter.skip_file = False
        return linter
    linter = _ModuleLinter(filename, source, tree)
    if linter.skip_file:
        return None
    linter.visit(tree)
    return linter


def _match_channels(linters: Sequence[_ModuleLinter]) -> List[Finding]:
    """Global recv-unmatched pass over every linted module."""
    send_shapes: List[Any] = []
    for linter in linters:
        send_shapes.extend(linter.send_shapes)
    findings = []
    for linter in linters:
        for shape, path, line, node in linter.recv_shapes:
            if _is_wild_only(shape):
                continue
            if any(shapes_unify(shape, s) for s in send_shapes):
                continue
            allowed = linter._suppressed.get(line)
            if allowed is not None and \
                    ("*" in allowed or "recv-unmatched" in allowed):
                continue
            findings.append(make_finding(
                "recv-unmatched",
                f"recv on channel {shape_repr(shape)} matches no send tag "
                f"in the linted set; a receiver here can block forever",
                file=path, line=line, col=getattr(node, "col_offset", 0)))
    return findings


def _iter_python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".py"))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    return files


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint files/directories; channel matching is global across the set."""
    linters: List[_ModuleLinter] = []
    findings: List[Finding] = []
    for path in _iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as err:
            findings.append(Finding(rule="io-error", severity="error",
                                    message=str(err), file=path))
            continue
        linter = _lint_one(source, path)
        if linter is None:
            continue
        linters.append(linter)
        findings.extend(linter.findings)
    findings.extend(_match_channels(linters))
    return _sort_findings(findings)


def _sort_findings(findings: List[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.file, f.line, f.col, f.rule))
