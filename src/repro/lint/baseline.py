"""Lint baselines: ratchet CI without fixing historical findings first.

A baseline file is a JSON snapshot of known findings.  ``repro lint
--baseline known.json`` subtracts the snapshot from the current run and
fails only on *new* findings; ``--write-baseline known.json`` records
the current findings as the accepted set.

Findings are keyed by ``(file, rule, message)`` — deliberately not by
line number, so unrelated edits that shift a known finding up or down
the file do not resurface it.  Multiple identical findings collapse
into one key; a count is kept so baselines stay meaningful when a
finding is partially fixed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from .rules import Finding

_VERSION = 1

Key = Tuple[str, str, str]


def finding_key(finding: Finding) -> Key:
    return (finding.file, finding.rule, finding.message)


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` to ``path`` (sorted, stable output)."""
    counts: Dict[Key, int] = {}
    for finding in findings:
        key = finding_key(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [{"file": file, "rule": rule, "message": message,
                "count": counts[(file, rule, message)]}
               for file, rule, message in sorted(counts)]
    payload = {"version": _VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def load_baseline(path: str) -> Dict[Key, int]:
    """Load a baseline snapshot; raises ``ValueError`` on bad shape."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a lint baseline file")
    version = payload.get("version", 0)
    if version != _VERSION:
        raise ValueError(f"{path}: unsupported baseline version {version!r}")
    counts: Dict[Key, int] = {}
    for entry in payload["findings"]:
        key = (str(entry.get("file", "")), str(entry.get("rule", "")),
               str(entry.get("message", "")))
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def filter_new(findings: Sequence[Finding],
               baseline: Dict[Key, int]) -> List[Finding]:
    """Findings not covered by ``baseline``.

    Each baseline entry absorbs up to ``count`` identical findings;
    anything beyond that (or unknown) is new and is returned.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new.append(finding)
    return new
