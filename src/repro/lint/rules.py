"""Rule catalogue and finding records for :mod:`repro.lint`.

Every check — static (AST) or runtime (sanitizer) — reports findings
under a stable kebab-case rule id, so suppression comments, CI
annotations and the documentation all speak the same vocabulary.
``docs/lint.md`` carries one minimal bad/good example per rule.

Severities: ``error`` findings fail a default lint run; ``warning``
findings fail only under ``--strict``.  The runtime sanitizer raises
:class:`~repro.lint.sanitizer.SanitizerError` on ``error`` findings and
merely records ``warning`` ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One named invariant the lint subsystem checks."""

    id: str
    severity: str
    summary: str
    kind: str  # "static" or "runtime"


#: Static (AST) rules, checked by :mod:`repro.lint.static`.
STATIC_RULES = (
    Rule("wall-clock", ERROR,
         "wall-clock time read; simulated code must use ctx.now / engine.now",
         "static"),
    Rule("global-rng", ERROR,
         "global random module used; draw from repro.sim.rng.make_rng streams",
         "static"),
    Rule("unseeded-rng", ERROR,
         "RNG constructed without an explicit seed", "static"),
    Rule("set-iteration", ERROR,
         "iteration over a set; order is hash-dependent — sort first", "static"),
    Rule("dict-view-order", WARNING,
         "dict-view iteration feeds message emission; insertion order may "
         "depend on arrival order", "static"),
    Rule("id-keyed", WARNING,
         "id()-keyed container; object ids vary across runs", "static"),
    Rule("yield-non-syscall", ERROR,
         "process coroutine yields a non-Syscall value", "static"),
    Rule("blocking-call", ERROR,
         "real blocking call inside simulation code", "static"),
    Rule("recv-unmatched", WARNING,
         "recv on a channel no linted code sends on", "static"),
    Rule("module-state", WARNING,
         "module-level mutable state mutated from a coroutine is shared "
         "across ranks", "static"),
)

#: Runtime rules, checked by :class:`repro.lint.sanitizer.Sanitizer`.
RUNTIME_RULES = (
    Rule("deadlock-cycle", ERROR,
         "blocked processes form a wait-for cycle", "runtime"),
    Rule("leaked-messages", WARNING,
         "messages left in a mailbox at run end (sent but never received)",
         "runtime"),
    Rule("lost-in-flight", ERROR,
         "engine drained with messages sent but never delivered", "runtime"),
    Rule("fifo-violation", ERROR,
         "per-(src, dst, tag) delivery order differs from send order",
         "runtime"),
    Rule("deliver-without-send", ERROR,
         "a message was delivered on a channel with no outstanding send",
         "runtime"),
    Rule("time-regression", ERROR,
         "engine time moved backwards between observed events", "runtime"),
    Rule("phantom-drop", ERROR,
         "an injected fault drop was reported for a message no observed "
         "send covers", "runtime"),
)

#: Whole-program rules, checked by :mod:`repro.lint.proto` — the
#: interprocedural abstract interpreter over the app sources.
PROTO_RULES = (
    Rule("proto-deadlock", ERROR,
         "mandatory blocking receives form a static wait-for cycle",
         "proto"),
    Rule("proto-unmatched", WARNING,
         "a receive's symbolic tag unifies with no send site in the "
         "app's static channel graph", "proto"),
    Rule("proto-taint", ERROR,
         "a wall-clock/unseeded-RNG/hash-order value flows into a "
         "communication sink (whole-program)", "proto"),
)

RULES: Dict[str, Rule] = {
    r.id: r for r in STATIC_RULES + RUNTIME_RULES + PROTO_RULES}


@dataclass(frozen=True)
class Finding:
    """One lint/sanitizer finding, JSON-serializable for CI annotation."""

    rule: str
    severity: str
    message: str
    file: str = ""
    line: int = 0
    col: int = 0
    detail: Optional[Any] = None

    def as_dict(self) -> Dict[str, Any]:
        d = {"rule": self.rule, "severity": self.severity,
             "message": self.message, "file": self.file, "line": self.line,
             "col": self.col}
        if self.detail is not None:
            d["detail"] = self.detail
        return d

    def render(self) -> str:
        loc = f"{self.file}:{self.line}:{self.col}: " if self.file else ""
        return f"{loc}{self.severity}[{self.rule}] {self.message}"

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotation line."""
        level = "error" if self.severity == ERROR else "warning"
        if self.file:
            return (f"::{level} file={self.file},line={self.line},"
                    f"col={self.col},title=lint {self.rule}::{self.message}")
        return f"::{level} title=lint {self.rule}::{self.message}"


def make_finding(rule_id: str, message: str, file: str = "", line: int = 0,
                 col: int = 0, detail: Any = None) -> Finding:
    """Build a finding with the severity from the catalogue."""
    return Finding(rule=rule_id, severity=RULES[rule_id].severity,
                   message=message, file=file, line=line, col=col,
                   detail=detail)
