"""``python -m repro lint``: static determinism/protocol lint.

Walks the given files and directories (default: ``src/repro`` and
``examples`` when run from a checkout, else the current directory),
reports findings as ``file:line:col severity[rule] message`` lines and
exits non-zero when any *error* finding survives — or, with
``--strict``, when anything at all does::

    python -m repro lint                       # lint the checkout
    python -m repro lint --strict src/repro examples
    python -m repro lint --format json my_app.py
    python -m repro lint --list-rules

``--format json`` emits a machine-readable array (one object per
finding: file, line, col, rule, severity, message) for CI annotation;
``--format github`` emits GitHub Actions ``::error``/``::warning``
workflow commands directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .rules import RULES, STATIC_RULES
from .static import lint_paths


def _default_paths() -> List[str]:
    paths = [p for p in ("src/repro", "examples") if os.path.isdir(p)]
    return paths or ["."]


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/repro + examples)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings too, not just errors")
    parser.add_argument("--format", choices=["text", "json", "github"],
                        default="text")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in STATIC_RULES:
            print(f"{rule.id:18s} {rule.severity:8s} {rule.summary}")
        runtime = [r for r in RULES.values() if r.kind == "runtime"]
        print("\nruntime (sanitizer) rules:")
        for rule in runtime:
            print(f"{rule.id:18s} {rule.severity:8s} {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    try:
        findings = lint_paths(paths)
    except FileNotFoundError as err:
        print(f"repro lint: {err}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2,
                         default=repr))
    elif args.format == "github":
        for f in findings:
            print(f.render_github())
    else:
        for f in findings:
            print(f.render())

    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if args.format == "text":
        print(f"repro lint: {errors} error(s), {warnings} warning(s) in "
              f"{len(paths)} path(s)", file=sys.stderr)
    failed = errors > 0 or (args.strict and warnings > 0)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
