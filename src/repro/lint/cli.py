"""``python -m repro lint``: static determinism/protocol lint.

Walks the given files and directories (default: ``src/repro`` and
``examples`` when run from a checkout, else the current directory),
reports findings as ``file:line:col severity[rule] message`` lines and
exits non-zero when any *error* finding survives — or, with
``--strict``, when anything at all does::

    python -m repro lint                       # lint the checkout
    python -m repro lint --strict src/repro examples
    python -m repro lint --format json my_app.py
    python -m repro lint --list-rules

``--proto`` additionally runs the interprocedural protocol analyzer
(:mod:`repro.lint.proto`) over every registered app/variant: static
deadlock cycles, unmatched symbolic channels, whole-program determinism
taint, plus the order-stability classification table.  ``--graph
out.dot``/``out.json`` exports the static channel graphs (also
available as ``python -m repro protograph``).

``--baseline known.json`` subtracts a recorded snapshot and fails only
on findings not in it; ``--write-baseline known.json`` records the
current findings as that snapshot.

``--format json`` emits a machine-readable array (one object per
finding: file, line, col, rule, severity, message) for CI annotation;
``--format github`` emits GitHub Actions ``::error``/``::warning``
workflow commands directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .baseline import filter_new, load_baseline, write_baseline
from .rules import PROTO_RULES, RULES, STATIC_RULES, Finding
from .static import lint_paths


def _default_paths() -> List[str]:
    paths = [p for p in ("src/repro", "examples") if os.path.isdir(p)]
    return paths or ["."]


def _proto_findings_and_table():
    """Run the protocol analyzer over every registered app/variant."""
    from .proto import classification_table, classify_all, proto_findings
    from .proto.report import analyze_all
    skeletons = analyze_all()
    return proto_findings(skeletons), classification_table(classify_all())


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src/repro + examples)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings too, not just errors")
    parser.add_argument("--format", choices=["text", "json", "github"],
                        default="text")
    parser.add_argument("--proto", action="store_true",
                        help="also run the interprocedural protocol "
                             "analyzer over all registered apps")
    parser.add_argument("--graph", metavar="FILE",
                        help="with --proto: write the static channel "
                             "graphs to FILE (.dot or .json)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="subtract the findings recorded in FILE; "
                             "fail only on new findings")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record the current findings to FILE and "
                             "exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in STATIC_RULES:
            print(f"{rule.id:18s} {rule.severity:8s} {rule.summary}")
        runtime = [r for r in RULES.values() if r.kind == "runtime"]
        print("\nruntime (sanitizer) rules:")
        for rule in runtime:
            print(f"{rule.id:18s} {rule.severity:8s} {rule.summary}")
        print("\nwhole-program (proto analyzer) rules:")
        for rule in PROTO_RULES:
            print(f"{rule.id:18s} {rule.severity:8s} {rule.summary}")
        return 0

    paths = args.paths or _default_paths()
    try:
        findings: List[Finding] = lint_paths(paths)
    except FileNotFoundError as err:
        print(f"repro lint: {err}", file=sys.stderr)
        return 2

    table = None
    if args.proto:
        proto_found, table = _proto_findings_and_table()
        findings = findings + proto_found
        if args.graph:
            _write_graphs(args.graph)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"repro lint: wrote baseline with {len(findings)} "
              f"finding(s) to {args.write_baseline}", file=sys.stderr)
        return 0

    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"repro lint: {err}", file=sys.stderr)
            return 2
        findings = filter_new(findings, known)

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2,
                         default=repr))
    elif args.format == "github":
        for f in findings:
            print(f.render_github())
    else:
        for f in findings:
            print(f.render())
        if table is not None:
            print("\norder-stability classification:")
            print(table)

    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if args.format == "text":
        suffix = " (after baseline)" if args.baseline else ""
        print(f"repro lint: {errors} error(s), {warnings} warning(s) in "
              f"{len(paths)} path(s){suffix}", file=sys.stderr)
    failed = errors > 0 or (args.strict and warnings > 0)
    return 1 if failed else 0


def _write_graphs(path: str) -> None:
    from .proto import graphs_dot, graphs_json
    from .proto.report import analyze_all
    skeletons = analyze_all()
    if path.endswith(".json"):
        payload = json.dumps(graphs_json(skeletons), indent=2)
    else:
        payload = graphs_dot(skeletons)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
        if not payload.endswith("\n"):
            fh.write("\n")


def protograph_main(argv: Optional[list] = None) -> int:
    """``python -m repro protograph``: export static channel graphs."""
    parser = argparse.ArgumentParser(
        prog="repro protograph",
        description="Export the static communication graphs extracted "
                    "by the protocol analyzer, with each app/variant's "
                    "order-stability label.")
    parser.add_argument("--format", choices=["json", "dot", "table"],
                        default="table")
    parser.add_argument("--app", help="only this app")
    parser.add_argument("--variant", help="only this variant")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="write to FILE instead of stdout")
    args = parser.parse_args(argv)

    from .proto import (classification_table, classify, graphs_dot,
                        graphs_json)
    from .proto.report import analyze_all
    skeletons = analyze_all()
    if args.app:
        skeletons = [s for s in skeletons if s.app == args.app]
    if args.variant:
        skeletons = [s for s in skeletons if s.variant == args.variant]
    if not skeletons:
        print("repro protograph: no matching app/variant",
              file=sys.stderr)
        return 2

    if args.format == "json":
        text = json.dumps(graphs_json(skeletons), indent=2)
    elif args.format == "dot":
        text = graphs_dot(skeletons)
    else:
        text = classification_table([classify(s) for s in skeletons])
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
