"""``repro.lint.proto`` — interprocedural communication-protocol
analyzer.

An abstract interpreter (:mod:`.interp`) extracts a rank-symbolic
communication skeleton per registered app/variant; :mod:`.analyses`
runs symbolic matching/deadlock detection, order-stability
classification, and determinism-taint tracking over it; :mod:`.report`
packages the results for the lint CLI, the ``protograph`` export, the
replay ladder's pre-recording hint, and the runtime superset harness.
"""

from .analyses import (Classification, LABEL_STABLE, LABEL_TIMING,
                       LABEL_UNSTABLE, StaticCycle, TaintFlow,
                       UnmatchedRecv, classify, find_deadlocks,
                       find_taints, find_unmatched, pipelined_fanins)
from .graph import (AV, Cell, ChannelEdge, ProcTrace, ProtoGraph, ProtoOp,
                    Skeleton)
from .interp import ModuleSet, analyze_app
from .report import (analyze, analyze_all, classification_table,
                     classify_all, graphs_dot, graphs_json,
                     observed_pairs, order_stability_label,
                     proto_findings, verify_superset)

__all__ = [
    "AV", "Cell", "ChannelEdge", "Classification", "LABEL_STABLE",
    "LABEL_TIMING", "LABEL_UNSTABLE", "ModuleSet", "ProcTrace",
    "ProtoGraph", "ProtoOp", "Skeleton", "StaticCycle", "TaintFlow",
    "UnmatchedRecv", "analyze", "analyze_all", "analyze_app",
    "classification_table", "classify", "classify_all", "find_deadlocks",
    "find_taints", "find_unmatched", "graphs_dot", "graphs_json",
    "observed_pairs", "order_stability_label", "pipelined_fanins",
    "proto_findings", "verify_superset",
]
