"""Abstract domain and static channel graph for the protocol analyzer.

The interpreter (:mod:`repro.lint.proto.interp`) executes each SPMD
process coroutine over the abstract domain defined here instead of the
concrete one: every value is an :class:`AV` — a constant, the symbolic
executing rank, a topology-relative peer category (my cluster leader,
all leaders, my cluster's members), a heap :class:`Cell`, or ``TOP``.
Each value carries the provenance the three analyses need:

- ``taint`` — determinism-taint source descriptors (wall-clock,
  unseeded RNG, set iteration) for the whole-program taint analysis;
- ``msgd`` — derived from a received message (payload or source rank),
  the raw material of the order-stability rules;
- ``cells`` — heap cells the value was read from, so a send whose
  destination came out of a parked-request buffer is distinguishable
  from one answering the message in hand;
- ``loopsyms`` — enclosing loop variables the value depends on, which
  separates a counted fan-in (``recv(tag)`` loop-invariant) from a
  per-peer paired receive (``recv((tag, q))``).

Sends, receives, multicasts and spawns are recorded as :class:`ProtoOp`
entries on a :class:`ProcTrace`; an app/variant's traces form a
:class:`Skeleton` whose :class:`ProtoGraph` concretizes the symbolic
destination categories against a real topology — the object the
superset harness compares with observed traffic.

Tag expressions reuse the shape conventions of
:mod:`repro.lint.static` (``("const", v)`` / ``("tuple", ...)`` /
``WILD``) so symbolic unification is shared with the AST linter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..static import WILD, shape_repr, shapes_unify

# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------

#: Destination categories a send/multicast target can concretize to.
DST_CONST = "const"          # one fixed rank
DST_SELF = "self"            # the executing rank itself
DST_LEADER_OWN = "leader-own"    # leader of the executing rank's cluster
DST_LEADERS = "leaders"      # some cluster leader (any cluster)
DST_MEMBERS_OWN = "members-own"  # a member of the executing rank's cluster
DST_ALL = "all"              # widened: any rank

_EMPTY: FrozenSet = frozenset()


class Cell:
    """One abstract heap location: a container's contents or an object
    attribute.  Reads return the join of everything ever written; writes
    record *when* they happened (inside a service's message loop?) and
    *what* flowed in (message-derived data?) — the two bits the deferred
    service rule needs."""

    __slots__ = ("label", "keys", "vals", "written_in_loop", "msg_written",
                 "is_set")

    def __init__(self, label: str = "", is_set: bool = False) -> None:
        self.label = label
        self.keys: Optional["AV"] = None
        self.vals: Optional["AV"] = None
        self.written_in_loop = False
        self.msg_written = False
        self.is_set = is_set

    def write(self, value: "AV", in_loop: bool, key: Optional["AV"] = None
              ) -> None:
        self.vals = join(self.vals, value)
        if key is not None:
            self.keys = join(self.keys, key)
        if in_loop:
            self.written_in_loop = True
            if value is not None and (value.msgd or
                                      (key is not None and key.msgd)):
                self.msg_written = True

    def read(self) -> "AV":
        base = self.vals if self.vals is not None else AV("top")
        out = base.with_cell(self)
        if self.is_set:
            out = out.with_taint(f"set-iteration({self.label or 'set'})")
        return out

    def read_keys(self) -> "AV":
        base = self.keys if self.keys is not None else AV("top")
        return base.with_cell(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.label!r})"


class AV:
    """One abstract value.  Immutable by convention: the ``with_*``
    helpers return modified copies so provenance never leaks backwards."""

    __slots__ = ("kind", "const", "items", "payload", "taint", "msgd",
                 "cells", "loopsyms", "opaque")

    def __init__(self, kind: str, const: Any = None,
                 items: Optional[Tuple["AV", ...]] = None,
                 payload: Any = None,
                 taint: FrozenSet[str] = _EMPTY, msgd: bool = False,
                 cells: FrozenSet[Cell] = _EMPTY,
                 loopsyms: FrozenSet[int] = _EMPTY,
                 opaque: bool = False) -> None:
        self.kind = kind
        self.const = const
        self.items = items
        self.payload = payload
        self.taint = taint
        self.msgd = msgd
        self.cells = cells
        self.loopsyms = loopsyms
        self.opaque = opaque

    # -- provenance helpers -------------------------------------------
    def _clone(self, **over: Any) -> "AV":
        kw = dict(kind=self.kind, const=self.const, items=self.items,
                  payload=self.payload, taint=self.taint, msgd=self.msgd,
                  cells=self.cells, loopsyms=self.loopsyms,
                  opaque=self.opaque)
        kw.update(over)
        return AV(**kw)

    def with_taint(self, *sources: str) -> "AV":
        return self._clone(taint=self.taint | frozenset(sources))

    def with_msgd(self) -> "AV":
        return self._clone(msgd=True)

    def with_cell(self, cell: Cell) -> "AV":
        return self._clone(cells=self.cells | {cell})

    def with_loopsym(self, sym: int) -> "AV":
        return self._clone(loopsyms=self.loopsyms | {sym})

    def with_flags_of(self, *others: Optional["AV"]) -> "AV":
        out = self
        for other in others:
            if other is None:
                continue
            out = out._clone(taint=out.taint | other.taint,
                             msgd=out.msgd or other.msgd,
                             cells=out.cells | other.cells,
                             loopsyms=out.loopsyms | other.loopsyms,
                             opaque=out.opaque or other.opaque)
        return out

    # -- queries ------------------------------------------------------
    @property
    def is_const(self) -> bool:
        return self.kind == "const"

    def truth(self) -> Optional[bool]:
        """Concrete truthiness, or None when symbolic."""
        if self.kind == "const":
            try:
                return bool(self.const)
            except Exception:
                return None
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "const":
            return f"AV(const={self.const!r})"
        return f"AV({self.kind})"


def top(*flags_of: Optional[AV]) -> AV:
    return AV("top").with_flags_of(*flags_of)


def const(value: Any) -> AV:
    return AV("const", const=value)


def join(a: Optional[AV], b: Optional[AV]) -> Optional[AV]:
    """Least-upper-bound of two abstract values (None is bottom)."""
    if a is None:
        return b
    if b is None:
        return a
    merged_flags = dict(taint=a.taint | b.taint, msgd=a.msgd or b.msgd,
                        cells=a.cells | b.cells,
                        loopsyms=a.loopsyms | b.loopsyms,
                        opaque=a.opaque or b.opaque)
    # None is absorbed: it carries no communication, and ``x = d.get(k)``
    # / ``if x is None: x = make()`` idioms would otherwise widen to top.
    a_none = a.kind == "const" and a.const is None
    b_none = b.kind == "const" and b.const is None
    if a_none and not b_none:
        return b._clone(**merged_flags)
    if b_none and not a_none:
        return a._clone(**merged_flags)
    if a.kind == b.kind:
        if a.kind in ("const", "strprefix"):
            if a.const is b.const or _const_eq(a.const, b.const):
                return a._clone(**merged_flags)
            return AV("top", **merged_flags)
        if a.kind == "tuple" and a.items is not None and b.items is not None \
                and len(a.items) == len(b.items):
            items = tuple(join(x, y) for x, y in zip(a.items, b.items))
            return AV("tuple", items=items, **merged_flags)
        if a.kind in ("func", "obj", "cell", "class") \
                and a.payload is not b.payload:
            return AV("top", **merged_flags)
        return a._clone(**merged_flags)
    return AV("top", **merged_flags)


def _const_eq(x: Any, y: Any) -> bool:
    try:
        return bool(x == y)
    except Exception:
        return False


def tag_shape_of(av: Optional[AV]) -> Tuple:
    """Fold an abstract tag value into a :mod:`repro.lint.static` shape."""
    if av is None:
        return WILD
    if av.kind == "const":
        return ("const", av.const)
    if av.kind == "strprefix":
        return ("prefix", av.const or "")
    if av.kind == "tuple" and av.items is not None:
        return ("tuple", tuple(tag_shape_of(item) for item in av.items))
    return WILD


def dst_category(av: Optional[AV]) -> Tuple[str, Optional[int]]:
    """Summarize an abstract destination into a concretizable category."""
    if av is None:
        return (DST_ALL, None)
    if av.kind == "const" and isinstance(av.const, int) \
            and not isinstance(av.const, bool):
        return (DST_CONST, av.const)
    if av.kind == "rank":
        return (DST_SELF, None)
    if av.kind == "leader-own":
        return (DST_LEADER_OWN, None)
    if av.kind == "leader":
        return (DST_LEADERS, None)
    if av.kind == "member-own":
        return (DST_MEMBERS_OWN, None)
    if av.kind == "cell" and av.payload is not None:
        inner = av.payload.vals
        if inner is not None:
            return dst_category(inner)
    return (DST_ALL, None)


# ----------------------------------------------------------------------
# Recorded operations and traces
# ----------------------------------------------------------------------

@dataclass
class ProtoOp:
    """One abstract communication operation at a source site."""

    kind: str                       # send|recv|mcast|poll|sleep|spawn|barrier
    proc: str
    site: Tuple[str, int]           # (file, line)
    ctxid: Tuple[Tuple[str, int], ...] = ()   # call-path instance id
    dst: Tuple[str, Optional[int]] = (DST_ALL, None)
    tag: Tuple = WILD
    mandatory: bool = False
    conditional: bool = False
    in_for: bool = False            # immediately inside a counted for-loop
    loop_tag_dep: bool = False      # tag depends on that loop's variable
    collective: Optional[str] = None  # barrier|bcast|reduction
    rpc: bool = False               # part of an rpc round-trip
    sink_taints: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    detail: str = ""

    @property
    def instance(self) -> Tuple:
        return (self.site, self.ctxid)

    @property
    def fan_in_candidate(self) -> bool:
        return (self.kind == "recv" and self.in_for and not self.loop_tag_dep
                and self.collective is None and not self.rpc)

    def where(self) -> str:
        return f"{self.site[0]}:{self.site[1]}"


@dataclass
class ProcTrace:
    """Abstract trace of one process coroutine (main or daemon)."""

    name: str
    daemon: bool = False
    ops: List[ProtoOp] = field(default_factory=list)
    incomplete: bool = False
    #: sites of while-loops whose exit depends on received payloads
    payload_loops: List[Tuple[str, int]] = field(default_factory=list)
    #: send sites whose dst/tag came out of a message-fed heap cell
    deferred_sends: List[ProtoOp] = field(default_factory=list)
    #: send sites occurrence-gated on loop-carried service state
    gated_sends: List[ProtoOp] = field(default_factory=list)

    def mandatory_ops(self) -> List[ProtoOp]:
        return [op for op in self.ops if op.mandatory]


@dataclass
class Skeleton:
    """The full static communication skeleton of one app/variant."""

    app: str
    variant: str
    procs: List[ProcTrace] = field(default_factory=list)
    timing_dependent: bool = False      # registry flag
    incomplete: bool = False
    notes: List[str] = field(default_factory=list)

    def all_ops(self) -> Iterable[ProtoOp]:
        for proc in self.procs:
            for op in proc.ops:
                yield op

    def send_ops(self) -> List[ProtoOp]:
        return [op for op in self.all_ops() if op.kind in ("send", "mcast")]

    def recv_ops(self) -> List[ProtoOp]:
        return [op for op in self.all_ops() if op.kind == "recv"]

    def graph(self) -> "ProtoGraph":
        return ProtoGraph.from_skeleton(self)


# ----------------------------------------------------------------------
# The channel graph
# ----------------------------------------------------------------------

@dataclass
class ChannelEdge:
    """One symbolic send/multicast edge of the channel graph."""

    proc: str
    kind: str                       # send|mcast
    dst: Tuple[str, Optional[int]]
    tag: Tuple
    site: Tuple[str, int]
    conditional: bool = False
    collective: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        cat, arg = self.dst
        return {
            "proc": self.proc,
            "kind": self.kind,
            "dst": cat if arg is None else f"{cat}:{arg}",
            "tag": shape_repr(self.tag),
            "site": f"{self.site[0]}:{self.site[1]}",
            "conditional": self.conditional,
            "collective": self.collective,
        }


class ProtoGraph:
    """Static channel graph: symbolic edges plus concretization."""

    def __init__(self, app: str, variant: str,
                 edges: Optional[List[ChannelEdge]] = None,
                 incomplete: bool = False) -> None:
        self.app = app
        self.variant = variant
        self.edges: List[ChannelEdge] = edges or []
        self.incomplete = incomplete

    @classmethod
    def from_skeleton(cls, skeleton: Skeleton) -> "ProtoGraph":
        graph = cls(skeleton.app, skeleton.variant,
                    incomplete=skeleton.incomplete)
        seen: Set[Tuple] = set()
        for proc in skeleton.procs:
            for op in proc.ops:
                if op.kind not in ("send", "mcast"):
                    continue
                key = (proc.name, op.kind, op.dst, op.tag, op.site)
                if key in seen:
                    continue
                seen.add(key)
                graph.edges.append(ChannelEdge(
                    proc=proc.name, kind=op.kind, dst=op.dst, tag=op.tag,
                    site=op.site, conditional=op.conditional,
                    collective=op.collective))
        if skeleton.incomplete:
            # Soundness fallback: anything the interpreter could not
            # follow may talk to anyone.
            graph.edges.append(ChannelEdge(
                proc="*", kind="send", dst=(DST_ALL, None), tag=WILD,
                site=("<widened>", 0)))
        return graph

    # -- concretization ------------------------------------------------
    def concretize(self, topology) -> Set[Tuple[int, int]]:
        """All (src, dst) rank pairs the symbolic edges permit on
        ``topology``.  Sends execute on every rank (SPMD), so the source
        side is always the full rank set."""
        pairs: Set[Tuple[int, int]] = set()
        ranks = list(topology.ranks())
        leaders = {topology.cluster_leader(c) for c in topology.clusters()}
        for edge in self.edges:
            cat, arg = edge.dst
            for src in ranks:
                if cat == DST_CONST:
                    dsts = [arg] if arg is not None and arg in ranks else []
                elif cat == DST_SELF:
                    dsts = [src]
                elif cat == DST_LEADER_OWN:
                    dsts = [topology.cluster_leader(topology.cluster_of(src))]
                elif cat == DST_LEADERS:
                    dsts = sorted(leaders)
                elif cat == DST_MEMBERS_OWN:
                    dsts = list(
                        topology.cluster_members(topology.cluster_of(src)))
                else:
                    dsts = ranks
                for dst in dsts:
                    pairs.add((src, dst))
        return pairs

    def cluster_pairs(self, topology) -> Set[Tuple[int, int]]:
        """Concretized pairs folded to (src_cluster, dst_cluster)."""
        return {(topology.cluster_of(s), topology.cluster_of(d))
                for s, d in self.concretize(topology)}

    # -- exports -------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "variant": self.variant,
            "incomplete": self.incomplete,
            "edges": [edge.as_dict() for edge in self.edges],
        }

    def to_dot(self) -> str:
        name = f"{self.app}_{self.variant}".replace("-", "_")
        lines = [f'digraph "{name}" {{',
                 '  rankdir=LR;',
                 '  node [shape=box, fontsize=10];']
        procs = sorted({edge.proc for edge in self.edges})
        for proc in procs:
            lines.append(f'  "{proc}";')
        for edge in self.edges:
            cat, arg = edge.dst
            dst = cat if arg is None else f"{cat}:{arg}"
            style = ' style=dashed' if edge.conditional else ''
            label = f"{shape_repr(edge.tag)} → {dst}"
            lines.append(f'  "{edge.proc}" -> "{dst}" '
                         f'[label="{label}"{style}];')
        lines.append("}")
        return "\n".join(lines)


def edges_match(recv_tag: Tuple, send_tag: Tuple) -> bool:
    """Symbolic unification of a receive tag against a send tag."""
    return shapes_unify(recv_tag, send_tag)
