"""User-facing surface of the protocol analyzer.

- :func:`analyze` / :func:`analyze_all` — skeletons for registered
  apps (memoized per module set).
- :func:`proto_findings` — the three analyses folded into ordinary
  :class:`~repro.lint.rules.Finding` objects for the lint CLI.
- :func:`classification_table` — the per-app order-stability table.
- :func:`order_stability_label` — the single-label lookup the replay
  ladder uses as its pre-recording hint (never raises; returns None
  when analysis is unavailable).
- :func:`verify_superset` — the runtime cross-validation harness:
  every observed (src, dst) send pair of a clean run must be permitted
  by the static channel graph.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..rules import Finding, make_finding
from .analyses import (Classification, classify, find_deadlocks,
                       find_taints, find_unmatched)
from .graph import ProtoGraph, Skeleton
from .interp import ModuleSet, analyze_app

_MODSET: Optional[ModuleSet] = None
_SKELETONS: Dict[Tuple[str, str], Skeleton] = {}
_LABELS: Dict[Tuple[str, str], str] = {}


def default_modset(refresh: bool = False) -> ModuleSet:
    """The module set over the installed package sources (cached)."""
    global _MODSET
    if _MODSET is None or refresh:
        _MODSET = ModuleSet.for_repo()
    return _MODSET


def analyze(app: str, variant: str,
            modset: Optional[ModuleSet] = None) -> Skeleton:
    """Static skeleton for one app/variant (memoized for the default
    module set)."""
    if modset is not None:
        return analyze_app(modset, app, variant)
    key = (app, variant)
    if key not in _SKELETONS:
        _SKELETONS[key] = analyze_app(default_modset(), app, variant)
    return _SKELETONS[key]


def analyze_all(modset: Optional[ModuleSet] = None) -> List[Skeleton]:
    """Skeletons for every registered app/variant, sorted."""
    ms = modset if modset is not None else default_modset()
    return [analyze(app, variant, modset=modset)
            for app, variant in ms.apps()]


def classify_all(modset: Optional[ModuleSet] = None
                 ) -> List[Classification]:
    return [classify(s) for s in analyze_all(modset)]


def order_stability_label(app: str, variant: str) -> Optional[str]:
    """The static label for the replay ladder's pre-recording hint.

    Defensive by design: the ladder must keep working when the static
    analyzer cannot (sources unavailable, unregistered app), so this
    returns ``None`` instead of raising.
    """
    key = (app, variant)
    if key in _LABELS:
        return _LABELS[key]
    try:
        label = classify(analyze(app, variant)).label
    except Exception:
        label = None
    _LABELS[key] = label
    return label


# ----------------------------------------------------------------------
# Findings for the lint CLI
# ----------------------------------------------------------------------

def proto_findings(skeletons: Sequence[Skeleton]) -> List[Finding]:
    """All analyzer findings over ``skeletons`` as lint findings."""
    findings: List[Finding] = []
    for skeleton in skeletons:
        where = f"{skeleton.app}/{skeleton.variant}"
        for cycle in find_deadlocks(skeleton):
            first = cycle.entries[0]
            path, lineno = first["site"]
            findings.append(make_finding(
                "proto-deadlock",
                f"{where}: static wait-for cycle over mandatory receives",
                file=path, line=int(lineno),
                detail={"report": cycle.render()}))
        for unmatched in find_unmatched(skeleton):
            findings.append(make_finding(
                "proto-unmatched", f"{where}: {unmatched.message()}",
                file=unmatched.site[0], line=unmatched.site[1]))
        for flow in find_taints(skeleton):
            findings.append(make_finding(
                "proto-taint", f"{where}: {flow.message()}",
                file=flow.site[0], line=flow.site[1]))
    return findings


def classification_table(classifications: Sequence[Classification]
                         ) -> str:
    """Render the per-app order-stability table."""
    rows = [("app", "variant", "label", "evidence")]
    for c in classifications:
        why = c.reasons[0] if c.reasons else \
            "paired tagged channels and collectives only"
        rows.append((c.app, c.variant, c.label, why))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join([row[0].ljust(widths[0]),
                                row[1].ljust(widths[1]),
                                row[2].ljust(widths[2]),
                                row[3]]).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths) + "  " + "-" * 8)
    return "\n".join(lines)


def graphs_json(skeletons: Sequence[Skeleton]) -> Dict[str, Any]:
    """JSON export of every skeleton's channel graph + classification."""
    out: Dict[str, Any] = {"kind": "protograph", "apps": []}
    for skeleton in skeletons:
        label = classify(skeleton)
        entry = skeleton.graph().to_json()
        entry["label"] = label.label
        entry["reasons"] = label.reasons
        out["apps"].append(entry)
    return out


def graphs_dot(skeletons: Sequence[Skeleton]) -> str:
    """Concatenated DOT digraphs, one per app/variant."""
    return "\n".join(s.graph().to_dot() for s in skeletons)


# ----------------------------------------------------------------------
# Runtime cross-validation: static graph ⊇ observed traffic
# ----------------------------------------------------------------------

class _PairCollector:
    """Probe-bus subscriber collecting observed (src, dst) send pairs."""

    def __init__(self) -> None:
        self.pairs: Set[Tuple[int, int]] = set()

    def on_send(self, ev) -> None:
        self.pairs.add((ev.src, ev.dst))

    def on_op(self, ev) -> None:
        if ev.kind == "send" and isinstance(ev.dst, int):
            self.pairs.add((ev.rank, ev.dst))
        elif ev.kind == "multicast":
            for dst in (ev.dst or ()):
                self.pairs.add((ev.rank, dst))


def observed_pairs(app: str, variant: str, topology,
                   scale: str = "bench", seed: int = 0):
    """Run the app and collect every observed (src, dst) send pair plus
    the :class:`~repro.network.stats.TrafficStats` cluster-pair matrix."""
    from ...apps import run_app
    from ...obs.bus import ProbeBus

    bus = ProbeBus()
    collector = _PairCollector()
    bus.attach(collector)
    result = run_app(app, variant, topology, scale=scale, seed=seed,
                     bus=bus)
    cluster_pairs = set(result.stats.pair.keys())
    return collector.pairs, cluster_pairs


def verify_superset(app: str, variant: str, topology,
                    scale: str = "bench", seed: int = 0,
                    modset: Optional[ModuleSet] = None) -> Dict[str, Any]:
    """Assert the static channel graph covers one clean run's traffic.

    Returns a report dict; ``report["ok"]`` is True when every observed
    rank pair and every TrafficStats cluster pair is inside the static
    concretization.  This is the soundness contract of the analyzer:
    widening may over-approximate, never under-approximate.
    """
    skeleton = analyze(app, variant, modset=modset)
    graph = ProtoGraph.from_skeleton(skeleton)
    static_pairs = graph.concretize(topology)
    static_cluster = graph.cluster_pairs(topology)
    observed, observed_cluster = observed_pairs(
        app, variant, topology, scale=scale, seed=seed)
    missing_pairs = sorted(observed - static_pairs)
    missing_cluster = sorted(observed_cluster - static_cluster)
    return {
        "app": app,
        "variant": variant,
        "ok": not missing_pairs and not missing_cluster,
        "observed_pairs": len(observed),
        "static_pairs": len(static_pairs),
        "missing_pairs": missing_pairs,
        "missing_cluster_pairs": missing_cluster,
        "incomplete": skeleton.incomplete,
    }
