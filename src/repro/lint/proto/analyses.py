"""The three analyses over a static communication skeleton.

1. :func:`find_unmatched` / :func:`find_deadlocks` — symbolic send/recv
   unification and wait-for cycle detection over *mandatory* blocking
   receives (unconditional, outside loops).  The cycle report mirrors
   the runtime sanitizer's :class:`~repro.lint.sanitizer.DeadlockReport`
   format with symbolic ranks.
2. :func:`classify` — the order-stability label (``stable`` /
   ``unstable`` / ``timing-sensitive``) that feeds the replay ladder.
3. :func:`find_taints` — whole-program determinism findings: values
   tainted by wall-clock reads, unseeded RNG, or set iteration that
   flow into communication sinks.

Order-stability decision procedure (validated against the runtime
probe verdicts of all six apps, both variants):

- **timing-sensitive** — the registry says so (``timing_dependent``),
  or the skeleton reaches ``recv_nowait`` polling, a ``ctx.sleep``
  timer, or a work loop whose exit is decided by received payloads
  (work stealing, marker-counted exchanges).  The DAG itself changes
  with timing; only simulation is faithful.
- **unstable** — deterministic DAG, but the *service order* at shared
  resources depends on arrival order: a daemon defers message-derived
  work (parks requests, serves them from later handlers, or gates
  sends on loop-carried counters), or the main coroutine runs two or
  more pipelined counted fan-ins with no barrier between them.  Frozen
  replay orders drift; the per-point evaluator is required.
- **stable** — everything else: paired/tagged point-to-point plus
  collectives, immediate-reply services.  Vectorized replay is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..static import shape_repr
from .graph import ProcTrace, ProtoOp, Skeleton, WILD, edges_match

LABEL_STABLE = "stable"
LABEL_UNSTABLE = "unstable"
LABEL_TIMING = "timing-sensitive"


def _is_wildish(shape: Tuple) -> bool:
    if shape == WILD:
        return True
    if shape[0] == "prefix":
        return shape[1] == ""
    if shape[0] == "tuple":
        return all(_is_wildish(part) for part in shape[1])
    return False


# ----------------------------------------------------------------------
# Matching / unmatched receives
# ----------------------------------------------------------------------

@dataclass
class UnmatchedRecv:
    proc: str
    tag: Tuple
    site: Tuple[str, int]

    def message(self) -> str:
        return (f"recv({shape_repr(self.tag)}) in {self.proc} matches no "
                f"send site in the app's static channel graph")


def find_unmatched(skeleton: Skeleton) -> List[UnmatchedRecv]:
    """Receives whose symbolic tag unifies with no send site."""
    if skeleton.incomplete:
        return []        # widened graphs match everything
    sends = [op.tag for op in skeleton.send_ops()]
    out: List[UnmatchedRecv] = []
    seen: Set[Tuple] = set()
    for op in skeleton.recv_ops():
        if _is_wildish(op.tag):
            continue
        if any(edges_match(op.tag, send_tag) for send_tag in sends):
            continue
        key = (op.site, op.tag)
        if key in seen:
            continue
        seen.add(key)
        out.append(UnmatchedRecv(proc=op.proc, tag=op.tag, site=op.site))
    return out


# ----------------------------------------------------------------------
# Static deadlock cycles
# ----------------------------------------------------------------------

@dataclass
class StaticCycle:
    """A wait-for cycle over mandatory blocking receives.

    Rendering mirrors :meth:`repro.lint.sanitizer.DeadlockReport.render`
    with symbolic ranks: each entry is one process class blocked on its
    first mandatory receive, waiting on a sender that is itself blocked.
    """

    entries: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        chain = " -> ".join(
            f"rank*[{e['proc']}] waits {e['tag']}" for e in self.entries)
        lines = [f"static deadlock cycle: {chain} -> (back to start)"]
        for entry in self.entries:
            path, lineno = entry["site"]
            lines.append(
                f"  rank* [{entry['proc']}] blocked on recv({entry['tag']})"
                f" at {path}:{lineno} in {entry['proc']}")
        return "\n".join(lines)


def find_deadlocks(skeleton: Skeleton) -> List[StaticCycle]:
    """Wait-for cycles among procs blocked on mandatory receives.

    A receive is *at risk* only when every matching send site sits
    behind the sender's own mandatory blocking receive — conditional
    and loop-body operations never create static cycles (the runtime
    sanitizer owns those timing-dependent cases).
    """
    traces = [t for t in skeleton.procs if not t.incomplete]
    mand: Dict[str, List[ProtoOp]] = {
        t.name: t.mandatory_ops() for t in traces}
    first_recv: Dict[str, Optional[int]] = {}
    for name, ops in mand.items():
        idx = next((i for i, op in enumerate(ops) if op.kind == "recv"),
                   None)
        first_recv[name] = idx

    waits: Dict[str, Tuple[ProtoOp, Set[str]]] = {}
    for name, ops in mand.items():
        idx = first_recv[name]
        if idx is None:
            continue
        recv = ops[idx]
        servicers: List[Tuple[str, int]] = []
        for other, other_ops in mand.items():
            for j, op in enumerate(other_ops):
                if op.kind in ("send", "mcast") and \
                        edges_match(recv.tag, op.tag):
                    servicers.append((other, j))
        if not servicers:
            continue
        blocked_senders: Set[str] = set()
        serviceable = False
        for other, j in servicers:
            other_first = first_recv[other]
            if other_first is None or j < other_first:
                serviceable = True
                break
            blocked_senders.add(other)
        if not serviceable and blocked_senders:
            waits[name] = (recv, blocked_senders)

    # Cycle detection (iterative DFS over the small wait-for graph).
    cycles: List[StaticCycle] = []
    seen_cycles: Set[Tuple[str, ...]] = set()
    for start in sorted(waits):
        path: List[str] = []
        on_path: Set[str] = set()

        def visit(node: str) -> None:
            if node in on_path:
                cycle = path[path.index(node):]
                key = tuple(sorted(cycle))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    entries = []
                    for member in cycle:
                        recv, _ = waits[member]
                        entries.append({
                            "proc": member,
                            "tag": shape_repr(recv.tag),
                            "site": recv.site,
                        })
                    cycles.append(StaticCycle(entries=entries))
                return
            if node not in waits:
                return
            path.append(node)
            on_path.add(node)
            for succ in sorted(waits[node][1]):
                visit(succ)
            path.pop()
            on_path.discard(node)

        visit(start)
    return cycles


# ----------------------------------------------------------------------
# Order-stability classification
# ----------------------------------------------------------------------

@dataclass
class Classification:
    app: str
    variant: str
    label: str
    reasons: List[str] = field(default_factory=list)

    def summary(self) -> str:
        why = "; ".join(self.reasons) if self.reasons else \
            "paired tagged channels and collectives only"
        return f"{self.app}/{self.variant}: {self.label} ({why})"


def _site(op_or_site) -> str:
    site = op_or_site.site if isinstance(op_or_site, ProtoOp) else op_or_site
    return f"{site[0]}:{site[1]}"


def pipelined_fanins(skeleton: Skeleton) -> List[List[ProtoOp]]:
    """Runs of >= 2 distinct counted fan-ins with no barrier between.

    A fan-in is a blocking receive inside a ``for`` loop whose tag does
    not involve the loop variable (all senders race into one ordered
    queue).  Collective-internal joins are rank-deterministic
    reductions and are excluded; barriers reset the run.  Instances are
    identified by call path, so three pipelined transpose calls count
    as three fan-ins even though they share a source line.
    """
    send_tags = [op.tag for op in skeleton.send_ops()]
    runs: List[List[ProtoOp]] = []
    for trace in skeleton.procs:
        if trace.daemon:
            continue
        current: Dict[Tuple, ProtoOp] = {}
        for op in trace.ops:
            if op.kind == "barrier":
                if len(current) >= 2:
                    runs.append(list(current.values()))
                current = {}
                continue
            if not op.fan_in_candidate:
                continue
            if not any(edges_match(op.tag, tag) for tag in send_tags):
                continue
            current.setdefault(op.instance, op)
        if len(current) >= 2:
            runs.append(list(current.values()))
    return runs


def classify(skeleton: Skeleton) -> Classification:
    """Label one app/variant ``stable | unstable | timing-sensitive``."""
    reasons: List[str] = []

    # --- timing-sensitive: the DAG itself depends on timing ----------
    if skeleton.timing_dependent:
        reasons.append("registered timing_dependent")
    for trace in skeleton.procs:
        for op in trace.ops:
            if op.kind == "poll":
                reasons.append(
                    f"recv_nowait polling in {trace.name} at {_site(op)}")
            elif op.kind == "sleep":
                reasons.append(
                    f"sleep timer in {trace.name} at {_site(op)}")
        for site in trace.payload_loops:
            reasons.append(
                f"payload-dependent work loop in {trace.name} at "
                f"{site[0]}:{site[1]}")
    if reasons:
        return Classification(skeleton.app, skeleton.variant,
                              LABEL_TIMING, _dedup(reasons))

    if skeleton.incomplete:
        # Could not prove anything about the DAG: take the conservative
        # bottom rung of the ladder.
        notes = skeleton.notes or ["interpretation incomplete (widened)"]
        return Classification(skeleton.app, skeleton.variant,
                              LABEL_TIMING, list(notes))

    # --- unstable: deterministic DAG, arrival-dependent orders -------
    for trace in skeleton.procs:
        for op in trace.deferred_sends:
            reasons.append(
                f"service {trace.name} defers message-derived sends "
                f"(parked-request buffer) at {_site(op)}")
        for op in trace.gated_sends:
            reasons.append(
                f"service {trace.name} gates sends on loop-carried "
                f"state at {_site(op)}")
    for run in pipelined_fanins(skeleton):
        sites = ", ".join(_site(op) for op in run[:4])
        reasons.append(
            f"{len(run)} pipelined counted fan-ins with no barrier "
            f"between ({sites})")
    if reasons:
        return Classification(skeleton.app, skeleton.variant,
                              LABEL_UNSTABLE, _dedup(reasons))

    return Classification(skeleton.app, skeleton.variant, LABEL_STABLE)


def _dedup(reasons: Sequence[str]) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for reason in reasons:
        if reason not in seen:
            seen.add(reason)
            out.append(reason)
    return out


# ----------------------------------------------------------------------
# Determinism taint
# ----------------------------------------------------------------------

@dataclass
class TaintFlow:
    proc: str
    op_kind: str
    sink: str
    source: str
    site: Tuple[str, int]

    def message(self) -> str:
        return (f"{self.source} flows into {self.op_kind} {self.sink} "
                f"in {self.proc}")


def find_taints(skeleton: Skeleton) -> List[TaintFlow]:
    """Tainted values reaching communication sinks, whole-program."""
    out: List[TaintFlow] = []
    seen: Set[Tuple] = set()
    for op in skeleton.all_ops():
        for sink, taints in sorted(op.sink_taints.items()):
            for source in sorted(taints):
                key = (op.site, sink, source)
                if key in seen:
                    continue
                seen.add(key)
                out.append(TaintFlow(proc=op.proc, op_kind=op.kind,
                                     sink=sink, source=source,
                                     site=op.site))
    return out
