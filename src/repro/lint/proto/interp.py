"""Rank-symbolic abstract interpreter over the SPMD app sources.

:class:`ModuleSet` parses a set of source files (no imports are
executed — everything is AST-level), discovers the ``register_app``
entries, and :func:`analyze_app` interprets one app/variant: the
builder is called with an abstract config (dataclass declared
defaults), the returned ``main(ctx)`` coroutine is executed over the
abstract domain of :mod:`repro.lint.proto.graph`, and every spawned
service body is interpreted as a daemon trace afterwards, sharing the
same abstract heap so state handed to services through closures stays
visible.

Design rules, in order of importance:

1. **Soundness through widening.**  Anything the interpreter cannot
   follow — an unresolved import, an unsupported construct, an internal
   error — degrades to ``TOP`` (and, for whole coroutines, an
   ``incomplete`` trace that the graph widens to a ⊤→⊤ edge).  The
   superset property against observed traffic survives every fallback.
2. **Branches join, loops run twice.**  A concrete test takes one
   branch; a symbolic test interprets both and joins the environments.
   Loop bodies run two passes so cross-iteration heap flows (a service
   parking a request in one handler and serving it from another) are
   observed.
3. **Interprocedural by inlining.**  Calls into resolvable functions
   are interpreted at the call site with a depth cap and a recursion
   guard; each distinct call site keeps its own instance identity so
   three pipelined transposes count as three fan-ins, not one.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .graph import (AV, Cell, ProcTrace, ProtoOp, Skeleton, WILD, const,
                    dst_category, join, tag_shape_of, top)

#: runtime modules whose internal counted fan-ins are rank-deterministic
#: reductions (collectives); their receives never count toward the
#: pipelined-fan-in rule, and barriers additionally reset it.
COLLECTIVE_MODULES = {
    "barrier": "barrier",
    "bcast": "bcast",
    "reduction": "reduction",
}

#: external callables whose results carry a determinism taint.
TAINT_SOURCES = {
    "time.time": "wall-clock",
    "time.monotonic": "wall-clock",
    "time.perf_counter": "wall-clock",
    "time.time_ns": "wall-clock",
    "datetime.now": "wall-clock",
    "datetime.utcnow": "wall-clock",
    "random.random": "global-rng",
    "random.randrange": "global-rng",
    "random.randint": "global-rng",
    "random.choice": "global-rng",
    "random.shuffle": "global-rng",
    "random.uniform": "global-rng",
    "random.sample": "global-rng",
}

_CALL_DEPTH_CAP = 40
_EVAL_BUDGET = 400_000


class _Budget(Exception):
    """Abstract-interpretation step budget exhausted."""


class _Return(Exception):
    def __init__(self, value: AV) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# ----------------------------------------------------------------------
# Module loading and the app registry
# ----------------------------------------------------------------------

class ModuleInfo:
    """Parsed source of one module: AST plus name-resolution tables."""

    def __init__(self, path: str, dotted: str, tree: ast.Module) -> None:
        self.path = path
        self.dotted = dotted
        self.tree = tree
        self.functions: Dict[str, ast.AST] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.imports: Dict[str, Tuple[str, Optional[str]]] = {}
        self.consts: Dict[str, AV] = {}
        self._index()

    @property
    def package(self) -> str:
        return self.dotted.rsplit(".", 1)[0] if "." in self.dotted else ""

    def _index(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (alias.name, None)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = (base, alias.name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                value = fold_const(node.value, self.consts)
                if value is not None:
                    self.consts[node.targets[0].id] = value

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = self.dotted.split(".")
        # level=1 strips the module name itself, each extra level one
        # more package component.
        base = parts[:-node.level] if node.level <= len(parts) else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)


_SENTINEL = object()


def fold_const(node: ast.AST, env: Optional[Dict[str, AV]] = None) -> Optional[AV]:
    """Best-effort constant folding of a module-level expression."""
    value = _fold(node, env or {})
    return const(value) if value is not _SENTINEL else None


def _fold(node: ast.AST, env: Dict[str, AV]) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        got = env.get(node.id)
        if got is not None and got.is_const:
            return got.const
        return _SENTINEL
    if isinstance(node, (ast.Tuple, ast.List)):
        items = [_fold(e, env) for e in node.elts]
        if any(item is _SENTINEL for item in items):
            return _SENTINEL
        return tuple(items)
    if isinstance(node, ast.UnaryOp):
        val = _fold(node.operand, env)
        if val is _SENTINEL:
            return _SENTINEL
        try:
            if isinstance(node.op, ast.USub):
                return -val
            if isinstance(node.op, ast.Not):
                return not val
        except Exception:
            return _SENTINEL
        return _SENTINEL
    if isinstance(node, ast.BinOp):
        left, right = _fold(node.left, env), _fold(node.right, env)
        if left is _SENTINEL or right is _SENTINEL:
            return _SENTINEL
        try:
            return _BINOPS[type(node.op)](left, right)
        except Exception:
            return _SENTINEL
    return _SENTINEL


_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}


@dataclass
class AppEntry:
    """One discovered ``register_app`` call."""

    app: str
    variant: str
    module: ModuleInfo
    builder: ast.expr
    timing_dependent: bool = False
    site: Tuple[str, int] = ("", 0)


class ModuleSet:
    """A set of parsed modules with cross-module name resolution."""

    def __init__(self, files: Sequence[Tuple[str, str]]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        for path, dotted in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
            except (OSError, SyntaxError):
                continue
            self.modules[dotted] = ModuleInfo(path, dotted, tree)
        self.registry: Dict[Tuple[str, str], AppEntry] = {}
        self._discover_registry()

    # -- construction helpers -----------------------------------------
    @classmethod
    def for_repo(cls, roots: Optional[Sequence[str]] = None) -> "ModuleSet":
        """Module set over the installed ``repro`` package sources.

        ``roots`` restricts to sub-packages (default: the interprocedural
        surface named by the analyzer spec — apps, runtime, mpi, magpie,
        orca).
        """
        pkg_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        subdirs = list(roots) if roots else [
            "apps", "runtime", "mpi", "magpie", "orca"]
        files: List[Tuple[str, str]] = []
        for sub in subdirs:
            base = os.path.join(pkg_dir, sub)
            if not os.path.isdir(base):
                continue
            for dirpath, _dirnames, filenames in os.walk(base):
                for fname in sorted(filenames):
                    if not fname.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, fname)
                    rel = os.path.relpath(path, os.path.dirname(pkg_dir))
                    dotted = rel[:-3].replace(os.sep, ".")
                    if dotted.endswith(".__init__"):
                        dotted = dotted[:-len(".__init__")]
                    # Prefer checkout-relative paths in reports.
                    shown = os.path.relpath(path)
                    if shown.startswith(".."):
                        shown = path
                    files.append((shown, dotted))
        return cls(files)

    @classmethod
    def from_paths(cls, paths: Sequence[str], package: str = "app"
                   ) -> "ModuleSet":
        """Module set over explicit files/directories (test fixtures)."""
        files: List[Tuple[str, str]] = []
        for entry in paths:
            if os.path.isdir(entry):
                for dirpath, _dirnames, filenames in os.walk(entry):
                    for fname in sorted(filenames):
                        if fname.endswith(".py"):
                            path = os.path.join(dirpath, fname)
                            stem = os.path.splitext(
                                os.path.relpath(path, entry))[0]
                            dotted = package + "." + \
                                stem.replace(os.sep, ".")
                            files.append((path, dotted))
            elif entry.endswith(".py"):
                stem = os.path.splitext(os.path.basename(entry))[0]
                files.append((entry, package + "." + stem))
        return cls(files)

    # -- registry ------------------------------------------------------
    def _discover_registry(self) -> None:
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node.func)
                if name != "register_app":
                    continue
                args = node.args
                if len(args) < 3:
                    continue
                app = _const_str(args[0])
                variant = _const_str(args[1])
                if app is None or variant is None:
                    continue
                timing = False
                for kw in node.keywords:
                    if kw.arg == "timing_dependent":
                        folded = fold_const(kw.value)
                        timing = bool(folded.const) if folded else False
                self.registry[(app, variant)] = AppEntry(
                    app=app, variant=variant, module=module,
                    builder=args[2], timing_dependent=timing,
                    site=(module.path, node.lineno))
        # ``is_timing_dependent`` is keyed by app *name* at runtime: if any
        # registration of an app carries the flag, every variant does.
        timed = {app for (app, _v), e in self.registry.items()
                 if e.timing_dependent}
        for (app, _variant), entry in self.registry.items():
            if app in timed:
                entry.timing_dependent = True

    def apps(self) -> List[Tuple[str, str]]:
        return sorted(self.registry)

    # -- resolution ----------------------------------------------------
    def resolve(self, module: ModuleInfo, name: str,
                _depth: int = 0) -> Optional[AV]:
        if name in module.consts:
            return module.consts[name]
        if name in module.functions:
            return AV("func", payload=FuncVal(module.functions[name],
                                              (), module))
        if name in module.classes:
            return AV("class", payload=ClassVal(module.classes[name], module))
        if name in module.imports:
            target, orig = module.imports[name]
            if orig is None:
                return AV("module", const=target)
            other = self.lookup_module(target)
            if other is not None and _depth < 4:
                got = self.resolve(other, orig, _depth + 1)
                if got is not None:
                    return got
            return AV("extern", const=f"{target}.{orig}")
        return None

    def lookup_module(self, dotted: str) -> Optional[ModuleInfo]:
        if dotted in self.modules:
            return self.modules[dotted]
        # Tolerate differing top-level anchors ("repro.apps.base" vs
        # "app.base") by suffix matching.
        for cand, info in self.modules.items():
            if cand.endswith("." + dotted) or dotted.endswith("." + cand):
                return info
        return None


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ----------------------------------------------------------------------
# Callable / object representations
# ----------------------------------------------------------------------

@dataclass
class FuncVal:
    node: ast.AST                       # FunctionDef or Lambda
    closure: Tuple[Dict[str, AV], ...]  # innermost first
    module: ModuleInfo
    bound: Optional["ObjVal"] = None


@dataclass
class ClassVal:
    node: ast.ClassDef
    module: ModuleInfo
    #: enclosing scopes for classes defined inside a function body, so
    #: methods can see the defining function's locals (innermost first)
    closure: Tuple[Dict[str, AV], ...] = ()

    def methods(self) -> Dict[str, ast.AST]:
        return {n.name: n for n in self.node.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}

    def fields(self) -> List[Tuple[str, Optional[ast.expr]]]:
        out = []
        for stmt in self.node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                out.append((stmt.target.id, stmt.value))
        return out


class ObjVal:
    __slots__ = ("cls", "attrs", "label")

    def __init__(self, cls: Optional[ClassVal], label: str = "") -> None:
        self.cls = cls
        self.attrs: Dict[str, Cell] = {}
        self.label = label or (cls.node.name if cls else "obj")

    def attr_cell(self, name: str) -> Cell:
        cell = self.attrs.get(name)
        if cell is None:
            cell = self.attrs[name] = Cell(f"{self.label}.{name}")
        return cell


@dataclass
class LoopFrame:
    kind: str                   # "for" | "while"
    sym: int
    cond_depth: int
    breaks_msgd: bool = False


_BUILTINS = frozenset({
    "range", "len", "list", "tuple", "sorted", "set", "frozenset", "dict",
    "min", "max", "sum", "abs", "int", "float", "str", "bool", "enumerate",
    "zip", "isinstance", "print", "iter", "next", "round", "divmod", "map",
    "filter", "any", "all", "reversed", "getattr", "hasattr", "repr",
    "id", "hash", "type", "object", "Exception", "ValueError",
    "RuntimeError", "KeyError", "StopIteration", "NotImplementedError",
})


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------

class Interpreter:
    """Abstract executor for one app/variant's coroutines."""

    def __init__(self, modset: ModuleSet, skeleton: Skeleton) -> None:
        self.modset = modset
        self.skeleton = skeleton
        self.cur: Optional[ProcTrace] = None
        self.loop_stack: List[LoopFrame] = []
        self.cond_stack: List[AV] = []
        self.call_sites: List[Tuple[str, int]] = []
        self.module_stack: List[ModuleInfo] = []
        self.collective: Optional[str] = None
        self.depth = 0
        self.steps = 0
        self.loop_syms = 0
        self.spawn_queue: List[Tuple[AV, str, Tuple[str, int]]] = []
        self._spawned_seen: Set[Tuple[int, int]] = set()
        self._svc_names: Dict[str, int] = {}
        #: allocation-site summary objects: repeated instantiation at one
        #: call site yields one ObjVal whose attribute cells join all
        #: constructor runs (keeps ``d.get(k) or Cls()`` patterns precise)
        self._objcache: Dict[Tuple[int, Tuple[str, int]], AV] = {}

    # -- bookkeeping ---------------------------------------------------
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > _EVAL_BUDGET:
            raise _Budget()

    @property
    def loop_depth(self) -> int:
        return len(self.loop_stack)

    def cur_file(self) -> str:
        if self.module_stack:
            return self.module_stack[-1].path
        return "<unknown>"

    def _new_sym(self) -> int:
        self.loop_syms += 1
        return self.loop_syms

    def in_loop(self) -> bool:
        return self.loop_depth > 0

    # -- proc driving --------------------------------------------------
    def run_proc(self, name: str, fn_av: AV, daemon: bool) -> ProcTrace:
        trace = ProcTrace(name=name, daemon=daemon)
        self.skeleton.procs.append(trace)
        self.cur = trace
        self.loop_stack, self.cond_stack = [], []
        self.call_sites, self.collective = [], None
        try:
            if fn_av.kind != "func":
                trace.incomplete = True
            else:
                self.call_function(fn_av, [AV("ctx")], {}, guard=False)
        except _Budget:
            trace.incomplete = True
        except Exception:
            trace.incomplete = True
        if trace.incomplete:
            self.skeleton.incomplete = True
            site = (self.cur_file(), 0)
            trace.ops.append(ProtoOp(kind="send", proc=name, site=site,
                                     detail="widened"))
            trace.ops.append(ProtoOp(kind="recv", proc=name, site=site,
                                     detail="widened"))
        return trace

    def drain_spawns(self) -> None:
        budget = 32
        while self.spawn_queue and budget > 0:
            budget -= 1
            factory, name, _site = self.spawn_queue.pop(0)
            if factory.kind != "func":
                self.skeleton.incomplete = True
                continue
            fv: FuncVal = factory.payload
            key = (id(fv.node), id(fv.bound) if fv.bound else 0)
            if key in self._spawned_seen:
                continue
            self._spawned_seen.add(key)
            count = self._svc_names.get(name, 0)
            self._svc_names[name] = count + 1
            label = name if count == 0 else f"{name}#{count}"
            self.run_proc(label, factory, daemon=True)

    # -- op recording --------------------------------------------------
    def record(self, kind: str, node: ast.AST, dst_av: Optional[AV] = None,
               tag_av: Optional[AV] = None,
               sinks: Optional[Dict[str, Optional[AV]]] = None,
               rpc: bool = False, detail: str = "") -> ProtoOp:
        assert self.cur is not None
        lineno = getattr(node, "lineno", 0)
        innermost = self.loop_stack[-1] if self.loop_stack else None
        in_for = innermost is not None and innermost.kind == "for"
        tag_dep = bool(innermost and tag_av is not None
                       and innermost.sym in tag_av.loopsyms)
        sink_taints = {}
        for label, av in (sinks or {}).items():
            if av is not None and av.taint:
                sink_taints[label] = av.taint
        op = ProtoOp(
            kind=kind, proc=self.cur.name,
            site=(self.cur_file(), lineno),
            ctxid=tuple(self.call_sites[-6:]),
            dst=dst_category(dst_av),
            tag=tag_shape_of(tag_av),
            mandatory=(not self.cond_stack and not self.loop_stack
                       and self.collective is None),
            conditional=bool(self.cond_stack or self.loop_stack),
            in_for=in_for, loop_tag_dep=tag_dep,
            collective=self.collective, rpc=rpc,
            sink_taints=sink_taints, detail=detail)
        self.cur.ops.append(op)
        if kind in ("send", "mcast") and self.cur.daemon:
            prov = []
            if dst_av is not None:
                prov.extend(dst_av.cells)
            if tag_av is not None:
                prov.extend(tag_av.cells)
            if any(cell.msg_written for cell in prov):
                self.cur.deferred_sends.append(op)
        return op

    # -- function calls ------------------------------------------------
    def call_function(self, fn_av: AV, args: List[AV],
                      kwargs: Dict[str, AV],
                      site: Optional[Tuple[str, int]] = None,
                      guard: bool = True) -> AV:
        self._tick()
        if fn_av.kind != "func":
            return top(fn_av, *args)
        fv: FuncVal = fn_av.payload
        if self.depth >= _CALL_DEPTH_CAP:
            return top().with_flags_of(*args)
        recursion = sum(1 for s in self.call_sites if s == site)
        if site is not None and recursion > 2:
            return top().with_flags_of(*args)

        collective_here = None
        modname = fv.module.dotted.rsplit(".", 1)[-1]
        if self.collective is None and modname in COLLECTIVE_MODULES \
                and "runtime" in fv.module.dotted:
            collective_here = COLLECTIVE_MODULES[modname]
            if collective_here == "barrier" and self.cur is not None:
                node = fv.node
                self.cur.ops.append(ProtoOp(
                    kind="barrier", proc=self.cur.name,
                    site=(fv.module.path, getattr(node, "lineno", 0)),
                    ctxid=tuple(self.call_sites[-6:]),
                    conditional=bool(self.cond_stack or self.loop_stack)))

        frame: Dict[str, AV] = {}
        self._bind_params(fv, args, kwargs, frame)
        env = (frame,) + fv.closure
        self.depth += 1
        if site is not None:
            self.call_sites.append(site)
        self.module_stack.append(fv.module)
        if collective_here is not None:
            self.collective = collective_here
        try:
            body = fv.node.body
            if isinstance(fv.node, ast.Lambda):
                return self.eval(fv.node.body, env)
            returns: List[Optional[AV]] = []
            try:
                self.exec_stmts(body, env, returns)
            except _Return as ret:
                returns.append(ret.value)
            except (_Break, _Continue):
                pass
            result: Optional[AV] = None
            for value in returns:
                result = join(result, value)
            return result if result is not None else const(None)
        except _Budget:
            raise
        except (_Return, RecursionError):
            return top()
        except Exception:
            if not guard:
                raise
            if self.cur is not None:
                self.cur.incomplete = True
                self.skeleton.incomplete = True
            return top()
        finally:
            self.depth -= 1
            self.module_stack.pop()
            if site is not None:
                self.call_sites.pop()
            if collective_here is not None:
                self.collective = None

    def _bind_params(self, fv: FuncVal, args: List[AV],
                     kwargs: Dict[str, AV], frame: Dict[str, AV]) -> None:
        node = fv.node
        arguments = node.args
        params = [a.arg for a in arguments.args]
        positional = list(args)
        if fv.bound is not None:
            positional.insert(0, AV("obj", payload=fv.bound))
        defaults = arguments.defaults
        offset = len(params) - len(defaults)
        closure_env = fv.closure + ({},)
        for idx, name in enumerate(params):
            if idx < len(positional):
                frame[name] = positional[idx]
            elif name in kwargs:
                frame[name] = kwargs[name]
            elif idx >= offset:
                try:
                    frame[name] = self.eval(defaults[idx - offset],
                                            closure_env)
                except Exception:
                    frame[name] = top()
            else:
                frame[name] = top()
        for kw_node, default in zip(arguments.kwonlyargs,
                                    arguments.kw_defaults):
            name = kw_node.arg
            if name in kwargs:
                frame[name] = kwargs[name]
            elif default is not None:
                try:
                    frame[name] = self.eval(default, closure_env)
                except Exception:
                    frame[name] = top()
            else:
                frame[name] = top()
        if arguments.vararg is not None:
            frame[arguments.vararg.arg] = top().with_flags_of(*args)
        if arguments.kwarg is not None:
            frame[arguments.kwarg.arg] = top().with_flags_of(
                *kwargs.values())

    # -- statements ----------------------------------------------------
    def exec_stmts(self, body: Sequence[ast.stmt],
                   env: Tuple[Dict[str, AV], ...],
                   returns: List[Optional[AV]]) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env, returns)

    def exec_stmt(self, stmt: ast.stmt, env: Tuple[Dict[str, AV], ...],
                  returns: List[Optional[AV]]) -> None:
        self._tick()
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, value, env)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval_target_read(stmt.target, env)
            operand = self.eval(stmt.value, env)
            self.bind(stmt.target, top(current, operand), env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env) if stmt.value else const(None)
            raise _Return(value)
        elif isinstance(stmt, ast.If):
            self.exec_if(stmt, env, returns)
        elif isinstance(stmt, ast.For):
            self.exec_for(stmt, env, returns)
        elif isinstance(stmt, ast.While):
            self.exec_while(stmt, env, returns)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, value, env)
            self.exec_stmts(stmt.body, env, returns)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env[0][stmt.name] = AV(
                "func", payload=FuncVal(stmt, env, self.module_stack[-1]))
        elif isinstance(stmt, ast.ClassDef):
            env[0][stmt.name] = AV(
                "class", payload=ClassVal(stmt, self.module_stack[-1],
                                          closure=tuple(env)))
        elif isinstance(stmt, ast.Break):
            if self.loop_stack:
                start = self.loop_stack[-1].cond_depth
                if any(test.msgd for test in self.cond_stack[start:]):
                    self.loop_stack[-1].breaks_msgd = True
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
            raise _Return(top())
        elif isinstance(stmt, ast.Try):
            self.exec_stmts(stmt.body, env, returns)
            self.cond_stack.append(top())
            try:
                for handler in stmt.handlers:
                    try:
                        self.exec_stmts(handler.body, env, returns)
                    except (_Return, _Break, _Continue):
                        pass
            finally:
                self.cond_stack.pop()
            self.exec_stmts(stmt.finalbody, env, returns)
        elif isinstance(stmt, (ast.Assert, ast.Pass, ast.Delete,
                               ast.Import, ast.ImportFrom, ast.Global,
                               ast.Nonlocal)):
            pass
        else:
            # Unknown statement: evaluate children defensively.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    try:
                        self.eval(child, env)
                    except (_Return, _Break, _Continue):
                        raise
                    except _Budget:
                        raise
                    except Exception:
                        pass

    def exec_if(self, stmt: ast.If, env: Tuple[Dict[str, AV], ...],
                returns: List[Optional[AV]]) -> None:
        test = self.eval(stmt.test, env)
        truth = test.truth()
        if truth is True:
            self.exec_stmts(stmt.body, env, returns)
            return
        if truth is False:
            self.exec_stmts(stmt.orelse, env, returns)
            return
        before = dict(env[0])
        n_ops_start = len(self.cur.ops) if self.cur else 0
        self.cond_stack.append(test)
        try:
            body_sends = self._exec_branch(stmt.body, env, returns)
            after_body = dict(env[0])
            env[0].clear()
            env[0].update(before)
            orelse_sends = self._exec_branch(stmt.orelse, env, returns)
            # Join the two branch environments.
            for name in sorted(set(after_body) | set(env[0])):
                env[0][name] = join(after_body.get(name), env[0].get(name))
        finally:
            self.cond_stack.pop()
        # Order-stability: a send whose *occurrence* depends on
        # loop-carried service state (and has no counterpart on the
        # other path) makes a daemon's output order arrival-dependent.
        if self.cur is not None and self.cur.daemon and self.loop_stack \
                and any(cell.written_in_loop for cell in test.cells):
            ops = self.cur.ops[n_ops_start:]
            if body_sends and not orelse_sends:
                self.cur.gated_sends.extend(
                    op for op in ops if op.kind in ("send", "mcast"))
            elif orelse_sends and not body_sends:
                self.cur.gated_sends.extend(
                    op for op in ops if op.kind in ("send", "mcast"))

    def _exec_branch(self, body: Sequence[ast.stmt],
                     env: Tuple[Dict[str, AV], ...],
                     returns: List[Optional[AV]]) -> int:
        n_start = len(self.cur.ops) if self.cur else 0
        try:
            self.exec_stmts(body, env, returns)
        except _Return as ret:
            returns.append(ret.value)
        except (_Break, _Continue):
            pass
        if self.cur is None:
            return 0
        return sum(1 for op in self.cur.ops[n_start:]
                   if op.kind in ("send", "mcast"))

    def exec_for(self, stmt: ast.For, env: Tuple[Dict[str, AV], ...],
                 returns: List[Optional[AV]]) -> None:
        iter_av = self.eval(stmt.iter, env)
        sym = self._new_sym()
        elem = self.iter_elem(iter_av).with_loopsym(sym)
        frame = LoopFrame("for", sym, len(self.cond_stack))
        self.loop_stack.append(frame)
        try:
            for _pass in range(2):
                self.bind(stmt.target, elem, env)
                try:
                    self.exec_stmts(stmt.body, env, returns)
                except _Break:
                    break
                except _Continue:
                    continue
        finally:
            self.loop_stack.pop()
        if stmt.orelse:
            self.exec_stmts(stmt.orelse, env, returns)

    def exec_while(self, stmt: ast.While, env: Tuple[Dict[str, AV], ...],
                   returns: List[Optional[AV]]) -> None:
        sym = self._new_sym()
        frame = LoopFrame("while", sym, len(self.cond_stack))
        self.loop_stack.append(frame)
        tests: List[AV] = []
        try:
            for _pass in range(2):
                test = self.eval(stmt.test, env)
                tests.append(test)
                if test.truth() is False:
                    break
                try:
                    self.exec_stmts(stmt.body, env, returns)
                except _Break:
                    break
                except _Continue:
                    continue
            tests.append(self.eval(stmt.test, env))
        finally:
            self.loop_stack.pop()
        if self.cur is not None and not self.cur.daemon:
            payload_dep = any(test.msgd for test in tests) or frame.breaks_msgd
            if payload_dep:
                site = (self.cur_file(), stmt.lineno)
                if site not in self.cur.payload_loops:
                    self.cur.payload_loops.append(site)
        if stmt.orelse:
            self.exec_stmts(stmt.orelse, env, returns)

    # -- binding -------------------------------------------------------
    def bind(self, target: ast.expr, value: AV,
             env: Tuple[Dict[str, AV], ...]) -> None:
        if isinstance(target, ast.Name):
            env[0][target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = None
            if value.kind == "tuple" and value.items is not None \
                    and len(value.items) == len(target.elts):
                items = value.items
            for idx, sub in enumerate(target.elts):
                if isinstance(sub, ast.Starred):
                    self.bind(sub.value, top(value), env)
                elif items is not None:
                    self.bind(sub, items[idx], env)
                else:
                    self.bind(sub, top(value), env)
        elif isinstance(target, ast.Attribute):
            obj = self.eval(target.value, env)
            if obj.kind == "obj":
                obj.payload.attr_cell(target.attr).write(
                    value, self.in_loop())
        elif isinstance(target, ast.Subscript):
            container = self.eval(target.value, env)
            key = self._eval_sub_key(target, env)
            if container.kind == "cell":
                container.payload.write(value, self.in_loop(), key=key)
        # other targets: ignore (sound: reads will widen)

    def eval_target_read(self, target: ast.expr,
                         env: Tuple[Dict[str, AV], ...]) -> AV:
        try:
            return self.eval(target, env)
        except Exception:
            return top()

    def _eval_sub_key(self, node: ast.Subscript,
                      env: Tuple[Dict[str, AV], ...]) -> AV:
        try:
            return self.eval(node.slice, env)
        except Exception:
            return top()

    # -- iteration -----------------------------------------------------
    def iter_elem(self, av: AV) -> AV:
        if av.kind == "iterable" and av.payload is not None:
            return av.payload.with_flags_of(av)
        if av.kind == "cell":
            return av.payload.read().with_flags_of(av)
        if av.kind == "tuple" and av.items is not None:
            out: Optional[AV] = None
            for item in av.items:
                out = join(out, item)
            return (out or top()).with_flags_of(av)
        if av.kind == "const":
            try:
                items = list(av.const)
            except TypeError:
                return top(av)
            out = None
            for item in items[:8]:
                out = join(out, const(item))
            if len(items) > 8:
                out = join(out, top())
            return (out or top()).with_flags_of(av)
        if av.kind in ("msg", "msg-payload"):
            return top(av).with_msgd()
        if av.kind == "iter-members-own":
            return AV("member-own").with_flags_of(av)
        if av.kind == "iter-clusters":
            return AV("cluster").with_flags_of(av)
        return top(av)

    # -- expressions ---------------------------------------------------
    def eval(self, node: ast.AST, env: Tuple[Dict[str, AV], ...]) -> AV:
        self._tick()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node, env)
        # Unknown expression type: widen over child expressions.
        flags: List[AV] = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                try:
                    flags.append(self.eval(child, env))
                except (_Return, _Break, _Continue, _Budget):
                    raise
                except Exception:
                    pass
        return top(*flags)

    def _eval_Constant(self, node, env):
        return const(node.value)

    def _eval_Name(self, node, env):
        for frame in env:
            if node.id in frame:
                return frame[node.id]
        resolved = self.modset.resolve(self.module_stack[-1], node.id)
        if resolved is not None:
            return resolved
        if node.id in _BUILTINS:
            return AV("builtin", const=node.id)
        return AV("top", opaque=True)

    def _eval_Tuple(self, node, env):
        items = tuple(self.eval(e, env) for e in node.elts
                      if not isinstance(e, ast.Starred))
        out = AV("tuple", items=items)
        return out.with_flags_of(*items)

    def _eval_List(self, node, env):
        cell = Cell("list")
        for elt in node.elts:
            if isinstance(elt, ast.Starred):
                cell.write(self.iter_elem(self.eval(elt.value, env)),
                           self.in_loop())
            else:
                cell.write(self.eval(elt, env), self.in_loop())
        return AV("cell", payload=cell)

    def _eval_Set(self, node, env):
        cell = Cell("set", is_set=True)
        for elt in node.elts:
            cell.write(self.eval(elt, env), self.in_loop())
        return AV("cell", payload=cell)

    def _eval_Dict(self, node, env):
        cell = Cell("dict")
        for key, value in zip(node.keys, node.values):
            key_av = self.eval(key, env) if key is not None else top()
            cell.write(self.eval(value, env), self.in_loop(), key=key_av)
        return AV("cell", payload=cell)

    def _eval_ListComp(self, node, env):
        return self._eval_comp(node, env, env_kind="cell")

    def _eval_SetComp(self, node, env):
        return self._eval_comp(node, env, env_kind="set")

    def _eval_GeneratorExp(self, node, env):
        return self._eval_comp(node, env, env_kind="iterable")

    def _eval_DictComp(self, node, env):
        frame = dict(env[0])
        scoped = (frame,) + env[1:]
        for gen in node.generators:
            elem = self.iter_elem(self.eval(gen.iter, scoped))
            self.bind(gen.target, elem.with_loopsym(self._new_sym()), scoped)
            for cond in gen.ifs:
                self.eval(cond, scoped)
        cell = Cell("dictcomp")
        cell.write(self.eval(node.value, scoped), self.in_loop(),
                   key=self.eval(node.key, scoped))
        return AV("cell", payload=cell)

    def _eval_comp(self, node, env, env_kind):
        frame = dict(env[0])
        scoped = (frame,) + env[1:]
        for gen in node.generators:
            elem = self.iter_elem(self.eval(gen.iter, scoped))
            self.bind(gen.target, elem.with_loopsym(self._new_sym()), scoped)
            for cond in gen.ifs:
                self.eval(cond, scoped)
        elt = self.eval(node.elt, scoped)
        if env_kind == "iterable":
            return AV("iterable", payload=elt)
        cell = Cell("comp", is_set=(env_kind == "set"))
        cell.write(elt, self.in_loop())
        return AV("cell", payload=cell)

    def _eval_Lambda(self, node, env):
        return AV("func", payload=FuncVal(node, env, self.module_stack[-1]))

    def _eval_IfExp(self, node, env):
        test = self.eval(node.test, env)
        truth = test.truth()
        if truth is True:
            return self.eval(node.body, env)
        if truth is False:
            return self.eval(node.orelse, env)
        joined = join(self.eval(node.body, env),
                      self.eval(node.orelse, env))
        return (joined or top()).with_flags_of(test)

    def _eval_BoolOp(self, node, env):
        values = [self.eval(v, env) for v in node.values]
        truths = [v.truth() for v in values]
        if isinstance(node.op, ast.And):
            for v, t in zip(values, truths):
                if t is False:
                    return v
            if all(t is True for t in truths):
                return values[-1]
        else:
            for v, t in zip(values, truths):
                if t is True:
                    return v
            if all(t is False for t in truths):
                return values[-1]
        return top(*values)

    def _eval_UnaryOp(self, node, env):
        operand = self.eval(node.operand, env)
        if operand.is_const:
            try:
                if isinstance(node.op, ast.Not):
                    return const(not operand.const).with_flags_of(operand)
                if isinstance(node.op, ast.USub):
                    return const(-operand.const).with_flags_of(operand)
                if isinstance(node.op, ast.UAdd):
                    return operand
            except Exception:
                pass
        return top(operand)

    def _eval_BinOp(self, node, env):
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if left.is_const and right.is_const:
            handler = _BINOPS.get(type(node.op))
            if handler is not None:
                try:
                    return const(handler(left.const, right.const)) \
                        .with_flags_of(left, right)
                except Exception:
                    pass
        return top(left, right)

    def _eval_Compare(self, node, env):
        left = self.eval(node.left, env)
        rights = [self.eval(c, env) for c in node.comparators]
        if left.is_const and len(rights) == 1 and rights[0].is_const:
            result = _fold_compare(node.ops[0], left.const, rights[0].const)
            if result is not None:
                return const(result).with_flags_of(left, rights[0])
        return top(left, *rights)

    def _eval_JoinedStr(self, node, env):
        parts = [self.eval(v.value, env) for v in node.values
                 if isinstance(v, ast.FormattedValue)]
        if not parts:
            return const("".join(v.value for v in node.values
                                 if isinstance(v, ast.Constant)))
        # Keep the constant prefix before the first hole so f-string
        # tags still participate in channel matching.
        prefix_parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and \
                    isinstance(value.value, str):
                prefix_parts.append(value.value)
            else:
                break
        wide = top(*parts)
        return AV("strprefix", const="".join(prefix_parts),
                  taint=wide.taint, msgd=wide.msgd, cells=wide.cells,
                  loopsyms=wide.loopsyms, opaque=wide.opaque)

    def _eval_FormattedValue(self, node, env):
        return top(self.eval(node.value, env))

    def _eval_Starred(self, node, env):
        return self.eval(node.value, env)

    def _eval_Yield(self, node, env):
        if node.value is None:
            return top()
        return self.eval(node.value, env)

    def _eval_YieldFrom(self, node, env):
        value = self.eval(node.value, env)
        if value.opaque and self.cur is not None:
            # An un-followable sub-coroutine may perform arbitrary
            # communication: widen and flag.
            self.cur.incomplete = True
            self.skeleton.incomplete = True
            site_node = node
            self.record("send", site_node, detail="opaque yield-from")
            self.record("recv", site_node, detail="opaque yield-from")
        return value

    def _eval_Await(self, node, env):
        return self.eval(node.value, env)

    def _eval_NamedExpr(self, node, env):
        value = self.eval(node.value, env)
        self.bind(node.target, value, env)
        return value

    def _eval_Slice(self, node, env):
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                self.eval(part, env)
        return top()

    def _eval_Subscript(self, node, env):
        container = self.eval(node.value, env)
        key = self.eval(node.slice, env)
        if container.kind == "cell":
            return container.payload.read().with_flags_of(key)
        if container.kind == "tuple" and container.items is not None \
                and key.is_const and isinstance(key.const, int):
            if -len(container.items) <= key.const < len(container.items):
                return container.items[key.const]
        if container.kind in ("msg", "msg-payload"):
            return top(container, key).with_msgd()
        if container.is_const:
            try:
                return const(container.const[key.const]) \
                    .with_flags_of(container, key)
            except Exception:
                pass
        return top(container, key)

    # -- attributes ----------------------------------------------------
    def _eval_Attribute(self, node, env):
        value = self.eval(node.value, env)
        attr = node.attr
        if value.kind == "ctx":
            return self._ctx_attr(attr)
        if value.kind == "topo":
            return self._topo_attr(attr)
        if value.kind == "msg":
            if attr == "src":
                return top(value).with_msgd()
            if attr == "payload":
                return AV("msg-payload", msgd=True).with_flags_of(value)
            if attr == "tag":
                return top(value).with_msgd()
            return top(value).with_msgd()
        if value.kind == "msg-payload":
            return top(value).with_msgd()
        if value.kind == "obj":
            obj: ObjVal = value.payload
            if attr in obj.attrs:
                return obj.attrs[attr].read().with_flags_of(value)
            if obj.cls is not None:
                method = obj.cls.methods().get(attr)
                if method is not None:
                    return AV("func", payload=FuncVal(
                        method, obj.cls.closure, obj.cls.module, bound=obj))
            return obj.attr_cell(attr).read().with_flags_of(value)
        if value.kind == "cell":
            return AV("cellmethod", const=attr, payload=value.payload) \
                .with_flags_of(value)
        if value.kind == "module":
            target = self.modset.lookup_module(value.const)
            if target is not None:
                resolved = self.modset.resolve(target, attr)
                if resolved is not None:
                    return resolved
            return AV("extern", const=f"{value.const}.{attr}")
        if value.kind == "extern":
            return AV("extern", const=f"{value.const}.{attr}")
        if value.kind == "rng":
            return AV("rngmethod")
        if value.kind == "class":
            cls: ClassVal = value.payload
            method = cls.methods().get(attr)
            if method is not None:
                return AV("func", payload=FuncVal(method, (), cls.module))
            return top(value)
        return top(value)

    def _ctx_attr(self, attr: str) -> AV:
        if attr == "rank":
            return AV("rank")
        if attr == "topology":
            return AV("topo")
        if attr == "num_ranks":
            return AV("numranks")
        if attr == "cluster":
            return AV("cluster-own")
        if attr == "rng":
            return AV("rng")
        if attr == "now":
            return top()
        return AV("ctxmethod", const=attr)

    def _topo_attr(self, attr: str) -> AV:
        if attr == "num_ranks":
            return AV("numranks")
        if attr in ("num_clusters", "wide", "local"):
            return top()
        return AV("topomethod", const=attr)

    # -- calls ---------------------------------------------------------
    def _eval_Call(self, node, env):
        func = self.eval(node.func, env)
        args = [self.eval(a, env) for a in node.args
                if not isinstance(a, ast.Starred)]
        starred = [self.eval(a.value, env) for a in node.args
                   if isinstance(a, ast.Starred)]
        kwargs: Dict[str, AV] = {}
        kw_extra: List[AV] = []
        for kw in node.keywords:
            value = self.eval(kw.value, env)
            if kw.arg is None:
                kw_extra.append(value)
            else:
                kwargs[kw.arg] = value

        kind = func.kind
        if kind == "ctxmethod":
            return self._call_ctx(func.const, node, args, kwargs)
        if kind == "topomethod":
            return self._call_topo(func.const, args)
        if kind == "cellmethod":
            return self._call_cell(func, args, kwargs)
        if kind == "rngmethod":
            return top(*args)
        if kind == "builtin":
            return self._call_builtin(func.const, args, kwargs)
        if kind == "class":
            return self._instantiate(func.payload, args, kwargs, node)
        if kind == "extern":
            return self._call_extern(func.const, node, args, kwargs)
        if kind == "func":
            site = (self.cur_file(), getattr(node, "lineno", 0))
            return self.call_function(func, args, kwargs, site=site)
        if kind == "msg" or kind == "msg-payload":
            return top(func, *args).with_msgd()
        return top(func, *args, *starred, *kw_extra,
                   *kwargs.values())._clone(opaque=True)

    def _call_extern(self, name: str, node, args, kwargs) -> AV:
        for suffix, source in TAINT_SOURCES.items():
            if name == suffix or name.endswith("." + suffix):
                site = f"{os.path.basename(self.cur_file())}:" \
                       f"{getattr(node, 'lineno', 0)}"
                return top(*args).with_taint(f"{source}({name} at {site})")
        if name.endswith("random.Random") or name.endswith(".Random"):
            if not args:
                site = f"{os.path.basename(self.cur_file())}:" \
                       f"{getattr(node, 'lineno', 0)}"
                return top().with_taint(f"unseeded-rng({name} at {site})")
            return top(*args)
        return top(*args, *kwargs.values())._clone(opaque=True)

    def _call_ctx(self, method: str, node, args: List[AV],
                  kwargs: Dict[str, AV]) -> AV:
        def arg(idx: int, name: str) -> Optional[AV]:
            if name in kwargs:
                return kwargs[name]
            if idx < len(args):
                return args[idx]
            return None

        if method == "send":
            dst, size = arg(0, "dst"), arg(1, "size")
            tag, payload = arg(2, "tag"), arg(3, "payload")
            self.record("send", node, dst_av=dst, tag_av=tag,
                        sinks={"dst": dst, "size": size, "tag": tag,
                               "payload": payload})
            return const(None)
        if method == "multicast":
            dsts, size = arg(0, "dsts"), arg(1, "size")
            tag, payload = arg(2, "tag"), arg(3, "payload")
            self.record("mcast", node, dst_av=dsts, tag_av=tag,
                        sinks={"dst": dsts, "size": size, "tag": tag,
                               "payload": payload})
            return const(None)
        if method == "recv":
            tag = arg(0, "tag")
            self.record("recv", node, tag_av=tag, sinks={"tag": tag})
            return AV("msg", msgd=True)
        if method == "recv_nowait":
            tag = arg(0, "tag")
            self.record("poll", node, tag_av=tag, sinks={"tag": tag})
            return AV("msg", msgd=True)
        if method == "compute":
            duration = arg(0, "duration")
            self.record("compute", node,
                        sinks={"duration": duration})
            return const(None)
        if method == "sleep":
            self.record("sleep", node)
            return const(None)
        if method == "rpc":
            dst, tag = arg(0, "dst"), arg(1, "tag")
            size, payload = arg(2, "size"), arg(3, "payload")
            self.record("send", node, dst_av=dst, tag_av=tag, rpc=True,
                        sinks={"dst": dst, "size": size, "tag": tag,
                               "payload": payload})
            reply_tag = AV("tuple", items=(const("_rpc"), AV("rank"), top()))
            self.record("recv", node, tag_av=reply_tag, rpc=True)
            return top().with_msgd()
        if method == "reply":
            request = arg(0, "request")
            size, payload = arg(1, "size"), arg(2, "payload")
            dst = top(request).with_msgd()
            self.record("send", node, dst_av=dst, rpc=True,
                        sinks={"dst": dst, "size": size,
                               "payload": payload})
            return const(None)
        if method == "spawn_service":
            factory = arg(0, "body_factory")
            name_av = arg(1, "name")
            name = name_av.const if name_av is not None \
                and name_av.is_const and isinstance(name_av.const, str) \
                else "svc"
            self.record("spawn", node, detail=name)
            if factory is not None:
                self.spawn_queue.append(
                    (factory, name, (self.cur_file(),
                                     getattr(node, "lineno", 0))))
            return const(None)
        if method == "phase":
            return top()
        if method == "is_local":
            return top(*args)
        return top(*args)

    def _call_topo(self, method: str, args: List[AV]) -> AV:
        first = args[0] if args else None
        if method == "cluster_leader":
            if first is not None and first.kind == "cluster-own":
                return AV("leader-own").with_flags_of(first)
            return AV("leader").with_flags_of(first)
        if method == "cluster_of":
            if first is not None and first.kind == "rank":
                return AV("cluster-own").with_flags_of(first)
            return AV("cluster").with_flags_of(first)
        if method == "cluster_members":
            if first is not None and first.kind == "cluster-own":
                return AV("iter-members-own").with_flags_of(first)
            return AV("iterable", payload=top()).with_flags_of(first)
        if method == "clusters":
            return AV("iter-clusters")
        if method == "ranks":
            return AV("iterable", payload=top())
        if method in ("same_cluster", "local_index", "fingerprint",
                      "describe"):
            return top(*args)
        return top(*args)

    def _call_cell(self, func: AV, args: List[AV],
                   kwargs: Dict[str, AV]) -> AV:
        cell: Cell = func.payload
        name = func.const
        in_loop = self.in_loop()
        if name in ("append", "add", "appendleft"):
            if args:
                cell.write(args[0], in_loop)
            return const(None)
        if name == "insert":
            if len(args) > 1:
                cell.write(args[1], in_loop)
            return const(None)
        if name in ("extend", "update"):
            if args:
                cell.write(self.iter_elem(args[0]), in_loop)
            return const(None)
        if name == "setdefault":
            key = args[0] if args else top()
            default = args[1] if len(args) > 1 else const(None)
            cell.write(default, in_loop, key=key)
            return cell.read().with_flags_of(key)
        if name in ("pop", "popleft", "popitem"):
            result = cell.read()
            if name == "pop" and len(args) > 1:
                result = (join(result, args[1]) or result)
            return result
        if name == "get":
            if cell.vals is None:
                # Never-written container: a lookup can only miss.
                return args[1] if len(args) > 1 else const(None)
            result = cell.read()
            if len(args) > 1:
                result = (join(result, args[1]) or result)
            return result
        if name == "keys":
            return AV("iterable", payload=cell.read_keys())
        if name == "values":
            return AV("iterable", payload=cell.read())
        if name == "items":
            pair = AV("tuple", items=(cell.read_keys(), cell.read()))
            return AV("iterable", payload=pair)
        if name == "copy":
            return AV("cell", payload=cell)
        if name in ("sort", "reverse", "clear", "remove", "discard"):
            return const(None)
        if name in ("count", "index"):
            return top(cell.read(), *args)
        return top(cell.read(), *args, *kwargs.values())

    def _call_builtin(self, name: str, args: List[AV],
                      kwargs: Dict[str, AV]) -> AV:
        first = args[0] if args else None
        if name == "range":
            return AV("iterable", payload=top(*args))
        if name in ("list", "tuple", "sorted"):
            if first is None:
                return AV("cell", payload=Cell(name))
            if name == "tuple" and first.kind == "tuple":
                return first
            cell = Cell(name)
            cell.write(self.iter_elem(first), self.in_loop())
            return AV("cell", payload=cell)
        if name in ("set", "frozenset"):
            cell = Cell(name, is_set=True)
            if first is not None:
                cell.write(self.iter_elem(first), self.in_loop())
            return AV("cell", payload=cell)
        if name == "dict":
            cell = Cell("dict")
            for key, value in kwargs.items():
                cell.write(value, self.in_loop(), key=const(key))
            if first is not None:
                cell.write(self.iter_elem(first), self.in_loop())
            return AV("cell", payload=cell)
        if name == "enumerate":
            elem = self.iter_elem(first) if first is not None else top()
            return AV("iterable",
                      payload=AV("tuple", items=(top(), elem)))
        if name == "zip":
            items = tuple(self.iter_elem(a) for a in args)
            return AV("iterable", payload=AV("tuple", items=items))
        if name in ("iter", "reversed", "map", "filter"):
            source = args[-1] if args else None
            elem = self.iter_elem(source) if source is not None else top()
            return AV("iterable", payload=elem)
        if name == "next":
            return self.iter_elem(first) if first is not None else top()
        if name in ("min", "max", "sum"):
            flat = [self.iter_elem(a) if a.kind in ("cell", "iterable")
                    else a for a in args]
            return top(*flat)
        if name in ("isinstance", "hasattr", "any", "all", "bool"):
            flat = [self.iter_elem(a) if a.kind in ("cell", "iterable")
                    else a for a in args]
            return top(*flat)
        if name in ("len", "abs", "int", "float", "str", "round", "repr",
                    "hash", "id"):
            if name == "len" and first is not None:
                return top().with_flags_of(first)
            if first is not None and first.is_const and name in (
                    "int", "float", "str", "abs", "bool"):
                try:
                    caster = {"int": int, "float": float, "str": str,
                              "abs": abs, "bool": bool}[name]
                    return const(caster(first.const)).with_flags_of(first)
                except Exception:
                    pass
            return top(*args)
        if name == "divmod":
            return AV("tuple", items=(top(*args), top(*args)))
        if name == "print":
            return const(None)
        if name == "getattr":
            return top(*args)
        return top(*args, *kwargs.values())

    def _instantiate(self, cls: ClassVal, args: List[AV],
                     kwargs: Dict[str, AV], node) -> AV:
        site = (self.cur_file(), getattr(node, "lineno", 0))
        cache_key = (id(cls.node), site)
        cached = self._objcache.get(cache_key)
        if cached is not None:
            obj_av = cached
            obj = obj_av.payload
        else:
            obj = ObjVal(cls)
            obj_av = AV("obj", payload=obj)
            self._objcache[cache_key] = obj_av
        methods = cls.methods()
        if "__init__" in methods:
            init = AV("func", payload=FuncVal(methods["__init__"],
                                              cls.closure, cls.module,
                                              bound=obj))
            self.call_function(init, args, kwargs, site=site)
            return obj_av
        # Dataclass-style: bind declared fields positionally/by keyword,
        # falling back on declared defaults.
        fields = cls.fields()
        for idx, (name, default) in enumerate(fields):
            if idx < len(args):
                obj.attr_cell(name).write(args[idx], self.in_loop())
            elif name in kwargs:
                obj.attr_cell(name).write(kwargs[name], self.in_loop())
            else:
                obj.attr_cell(name).write(
                    self._field_default(cls, default), self.in_loop())
        return obj_av

    def _field_default(self, cls: ClassVal,
                       default: Optional[ast.expr]) -> AV:
        if default is None:
            return top()
        if isinstance(default, ast.Call) and \
                _call_name(default.func) == "field":
            for kw in default.keywords:
                if kw.arg == "default":
                    folded = fold_const(kw.value, cls.module.consts)
                    return folded if folded is not None else top()
                if kw.arg == "default_factory":
                    name = _call_name(kw.value) if isinstance(
                        kw.value, (ast.Name, ast.Attribute)) else ""
                    if name in ("list", "dict", "set", "tuple"):
                        return AV("cell", payload=Cell(name,
                                  is_set=(name == "set")))
                    return top()
            return top()
        folded = fold_const(default, cls.module.consts)
        return folded if folded is not None else top()


def _fold_compare(op: ast.cmpop, left: Any, right: Any) -> Optional[bool]:
    try:
        if isinstance(op, ast.Eq):
            return bool(left == right)
        if isinstance(op, ast.NotEq):
            return bool(left != right)
        if isinstance(op, ast.Is):
            return left is right
        if isinstance(op, ast.IsNot):
            return left is not right
        if isinstance(op, ast.Lt):
            return bool(left < right)
        if isinstance(op, ast.LtE):
            return bool(left <= right)
        if isinstance(op, ast.Gt):
            return bool(left > right)
        if isinstance(op, ast.GtE):
            return bool(left >= right)
        if isinstance(op, ast.In):
            return bool(left in right)
        if isinstance(op, ast.NotIn):
            return bool(left not in right)
    except Exception:
        return None
    return None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def analyze_app(modset: ModuleSet, app: str, variant: str) -> Skeleton:
    """Interpret one registered app/variant into its static skeleton."""
    entry = modset.registry.get((app, variant))
    if entry is None:
        raise KeyError(f"no register_app entry for {app}/{variant}")
    skeleton = Skeleton(app=app, variant=variant,
                        timing_dependent=entry.timing_dependent)
    interp = Interpreter(modset, skeleton)
    interp.module_stack.append(entry.module)
    try:
        builder = interp.eval(entry.builder, ({},))
        cfg = _abstract_config(interp, builder)
        cfg_args = [cfg] if cfg is not None else []
        main_av = interp.call_function(builder, cfg_args, {}, guard=False)
    except _Budget:
        skeleton.incomplete = True
        skeleton.notes.append("interpretation budget exhausted in builder")
        return skeleton
    except Exception as err:
        skeleton.incomplete = True
        skeleton.notes.append(f"builder interpretation failed: {err}")
        return skeleton
    finally:
        if interp.module_stack:
            interp.module_stack.pop()

    interp.module_stack.append(entry.module)
    interp.run_proc("main", main_av, daemon=False)
    interp.drain_spawns()
    interp.module_stack.pop()
    return skeleton


def _abstract_config(interp: Interpreter, builder: AV) -> Optional[AV]:
    """Abstract config object from the builder's first parameter
    annotation — a dataclass whose *declared defaults* are the bench
    ground truth the analyzer needs (``real_data=False`` etc.)."""
    if builder.kind != "func":
        return top()
    fv: FuncVal = builder.payload
    node = fv.node
    if isinstance(node, ast.Lambda) or not node.args.args:
        return top()
    annotation = node.args.args[0].annotation
    name = None
    if isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Attribute):
        name = annotation.attr
    elif isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        name = annotation.value
    if name is None:
        return top()
    resolved = interp.modset.resolve(fv.module, name)
    if resolved is None or resolved.kind != "class":
        return top()
    cls: ClassVal = resolved.payload
    obj = ObjVal(cls)
    for field_name, default in cls.fields():
        obj.attr_cell(field_name).write(
            interp._field_default(cls, default), in_loop=False)
    return AV("obj", payload=obj)
