"""Blocking client for the simulation service — stdlib sockets only.

Host-side tooling (CLI, tests, benchmarks): nothing here runs inside a
simulated process, so real sockets are the point.  One request per
connection, matching the server's ``Connection: close`` discipline.

The address string is either ``host:port`` or ``unix:/path/to.sock``.
:meth:`ServeClient.stream` yields each JSON-lines record as it arrives
on the wire, so callers observe per-point results incrementally::

    client = ServeClient("127.0.0.1:8642")
    job = client.submit({"app": "water", "kind": "sweep"})
    for record in client.stream(job["id"]):
        print(record)

:func:`merge_grid` folds a complete record stream back into the exact
:class:`~repro.experiments.runner.SpeedupGrid` a direct
``Sweeper(workers=N)`` run would have produced — same float
expressions, same insertion order — which is what the byte-identity
test pins.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..experiments.runner import GridPoint, SpeedupGrid


class ServeError(Exception):
    """A typed error response (or transport failure) from the service."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


def _parse_address(address: str) -> Tuple[str, Any]:
    if address.startswith("unix:"):
        return ("unix", address[len("unix:"):])
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(f"bad address {address!r} "
                         f"(want host:port or unix:/path)")
    return ("tcp", (host, int(port)))


class ServeClient:
    """Thin blocking HTTP client bound to one server address."""

    def __init__(self, address: str, timeout: float = 60.0) -> None:
        self.kind, self.target = _parse_address(address)
        self.address = address
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX,  # lint: ignore[blocking-call]
                                 socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.target)
            return sock
        # Host-side client code: blocking on the service socket is the job.
        return socket.create_connection(  # lint: ignore[blocking-call]
            self.target, timeout=self.timeout)

    def _request_raw(self, method: str, path: str,
                     payload: Any = None) -> Tuple[int, Any]:
        """Send one request; return ``(status, buffered reader)``."""
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
        host = self.target[0] if self.kind == "tcp" else "localhost"
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        sock = self._connect()
        try:
            sock.sendall(head.encode("latin-1") + body)
            reader = sock.makefile("rb")
        except Exception:
            sock.close()
            raise
        status_line = reader.readline().decode("latin-1")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            reader.close()
            sock.close()
            raise ServeError(0, "protocol", f"bad status line {status_line!r}")
        status = int(parts[1])
        while True:                      # headers; close semantics only
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return status, (sock, reader)

    def _request(self, method: str, path: str, payload: Any = None) -> Any:
        """One request -> parsed JSON body; typed ServeError on 4xx/5xx."""
        status, (sock, reader) = self._request_raw(method, path, payload)
        try:
            raw = reader.read()
        finally:
            reader.close()
            sock.close()
        doc = json.loads(raw.decode()) if raw.strip() else None
        if status >= 400:
            err = (doc or {}).get("error", {})
            raise ServeError(status, err.get("code", "unknown"),
                             err.get("message", raw.decode(errors="replace")))
        return doc

    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job; returns its status object (with ``id``)."""
        return self._request("POST", "/jobs", payload=spec)["job"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield result records as they arrive, ending after ``end``."""
        status, (sock, reader) = self._request_raw(
            "GET", f"/jobs/{job_id}/stream")
        try:
            if status >= 400:
                raw = reader.read()
                doc = json.loads(raw.decode()) if raw.strip() else {}
                err = doc.get("error", {})
                raise ServeError(status, err.get("code", "unknown"),
                                 err.get("message", "stream refused"))
            for line in reader:
                if not line.strip():
                    continue
                record = json.loads(line.decode())
                yield record
                if record.get("kind") == "end":
                    return
        finally:
            reader.close()
            sock.close()

    def submit_and_stream(self, spec: Dict[str, Any]
                          ) -> Iterator[Dict[str, Any]]:
        job = self.submit(spec)
        return self.stream(job["id"])


# ----------------------------------------------------------------------
# Merging streamed records back into Sweeper-shaped results
# ----------------------------------------------------------------------
def merge_grid(records: Iterable[Dict[str, Any]]) -> SpeedupGrid:
    """Fold one complete job stream into a :class:`SpeedupGrid`.

    Point insertion follows the spec's serial iteration order (``for lat
    in latencies for bw in bandwidths``) and the speedup expression is
    the Sweeper's own ``100.0 * base / runtime``, so the merged grid is
    byte-identical — ``repr``-equal, point for point — to a direct
    ``Sweeper(workers=N).speedup_grid(...)`` on the same inputs.
    """
    spec: Optional[Dict[str, Any]] = None
    baseline: Optional[float] = None
    runtimes: Dict[Tuple[float, float], float] = {}
    final: Optional[Dict[str, Any]] = None
    for record in records:
        kind = record.get("kind")
        if kind == "job":
            spec = record["spec"]
        elif kind == "baseline":
            baseline = float(record["runtime"])
        elif kind == "point":
            if record.get("ok") is False:
                raise ServeError(0, record.get("error", "point-failed"),
                                 record.get("detail", "point failed"))
            runtimes[(record["bandwidth_mbyte_s"],
                      record["latency_ms"])] = float(record["runtime"])
        elif kind == "end":
            final = record
    if spec is None or final is None:
        raise ServeError(0, "incomplete-stream",
                         "stream ended without job header or end record")
    if final["state"] != "done":
        raise ServeError(0, f"job-{final['state']}",
                         final.get("error", f"job ended {final['state']}"))
    if baseline is None:
        raise ServeError(0, "incomplete-stream", "no baseline record")
    grid = SpeedupGrid(app=spec["app"], variant=spec["variant"],
                       baseline_runtime=baseline)
    for lat in spec["latencies"]:
        for bw in spec["bandwidths"]:
            runtime = runtimes[(bw, lat)]
            grid.points[(bw, lat)] = GridPoint(
                bandwidth_mbyte_s=bw, latency_ms=lat, runtime=runtime,
                relative_speedup_pct=100.0 * baseline / runtime)
    return grid
