"""Job schema of the simulation service: specs, states, typed errors.

A *job* is one sweep-shaped request: an application variant, a seed, a
(bandwidth x latency) grid, an optional fault plan, and an execution
kind.  Jobs arrive as JSON (see docs/serve.md for the wire format), are
validated into a frozen :class:`JobSpec`, and are content-hashed so that
identical requests — across connections, users, and server restarts —
dedup against the same on-disk :class:`~repro.experiments.cache.SimCache`
entries.

Kinds:

``sweep``
    Ground-truth simulation of every grid point plus the all-Myrinet
    baseline; per-point relative speedups exactly as
    :class:`~repro.experiments.runner.Sweeper` computes them.
``whatif``
    The record-once analytic fast path (:mod:`repro.whatif`): corner
    validation + evaluated grid, one worker task for the whole grid.
``replay``
    The compiled vectorized fast path (:mod:`repro.replay`): the
    recorded DAG is compiled to a flat event program (content-addressed
    into the cache, so a warm server prices without re-recording) and
    the grid is priced in one numpy pass, with the same corner
    validation and automatic downgrade ladder as ``whatif``.
``chaos``
    Per-point runs under the job's :class:`~repro.faults.plan.FaultPlan`
    with the ``max_events`` budget enforced; results report survival and
    fault-recovery cost instead of speedups.
``profile``
    Per-point causal profiles (:mod:`repro.critpath`): wall time plus
    the 14-bucket attribution.

Content addressing: the job hash covers ``(kind, app, variant, scale,
seed, grid, cluster shape, FaultPlan, engine version)``.  Per *point*,
clean sweep points reuse the exact
:func:`~repro.experiments.runner.point_key` the :class:`Sweeper` uses —
so service traffic and CLI sweeps share one cache population — while
fault-bearing, predicted, and profile points append a kind + plan +
engine-version suffix so they can never collide with ground truth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__ as ENGINE_VERSION
from ..experiments import grids
from ..experiments.runner import baseline_key, point_key

#: Legal job kinds, in documentation order.
KINDS: Tuple[str, ...] = ("sweep", "whatif", "replay", "chaos", "profile")

#: Job lifecycle states (see docs/serve.md for the transition diagram).
QUEUED = "queued"
RUNNING = "running"
PARTIAL = "partial"        # running, with at least one point streamed
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)


class JobError(Exception):
    """Base of every typed service error; carries an HTTP status + code."""

    status = 500
    code = "internal"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def to_json(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message}}


class InvalidJob(JobError):
    """The submission is malformed: bad JSON shape, field, or value."""

    status = 400
    code = "invalid-job"


class AdmissionError(JobError):
    """The server refused the job: queue full or budget exceeded."""

    status = 429
    code = "admission"


class UnknownJob(JobError):
    """No job with the requested id."""

    status = 404
    code = "unknown-job"


# ----------------------------------------------------------------------
# Fault sub-schema
# ----------------------------------------------------------------------
_FAULT_FIELDS = {"loss", "max_retries", "no_transport"}


def _canonical_faults(raw: Any) -> Optional[Dict[str, Any]]:
    """Validate and canonicalize the ``faults`` object of a submission.

    The wire format is a small declarative subset of
    :class:`~repro.faults.plan.FaultPlan`: uniform WAN packet loss plus
    transport knobs.  Canonical form drops defaults so that equivalent
    requests hash identically.
    """
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise InvalidJob(f"faults must be an object, got {type(raw).__name__}")
    unknown = set(raw) - _FAULT_FIELDS
    if unknown:
        raise InvalidJob(f"unknown faults field(s): {sorted(unknown)} "
                         f"(known: {sorted(_FAULT_FIELDS)})")
    out: Dict[str, Any] = {}
    loss = raw.get("loss", 0.0)
    if not isinstance(loss, (int, float)) or not 0.0 <= float(loss) <= 1.0:
        raise InvalidJob(f"faults.loss must be a probability in [0, 1], "
                         f"got {loss!r}")
    if loss:
        out["loss"] = float(loss)
    retries = raw.get("max_retries", 10)
    if not isinstance(retries, int) or retries < 0:
        raise InvalidJob(f"faults.max_retries must be a non-negative int, "
                         f"got {retries!r}")
    if retries != 10:
        out["max_retries"] = retries
    if raw.get("no_transport"):
        out["no_transport"] = True
    return out or None


def build_fault_plan(canonical: Optional[Dict[str, Any]]):
    """Rebuild the :class:`~repro.faults.plan.FaultPlan` a canonical
    faults dict describes (None for a clean run)."""
    if not canonical:
        return None
    from ..faults.plan import (ALL_WAN, FaultPlan, PacketLoss,
                               TransportConfig)

    transport = None if canonical.get("no_transport") else TransportConfig(
        max_retries=canonical.get("max_retries", 10))
    loss = ()
    if canonical.get("loss"):
        loss = (PacketLoss(ALL_WAN, canonical["loss"]),)
    return FaultPlan(loss=loss, transport=transport)


# ----------------------------------------------------------------------
# JobSpec
# ----------------------------------------------------------------------
_SPEC_FIELDS = {"kind", "app", "variant", "scale", "seed", "bandwidths",
                "latencies", "clusters", "cluster_size", "wan_shape",
                "faults", "max_events", "tags"}


def _grid_axis(raw: Any, name: str) -> Tuple[float, ...]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise InvalidJob(f"{name} must be a non-empty array of numbers")
    out = []
    for value in raw:
        if not isinstance(value, (int, float)) or value <= 0:
            raise InvalidJob(f"{name} entries must be positive numbers, "
                             f"got {value!r}")
        out.append(float(value))
    if len(set(out)) != len(out):
        raise InvalidJob(f"{name} contains duplicate values")
    return tuple(out)


@dataclass(frozen=True)
class JobSpec:
    """A validated, immutable, content-addressable job description."""

    kind: str
    app: str
    variant: str
    scale: str
    seed: int
    bandwidths: Tuple[float, ...]
    latencies: Tuple[float, ...]
    clusters: int = grids.NUM_CLUSTERS
    cluster_size: int = grids.CLUSTER_SIZE
    wan_shape: str = "full"
    faults: Optional[Tuple[Tuple[str, Any], ...]] = None
    max_events: Optional[int] = None
    tags: Tuple[Tuple[str, str], ...] = ()

    # ------------------------------------------------------------------
    @staticmethod
    def from_json(payload: Any) -> "JobSpec":
        """Validate one submission object into a spec (typed errors)."""
        if not isinstance(payload, dict):
            raise InvalidJob(
                f"job must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - _SPEC_FIELDS
        if unknown:
            raise InvalidJob(f"unknown field(s): {sorted(unknown)} "
                             f"(known: {sorted(_SPEC_FIELDS)})")

        kind = payload.get("kind", "sweep")
        if kind not in KINDS:
            raise InvalidJob(f"unknown kind {kind!r} (one of {list(KINDS)})")

        app = payload.get("app")
        variant = payload.get("variant", "optimized")
        if app == "fft" and "variant" not in payload:
            variant = "unoptimized"   # FFT has no optimized variant
        from ..apps import get_builder
        try:
            get_builder(app, variant)
        except (ValueError, TypeError) as exc:
            raise InvalidJob(str(exc)) from None

        scale = payload.get("scale", "bench")
        if scale not in ("paper", "bench"):
            raise InvalidJob(f"scale must be 'paper' or 'bench', got {scale!r}")

        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or seed < 0:
            raise InvalidJob(f"seed must be a non-negative int, got {seed!r}")

        bandwidths = _grid_axis(
            payload.get("bandwidths", list(grids.BANDWIDTHS_MBYTE_S)),
            "bandwidths")
        latencies = _grid_axis(
            payload.get("latencies", list(grids.LATENCIES_MS)), "latencies")

        clusters = payload.get("clusters", grids.NUM_CLUSTERS)
        cluster_size = payload.get("cluster_size", grids.CLUSTER_SIZE)
        for name, value in (("clusters", clusters),
                            ("cluster_size", cluster_size)):
            if not isinstance(value, int) or value < 1:
                raise InvalidJob(f"{name} must be a positive int, got {value!r}")
        if clusters < 2:
            raise InvalidJob("clusters must be >= 2 (a one-cluster machine "
                             "has no WAN to sweep)")

        wan_shape = payload.get("wan_shape", "full")
        if wan_shape not in ("full", "star", "ring"):
            raise InvalidJob(f"wan_shape must be full/star/ring, "
                             f"got {wan_shape!r}")

        if kind in ("whatif", "replay") and (
                clusters, cluster_size, wan_shape) != (
                grids.NUM_CLUSTERS, grids.CLUSTER_SIZE, "full"):
            raise InvalidJob(
                f"{kind} jobs run on the paper's 4x8 full-mesh shape only "
                f"(the record-once pipeline validates against its corners)")

        faults = _canonical_faults(payload.get("faults"))
        if kind == "chaos" and faults is None:
            raise InvalidJob("chaos jobs need a faults object "
                             "(e.g. {\"loss\": 0.01})")
        if kind in ("whatif", "replay") and faults is not None:
            raise InvalidJob(
                f"{kind} jobs cannot carry faults: recorded DAGs do not "
                f"model the plan's seeded loss or retransmission")

        max_events = payload.get("max_events")
        if max_events is not None and (
                not isinstance(max_events, int) or max_events < 1):
            raise InvalidJob(f"max_events must be a positive int, "
                             f"got {max_events!r}")

        tags = payload.get("tags", {})
        if not isinstance(tags, dict) or \
                not all(isinstance(k, str) and isinstance(v, str)
                        for k, v in tags.items()):
            raise InvalidJob("tags must be an object of string -> string")

        return JobSpec(
            kind=kind, app=app, variant=variant, scale=scale, seed=seed,
            bandwidths=bandwidths, latencies=latencies, clusters=clusters,
            cluster_size=cluster_size, wan_shape=wan_shape,
            faults=tuple(sorted(faults.items())) if faults else None,
            max_events=max_events,
            tags=tuple(sorted(tags.items())))

    # ------------------------------------------------------------------
    @property
    def faults_dict(self) -> Optional[Dict[str, Any]]:
        return dict(self.faults) if self.faults else None

    def fault_plan(self):
        return build_fault_plan(self.faults_dict)

    def canonical(self) -> Dict[str, Any]:
        """JSON-able canonical form: sorted keys, engine version pinned."""
        out: Dict[str, Any] = {
            "kind": self.kind,
            "app": self.app,
            "variant": self.variant,
            "scale": self.scale,
            "seed": self.seed,
            "bandwidths": list(self.bandwidths),
            "latencies": list(self.latencies),
            "clusters": self.clusters,
            "cluster_size": self.cluster_size,
            "wan_shape": self.wan_shape,
            "engine": ENGINE_VERSION,
        }
        if self.faults:
            out["faults"] = self.faults_dict
        if self.max_events is not None:
            out["max_events"] = self.max_events
        if self.tags:
            out["tags"] = dict(self.tags)
        return out

    def content_hash(self) -> str:
        """SHA-256 over the canonical form (incl. engine version)."""
        blob = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    # ------------------------------------------------------------------
    def points(self) -> List[Tuple[float, float]]:
        """Grid points in the Sweeper's serial iteration order."""
        return [(bw, lat) for lat in self.latencies for bw in self.bandwidths]

    @property
    def num_ranks(self) -> int:
        return self.clusters * self.cluster_size

    @property
    def needs_baseline(self) -> bool:
        """Sweep-like kinds report speedups, which need the baseline."""
        return self.kind in ("sweep", "whatif", "replay")

    def total_points(self) -> int:
        """Units of simulation work the job will schedule (incl. baseline)."""
        return len(self.points()) + (1 if self.needs_baseline else 0)

    # ------------------------------------------------------------------
    def _key_suffix(self) -> str:
        """Extra identity for points whose result depends on more than
        the topology: kind, fault plan, and engine version."""
        extra = {"kind": self.kind, "engine": ENGINE_VERSION}
        if self.faults:
            extra["faults"] = self.faults_dict
        if self.kind == "chaos" and self.max_events is not None:
            extra["max_events"] = self.max_events
        blob = json.dumps(extra, sort_keys=True)
        return "-" + self.kind + hashlib.sha256(blob.encode()).hexdigest()[:12]

    def cache_key(self, bandwidth_mbyte_s: Optional[float],
                  latency_ms: Optional[float]) -> str:
        """Content-addressed cache key for one of this job's points.

        ``(None, None)`` selects the baseline point.  Clean sweep points
        (and their baseline) are *exactly* the Sweeper's keys, so service
        traffic deduplicates against command-line sweeps; every other
        point carries the kind/faults/engine suffix.
        """
        if bandwidth_mbyte_s is None or latency_ms is None:
            base = baseline_key(self.app, self.variant, self.scale, self.seed,
                                self.num_ranks)
        else:
            base = point_key(self.app, self.variant, self.scale, self.seed,
                             bandwidth_mbyte_s, latency_ms, self.clusters,
                             self.cluster_size, self.wan_shape)
        if self.kind == "sweep" and not self.faults:
            return base
        if self.kind in ("whatif", "replay") and (
                bandwidth_mbyte_s is None or latency_ms is None):
            return base    # these baselines are plain clean simulations
        return base + self._key_suffix()

    def point_payload(self, bandwidth_mbyte_s: Optional[float],
                      latency_ms: Optional[float]) -> Dict[str, Any]:
        """Picklable work order for :func:`repro.serve.worker.run_point`."""
        return {
            "kind": "baseline" if bandwidth_mbyte_s is None else self.kind,
            "app": self.app,
            "variant": self.variant,
            "scale": self.scale,
            "seed": self.seed,
            "bandwidth_mbyte_s": bandwidth_mbyte_s,
            "latency_ms": latency_ms,
            "clusters": self.clusters,
            "cluster_size": self.cluster_size,
            "wan_shape": self.wan_shape,
            "faults": self.faults_dict,
            "max_events": self.max_events,
        }


# ----------------------------------------------------------------------
# Job: one accepted submission and its accumulated results
# ----------------------------------------------------------------------
@dataclass
class Job:
    """Mutable lifecycle record the scheduler drives through the states."""

    id: str
    spec: JobSpec
    state: str = QUEUED
    #: streamed records, in emission order (replayed to late subscribers)
    results: List[Dict[str, Any]] = field(default_factory=list)
    points_total: int = 0
    points_done: int = 0
    cache_hits: int = 0
    dispatched: int = 0
    failed_points: int = 0
    error: Optional[str] = None
    #: host wall seconds from RUNNING to terminal (for points/s metrics)
    wall_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.points_done if self.points_done else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able status for ``GET /jobs/<id>`` and run reports."""
        out = {
            "id": self.id,
            "state": self.state,
            "kind": self.spec.kind,
            "app": self.spec.app,
            "variant": self.spec.variant,
            "scale": self.spec.scale,
            "seed": self.spec.seed,
            "content_hash": self.spec.content_hash(),
            "points_total": self.points_total,
            "points_done": self.points_done,
            "cache_hits": self.cache_hits,
            "dispatched": self.dispatched,
            "failed_points": self.failed_points,
            "hit_rate": self.hit_rate,
        }
        if self.error:
            out["error"] = self.error
        if self.wall_s:
            out["wall_s"] = self.wall_s
        if self.spec.tags:
            out["tags"] = dict(self.spec.tags)
        return out
