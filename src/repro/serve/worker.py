"""Pool-side execution of one unit of servable work.

These functions run inside the scheduler's persistent
:class:`~concurrent.futures.ProcessPoolExecutor`.  They are module-level
(picklable), take one plain-dict payload built by
:meth:`repro.serve.jobs.JobSpec.point_payload`, and return a plain-dict
record — the exact JSON object that ends up in the cache and on the
job's result stream.  No reporter/bus state leaks across the process
boundary: pool runs never emit per-run report records (matching
``Sweeper(workers=N)`` semantics); the serve layer emits per-*job*
records instead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..experiments import grids
from .jobs import build_fault_plan


def _topology(payload: Dict[str, Any]):
    if payload["bandwidth_mbyte_s"] is None or payload["latency_ms"] is None:
        return grids.baseline(payload["clusters"] * payload["cluster_size"])
    return grids.multi_cluster(
        payload["bandwidth_mbyte_s"], payload["latency_ms"],
        payload["clusters"], payload["cluster_size"], payload["wan_shape"])


def run_point(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one point; dispatch on the payload's kind.

    Returns a JSON-able record.  ``chaos`` failures (typed transport /
    deadlock / event-budget errors) are *results*, not exceptions — the
    job keeps streaming its other points.  Any other exception
    propagates and fails the point.
    """
    kind = payload["kind"]
    if kind == "profile":
        return _run_profile(payload)
    if kind == "chaos":
        return _run_chaos(payload)
    return _run_clean(payload)


def _run_clean(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Ground-truth simulation of one (possibly degraded) point."""
    from ..apps import default_config, run_app

    faults = build_fault_plan(payload.get("faults"))
    topo = _topology(payload)
    config = default_config(payload["app"], payload["scale"])
    result = run_app(payload["app"], payload["variant"], topo, config=config,
                     seed=payload["seed"], faults=faults,
                     max_events=payload.get("max_events"))
    return {
        "runtime": result.runtime,
        "engine_events": result.machine.engine.events_processed,
    }


def _run_chaos(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One run under the job's fault plan; survival is the result."""
    from ..apps import default_config, run_app
    from ..runtime.machine import DeadlockError
    from ..runtime.transport import TransportError

    faults = build_fault_plan(payload.get("faults"))
    topo = _topology(payload)
    config = default_config(payload["app"], payload["scale"])
    try:
        result = run_app(payload["app"], payload["variant"], topo,
                         config=config, seed=payload["seed"], faults=faults,
                         max_events=payload.get("max_events"))
    except (TransportError, DeadlockError, TimeoutError) as exc:
        return {"ok": False, "error": type(exc).__name__, "detail": str(exc)}
    summary = result.traffic_summary()
    record: Dict[str, Any] = {
        "ok": True,
        "runtime": result.runtime,
        "engine_events": result.machine.engine.events_processed,
    }
    if "faults" in summary:
        record["faults"] = summary["faults"]
    return record


def _run_profile(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One causal-profile run: wall time + 14-bucket attribution."""
    from ..critpath.profile import profile_app

    faults = build_fault_plan(payload.get("faults"))
    topo = _topology(payload)
    result, profile = profile_app(payload["app"], payload["variant"], topo,
                                  scale=payload["scale"],
                                  seed=payload["seed"], faults=faults)
    return {
        "runtime": result.runtime,
        "buckets": profile.run_buckets,
        "dominant_bucket": profile.dominant_bucket(exclude=("compute",)),
        "max_residual_s": profile.max_residual(),
    }


def run_whatif_grid(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The record-once fast path for a whole grid, as one pool task.

    Reuses :class:`~repro.experiments.runner.Sweeper` with
    ``predict=True`` so corner validation, fallback policy, and baseline
    handling are byte-for-byte the CLI's.  ``cache_root`` (when set)
    points at the server's cache so the corner ground-truth simulations
    dedup with everything else.
    """
    from ..experiments.cache import SimCache
    from ..experiments.runner import Sweeper

    cache = SimCache(payload["cache_root"]) if payload.get("cache_root") \
        else None
    sweeper = Sweeper(scale=payload["scale"], seed=payload["seed"],
                      predict=True, cache=cache)
    grid = sweeper.speedup_grid(payload["app"], payload["variant"],
                                bandwidths=payload["bandwidths"],
                                latencies=payload["latencies"])
    points: List[Dict[str, Any]] = []
    for (bw, lat), point in grid.points.items():
        points.append({
            "bandwidth_mbyte_s": bw,
            "latency_ms": lat,
            "runtime": point.runtime,
        })
    out: Dict[str, Any] = {
        "baseline": grid.baseline_runtime,
        "predicted": grid.predicted,
        "points": points,
    }
    report = grid.validation
    if report is not None and getattr(report, "fallback", False):
        out["fallback_reason"] = getattr(report, "reason", "") or \
            "validation error above tolerance"
    return out


def run_replay_grid(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The compiled vectorized fast path for a whole grid, one pool task.

    Reuses :class:`~repro.experiments.runner.Sweeper` with
    ``backend="replay"`` so the probe, the downgrade ladder, corner
    validation, and baseline handling are byte-for-byte the CLI's.  With
    ``cache_root`` set, the compiled program itself is content-addressed
    into the server's cache — the next job for the same recording skips
    recording *and* compilation and goes straight to pricing.
    """
    from ..experiments.cache import SimCache
    from ..experiments.runner import Sweeper

    cache = SimCache(payload["cache_root"]) if payload.get("cache_root") \
        else None
    sweeper = Sweeper(scale=payload["scale"], seed=payload["seed"],
                      backend="replay", cache=cache)
    grid = sweeper.speedup_grid(payload["app"], payload["variant"],
                                bandwidths=payload["bandwidths"],
                                latencies=payload["latencies"])
    points: List[Dict[str, Any]] = []
    for (bw, lat), point in grid.points.items():
        points.append({
            "bandwidth_mbyte_s": bw,
            "latency_ms": lat,
            "runtime": point.runtime,
        })
    out: Dict[str, Any] = {
        "baseline": grid.baseline_runtime,
        "predicted": grid.predicted,
        "mode": grid.backend,
        "points": points,
    }
    if grid.replay is not None:
        out["probe"] = grid.replay.summary()
    if grid.convergence is not None:
        out["convergence"] = grid.convergence.summary()
    if grid.downgraded_points:
        out["downgraded_points"] = [list(p) for p in grid.downgraded_points]
    report = grid.validation
    if report is not None and getattr(report, "fallback", False):
        out["fallback_reason"] = getattr(report, "reason", "") or \
            "validation error above tolerance"
    return out
