"""Async job queue: admission, sharding, dedup, and streaming.

The :class:`Scheduler` is the service's core loop, independent of any
transport (the HTTP front end in :mod:`repro.serve.server` is one thin
client of it; tests drive it directly):

- **Admission** — submissions pass an :class:`AdmissionPolicy` before
  they exist: queue depth, concurrent-job, and per-job point budgets,
  each rejected with a typed
  :class:`~repro.serve.jobs.AdmissionError`.  Point budgets compose with
  the engine's own ``max_events`` guard: every dispatched run carries
  the policy's event budget unless the job asked for a tighter one.
- **Dedup** — each point is content-hashed
  (:meth:`~repro.serve.jobs.JobSpec.cache_key`) into the on-disk
  :class:`~repro.experiments.cache.SimCache`; hits stream back without
  touching the pool, across jobs, users, and server restarts.
- **Sharding** — misses fan out over one persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` shared by every job,
  so a long sweep and a one-point probe interleave at point granularity.
- **Streaming** — results are emitted as they land; subscribers attach
  at any time and first replay the job's history, so a stream observed
  end-to-end is complete regardless of when it was opened.

One emitted record is one JSON object (see docs/serve.md for the exact
shapes): a ``job`` header, an optional ``baseline``, one ``point`` per
grid point, and a terminal ``end`` carrying the final state.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, AsyncIterator, Deque, Dict, List, Optional, Set

from ..experiments.cache import SimCache
from ..obs.metrics import MetricsRegistry
from ..obs.report import RunReporter, serve_job_record
from . import worker
from .jobs import (CANCELLED, DONE, FAILED, PARTIAL, QUEUED, RUNNING,
                   AdmissionError, Job, JobSpec, UnknownJob)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Budgets a submission must fit inside to be accepted."""

    #: jobs allowed to sit in the queue + run at once (beyond -> 429)
    max_jobs: int = 16
    #: jobs actively dispatching points at once
    max_concurrent_jobs: int = 2
    #: grid points (incl. baseline) one job may schedule
    max_points_per_job: int = 256
    #: engine event budget forced onto every dispatched run (None = off);
    #: jobs may only tighten it, never exceed it
    max_events_per_point: Optional[int] = 50_000_000

    def admit(self, spec: JobSpec, active_jobs: int) -> None:
        """Raise a typed :class:`AdmissionError` if the job cannot enter."""
        if active_jobs >= self.max_jobs:
            raise AdmissionError(
                f"job queue full ({active_jobs}/{self.max_jobs} jobs "
                f"queued or running); retry after a job finishes")
        points = spec.total_points()
        if points > self.max_points_per_job:
            raise AdmissionError(
                f"job schedules {points} points, over the per-job budget "
                f"of {self.max_points_per_job}; split the grid")
        if (self.max_events_per_point is not None and
                spec.max_events is not None and
                spec.max_events > self.max_events_per_point):
            raise AdmissionError(
                f"max_events {spec.max_events} exceeds the server budget "
                f"of {self.max_events_per_point}")

    def effective_max_events(self, spec: JobSpec) -> Optional[int]:
        """The event budget a dispatched point actually runs under."""
        if spec.max_events is None:
            return self.max_events_per_point
        if self.max_events_per_point is None:
            return spec.max_events
        return min(spec.max_events, self.max_events_per_point)


class Scheduler:
    """Owns the job table, the queue, and the worker pool.

    Single-event-loop discipline: every method is called from the loop
    that ran :meth:`start` (the HTTP handlers and tests do), so no locks
    are needed — emission, subscription, and state transitions are
    atomic between awaits.
    """

    def __init__(self, cache: SimCache,
                 policy: Optional[AdmissionPolicy] = None,
                 workers: int = 2,
                 registry: Optional[MetricsRegistry] = None,
                 reporter: Optional[RunReporter] = None) -> None:
        self.cache = cache
        self.policy = policy or AdmissionPolicy()
        self.workers = workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self.reporter = reporter
        self.jobs: Dict[str, Job] = {}
        self._queue: Deque[str] = deque()
        self._running: Set[str] = set()
        self._tasks: Dict[str, asyncio.Task] = {}
        self._subs: Dict[str, List[asyncio.Queue]] = {}
        self._cancel_events: Dict[str, asyncio.Event] = {}
        self._pool = None
        self._seq = 0
        self._started = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        if self._started:
            return
        # "spawn", not the platform default "fork": forked children would
        # inherit dups of whatever connection sockets happen to be open at
        # first dispatch, and peers would never see EOF after the server
        # closes its side of those connections.
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"))
        self._started = True

    async def stop(self) -> None:
        """Cancel everything in flight and shut the pool down."""
        for job_id in list(self._tasks):
            task = self._tasks[job_id]
            task.cancel()
        for task in list(self._tasks.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._started = False

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> Job:
        """Validate, admit, enqueue; returns the new :class:`Job`.

        Raises :class:`~repro.serve.jobs.InvalidJob` on a malformed
        payload and :class:`~repro.serve.jobs.AdmissionError` when a
        budget says no — both map to typed HTTP rejections upstream.
        """
        if not self._started:
            raise RuntimeError("scheduler not started")
        try:
            spec = JobSpec.from_json(payload)
            active = len(self._queue) + len(self._running)
            self.policy.admit(spec, active)
        except Exception:
            self.registry.counter("serve.jobs.rejected").inc()
            raise
        self._seq += 1
        job = Job(id=f"j{self._seq:04d}-{spec.content_hash()[:8]}", spec=spec)
        job.points_total = spec.total_points()
        self.jobs[job.id] = job
        self._subs[job.id] = []
        self._cancel_events[job.id] = asyncio.Event()
        self._queue.append(job.id)
        self.registry.counter("serve.jobs.submitted").inc()
        self._emit(job, {"kind": "job", "job": job.id,
                         "spec": spec.canonical(),
                         "points": job.points_total})
        self._pump()
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(f"no job {job_id!r}") from None

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; queued jobs finish instantly, running
        jobs stop dispatching and drop their pending points."""
        job = self.get(job_id)
        if job.state in (QUEUED,):
            self._queue.remove(job_id)
            self._finish(job, CANCELLED)
        elif job.state in (RUNNING, PARTIAL):
            self._cancel_events[job_id].set()
        return job

    # ------------------------------------------------------------------
    # Queue pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        while self._queue and \
                len(self._running) < self.policy.max_concurrent_jobs:
            job_id = self._queue.popleft()
            self._running.add(job_id)
            task = asyncio.get_running_loop().create_task(
                self._run_job(self.jobs[job_id]))
            self._tasks[job_id] = task
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.registry.gauge("serve.queue_depth").set(float(len(self._queue)))
        self.registry.gauge("serve.jobs.running").set(
            float(len(self._running)))
        hits = self.registry.counter("serve.points.cache_hits").value
        total = self.registry.counter("serve.points.completed").value
        self.registry.gauge("serve.cache.hit_rate").set(
            hits / total if total else 0.0)

    # ------------------------------------------------------------------
    # Emission / subscription
    # ------------------------------------------------------------------
    def _emit(self, job: Job, record: Dict[str, Any]) -> None:
        job.results.append(record)
        for queue in self._subs.get(job.id, ()):
            queue.put_nowait(record)

    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Replay the job's history, then live-tail until its end record.

        Attaching the queue and snapshotting the history happen in one
        synchronous block, so no record is ever missed or duplicated.
        """
        job = self.get(job_id)
        queue: asyncio.Queue = asyncio.Queue()
        self._subs[job_id].append(queue)
        history = list(job.results)
        try:
            ended = False
            for record in history:
                yield record
                if record.get("kind") == "end":
                    ended = True
            while not ended:
                record = await queue.get()
                yield record
                ended = record.get("kind") == "end"
        finally:
            self._subs[job_id].remove(queue)

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    #: cache-entry metadata (see _stored_record) that must not leak into
    #: streamed point records — "kind" in particular would shadow the
    #: record envelope's own kind.
    _ENTRY_META = ("app", "variant", "scale", "seed", "kind",
                   "bandwidth_mbyte_s", "latency_ms")

    def _point_record(self, job: Job, bw: float, lat: float,
                      result: Dict[str, Any], cached: bool,
                      baseline: Optional[float]) -> Dict[str, Any]:
        record = {"kind": "point", "job": job.id,
                  "bandwidth_mbyte_s": bw, "latency_ms": lat,
                  "cached": cached}
        record.update({key: value for key, value in result.items()
                       if key not in self._ENTRY_META})
        if baseline is not None and "runtime" in result and result["runtime"]:
            # The Sweeper's exact float expression, for byte-identical merges.
            record["relative_speedup_pct"] = \
                100.0 * baseline / result["runtime"]
        return record

    @staticmethod
    def _stored_record(spec: JobSpec, bw: Optional[float],
                       lat: Optional[float],
                       result: Dict[str, Any]) -> Dict[str, Any]:
        """The cache entry for one result: worker output + enough
        metadata for ``python -m repro cache ls`` to attribute it."""
        record: Dict[str, Any] = {
            "app": spec.app, "variant": spec.variant, "scale": spec.scale,
            "seed": spec.seed, "bandwidth_mbyte_s": bw, "latency_ms": lat,
        }
        clean = (spec.kind == "sweep" and not spec.faults) or \
            (spec.kind in ("whatif", "replay") and bw is None)
        if not clean:
            record["kind"] = spec.kind
        record.update(result)
        return record

    def _account_point(self, job: Job, cached: bool, failed: bool = False) -> None:
        reg = self.registry
        job.points_done += 1
        reg.counter("serve.points.completed").inc()
        if cached:
            job.cache_hits += 1
            reg.counter("serve.points.cache_hits").inc()
        if failed:
            job.failed_points += 1
            reg.counter("serve.points.failed").inc()
        if job.state == RUNNING:
            job.state = PARTIAL

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        job.state = state
        job.error = error
        self._emit(job, {"kind": "end", "job": job.id, "state": state,
                         **{k: getattr(job, k) for k in
                            ("points_total", "points_done", "cache_hits",
                             "dispatched", "failed_points")},
                         "hit_rate": job.hit_rate,
                         **({"error": error} if error else {})})
        self.registry.counter(f"serve.jobs.{state}").inc()
        if job.wall_s > 0:
            self.registry.gauge("serve.points_per_s").set(
                job.points_done / job.wall_s)
            self.registry.histogram("serve.job_wall_s").observe(job.wall_s)
        if self.reporter is not None:
            self.reporter.emit(serve_job_record(job.snapshot()))

    def _dispatch(self, payload: Dict[str, Any], job: Job,
                  fn=worker.run_point) -> asyncio.Future:
        payload = dict(payload)
        if payload.get("kind") not in ("whatif-grid", "replay-grid"):
            payload["max_events"] = self.policy.effective_max_events(job.spec)
        job.dispatched += 1
        self.registry.counter("serve.points.dispatched").inc()
        return asyncio.get_running_loop().run_in_executor(self._pool, fn, payload)

    async def _await_or_cancel(self, job: Job, futures: Set[asyncio.Future]):
        """Wait for any future OR a cancel request; returns done set."""
        cancel_event = self._cancel_events[job.id]
        waiter = asyncio.ensure_future(cancel_event.wait())
        try:
            done, _pending = await asyncio.wait(
                set(futures) | {waiter},
                return_when=asyncio.FIRST_COMPLETED)
        finally:
            waiter.cancel()
        return done - {waiter}

    async def _run_job(self, job: Job) -> None:
        # Host wall time of service work, not simulated time.
        started = time.monotonic()  # lint: ignore[wall-clock]
        job.state = RUNNING
        cancel_event = self._cancel_events[job.id]
        try:
            if job.spec.kind in ("whatif", "replay"):
                await self._run_whatif(job)
            else:
                await self._run_pointwise(job)
        except asyncio.CancelledError:
            job.wall_s = time.monotonic() - started  # lint: ignore[wall-clock]
            self._finish(job, CANCELLED, error="server shutdown")
            raise
        except Exception as exc:  # job-level failure: typed record, not a crash
            job.wall_s = time.monotonic() - started  # lint: ignore[wall-clock]
            self._finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            job.wall_s = time.monotonic() - started  # lint: ignore[wall-clock]
            if cancel_event.is_set():
                self._finish(job, CANCELLED)
            elif job.failed_points:
                self._finish(job, FAILED,
                             error=f"{job.failed_points} point(s) failed")
            else:
                self._finish(job, DONE)
        finally:
            self._running.discard(job.id)
            self._tasks.pop(job.id, None)
            self._pump()

    # -- sweep / chaos / profile ---------------------------------------
    async def _run_pointwise(self, job: Job) -> None:
        spec = job.spec
        cancel_event = self._cancel_events[job.id]

        baseline: Optional[float] = None
        if spec.needs_baseline:
            baseline = await self._baseline(job)
            if baseline is None:     # cancelled while simulating it
                return

        pending: Dict[asyncio.Future, tuple] = {}
        for bw, lat in spec.points():
            if cancel_event.is_set():
                break
            key = spec.cache_key(bw, lat)
            entry = self.cache.lookup(key)
            if entry is not None:
                self._account_point(job, cached=True,
                                    failed=entry.get("ok") is False)
                self._emit(job, self._point_record(job, bw, lat, entry,
                                                   cached=True,
                                                   baseline=baseline))
            else:
                future = self._dispatch(spec.point_payload(bw, lat), job)
                pending[future] = (bw, lat, key)
        self._update_gauges()

        while pending and not cancel_event.is_set():
            done = await self._await_or_cancel(job, set(pending))
            for future in done:
                bw, lat, key = pending.pop(future)
                try:
                    result = future.result()
                except Exception as exc:
                    self._account_point(job, cached=False, failed=True)
                    self._emit(job, {"kind": "point", "job": job.id,
                                     "bandwidth_mbyte_s": bw,
                                     "latency_ms": lat, "cached": False,
                                     "ok": False,
                                     "error": type(exc).__name__,
                                     "detail": str(exc)})
                    continue
                self.cache.store(key, self._stored_record(spec, bw, lat,
                                                          result))
                self._account_point(job, cached=False,
                                    failed=result.get("ok") is False)
                self._emit(job, self._point_record(job, bw, lat, result,
                                                   cached=False,
                                                   baseline=baseline))
        for future in pending:      # cancelled: drop undispatched points
            future.cancel()

    async def _baseline(self, job: Job) -> Optional[float]:
        """The all-Myrinet baseline runtime (cached like any point)."""
        spec = job.spec
        key = spec.cache_key(None, None)
        entry = self.cache.lookup(key)
        if entry is not None and "runtime" in entry:
            self._account_point(job, cached=True)
            self._emit(job, {"kind": "baseline", "job": job.id,
                             "runtime": float(entry["runtime"]),
                             "cached": True})
            return float(entry["runtime"])
        future = self._dispatch(spec.point_payload(None, None), job)
        done = await self._await_or_cancel(job, {future})
        if not done:
            future.cancel()
            return None
        result = future.result()
        self.cache.store(key, self._stored_record(spec, None, None, result))
        self._account_point(job, cached=False)
        self._emit(job, {"kind": "baseline", "job": job.id,
                         "runtime": result["runtime"], "cached": False})
        return result["runtime"]

    # -- whatif / replay -------------------------------------------------
    async def _run_whatif(self, job: Job) -> None:
        """Analytic fast paths: one pool task for the whole grid.

        Covers both grid-at-once kinds — ``whatif`` (interpreted
        evaluator) and ``replay`` (compiled vectorized program).  If
        every point *and* the baseline are already cached the task is
        skipped entirely; otherwise its points are stored under their
        content keys so the next identical job is a pure cache job.  A
        ``replay`` job additionally leaves the compiled program itself
        in the cache (stored by the worker's Sweeper), so even a
        cold-cache repeat on a fresh grid skips recording and
        compilation.
        """
        spec = job.spec
        points = spec.points()
        cached_entries = {}
        for bw, lat in points:
            entry = self.cache.lookup(spec.cache_key(bw, lat))
            if entry is None:
                break
            cached_entries[(bw, lat)] = entry
        base_entry = self.cache.lookup(spec.cache_key(None, None))

        if len(cached_entries) == len(points) and base_entry is not None:
            baseline = float(base_entry["runtime"])
            self._account_point(job, cached=True)
            self._emit(job, {"kind": "baseline", "job": job.id,
                             "runtime": baseline, "cached": True})
            for bw, lat in points:
                self._account_point(job, cached=True)
                self._emit(job, self._point_record(
                    job, bw, lat, cached_entries[(bw, lat)], cached=True,
                    baseline=baseline))
            return

        grid_kind = "replay-grid" if spec.kind == "replay" else "whatif-grid"
        grid_fn = worker.run_replay_grid if spec.kind == "replay" \
            else worker.run_whatif_grid
        payload = {"kind": grid_kind, "app": spec.app,
                   "variant": spec.variant, "scale": spec.scale,
                   "seed": spec.seed, "bandwidths": list(spec.bandwidths),
                   "latencies": list(spec.latencies),
                   "cache_root": self.cache.root}
        future = self._dispatch(payload, job, fn=grid_fn)
        done = await self._await_or_cancel(job, {future})
        if not done:
            future.cancel()
            return
        result = future.result()
        if spec.kind == "replay":
            # replay.* metrics: one count per fallback-ladder rung, so a
            # dashboard shows how much traffic actually vectorizes.
            self.registry.counter("replay.jobs").inc()
            self.registry.counter(
                f"replay.mode.{result.get('mode', 'unknown')}").inc()
        baseline = result["baseline"]
        self.cache.store(spec.cache_key(None, None),
                         self._stored_record(spec, None, None,
                                             {"runtime": baseline}))
        self._account_point(job, cached=False)
        record = {"kind": "baseline", "job": job.id, "runtime": baseline,
                  "cached": False}
        if "fallback_reason" in result:
            record["fallback_reason"] = result["fallback_reason"]
        record["predicted"] = result["predicted"]
        for extra in ("mode", "probe", "convergence", "downgraded_points"):
            if extra in result:
                record[extra] = result[extra]
        self._emit(job, record)
        by_point = {(p["bandwidth_mbyte_s"], p["latency_ms"]): p
                    for p in result["points"]}
        point_meta: Dict[str, Any] = {"predicted": result["predicted"]}
        if "mode" in result:
            point_meta["mode"] = result["mode"]
        for bw, lat in points:
            point = by_point[(bw, lat)]
            stored = self._stored_record(
                spec, bw, lat, {"runtime": point["runtime"], **point_meta})
            self.cache.store(spec.cache_key(bw, lat), stored)
            self._account_point(job, cached=False)
            self._emit(job, self._point_record(job, bw, lat, stored,
                                               cached=False,
                                               baseline=baseline))
