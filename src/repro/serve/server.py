"""The asyncio front end: HTTP on localhost and/or a Unix socket.

Endpoints (full wire format in docs/serve.md):

========  =======================  ==========================================
Method    Path                     Meaning
========  =======================  ==========================================
GET       ``/healthz``             liveness + engine version
GET       ``/metrics``             serve-level metrics snapshot
GET       ``/jobs``                every job's status summary
POST      ``/jobs``                submit one job (202 + status, 400/429)
GET       ``/jobs/<id>``           one job's status
GET       ``/jobs/<id>/stream``    JSON-lines result stream (replay + live)
POST      ``/jobs/<id>/cancel``    request cancellation
========  =======================  ==========================================

Every error is a typed JSON object ``{"error": {"code", "message"}}``
with a matching status: 400 malformed, 404 unknown job/path, 405 wrong
method, 413 over budget, 429 admission refusal.

The server binds either a TCP address (loopback by default — this is a
trusted-network service, there is no auth layer) or a Unix domain
socket, or both.  ``ready_file`` (used by CI and the test harness)
receives one line per bound address once accepting.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Any, Dict, List, Optional

from .. import __version__ as ENGINE_VERSION
from .http import (ProtocolError, Request, json_line, read_request,
                   response_bytes, split_path, stream_head)
from .jobs import JobError
from .scheduler import Scheduler


class ServeServer:
    """Owns the listening sockets and routes requests into a Scheduler."""

    def __init__(self, scheduler: Scheduler,
                 host: Optional[str] = "127.0.0.1", port: int = 0,
                 unix_path: Optional[str] = None,
                 ready_file: Optional[str] = None) -> None:
        if host is None and unix_path is None:
            raise ValueError("need a TCP host or a unix socket path to bind")
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.ready_file = ready_file
        self._servers: List[asyncio.AbstractServer] = []
        #: bound addresses, e.g. ["127.0.0.1:8642", "unix:/tmp/s.sock"]
        self.addresses: List[str] = []

    # ------------------------------------------------------------------
    async def start(self) -> List[str]:
        await self.scheduler.start()
        if self.host is not None:
            server = await asyncio.start_server(self._handle, self.host,
                                                self.port)
            for sock in server.sockets:
                bound_host, bound_port = sock.getsockname()[:2]
                self.addresses.append(f"{bound_host}:{bound_port}")
                self.port = bound_port
            self._servers.append(server)
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(self._handle,
                                                     path=self.unix_path)
            self.addresses.append(f"unix:{self.unix_path}")
            self._servers.append(server)
        if self.ready_file:
            tmp = self.ready_file + f".tmp{os.getpid()}"
            with open(tmp, "w") as fh:
                fh.write("\n".join(self.addresses) + "\n")
            os.replace(tmp, self.ready_file)
        return self.addresses

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        await self.scheduler.stop()
        if self.unix_path and os.path.exists(self.unix_path):
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass

    async def serve_forever(self) -> None:
        await self.start()
        try:
            await asyncio.gather(*(s.serve_forever() for s in self._servers))
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(response_bytes(exc.status, exc.to_json()))
                return
            await self._route(request, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                      # client went away mid-exchange
        except Exception as exc:      # never let a handler kill the loop
            try:
                writer.write(response_bytes(500, {"error": {
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}"}}))
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: Request, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        segments = split_path(request.path)
        try:
            if segments == ("healthz",):
                self._require(request, "GET")
                writer.write(response_bytes(200, {
                    "ok": True, "version": ENGINE_VERSION,
                    "addresses": self.addresses}))
            elif segments == ("metrics",):
                self._require(request, "GET")
                writer.write(response_bytes(
                    200, self.scheduler.registry.snapshot()))
            elif segments == ("jobs",):
                if request.method == "GET":
                    writer.write(response_bytes(200, {
                        "jobs": [job.snapshot() for job in
                                 self.scheduler.jobs.values()]}))
                elif request.method == "POST":
                    job = self.scheduler.submit(request.json())
                    writer.write(response_bytes(202, {"job": job.snapshot()}))
                else:
                    raise ProtocolError(405, "method-not-allowed",
                                        f"{request.method} /jobs")
            elif len(segments) == 2 and segments[0] == "jobs":
                self._require(request, "GET")
                job = self.scheduler.get(segments[1])
                writer.write(response_bytes(200, {"job": job.snapshot()}))
            elif len(segments) == 3 and segments[0] == "jobs" and \
                    segments[2] == "stream":
                self._require(request, "GET")
                await self._stream(segments[1], writer)
            elif len(segments) == 3 and segments[0] == "jobs" and \
                    segments[2] == "cancel":
                self._require(request, "POST")
                job = self.scheduler.cancel(segments[1])
                writer.write(response_bytes(200, {"job": job.snapshot()}))
            else:
                raise ProtocolError(404, "not-found",
                                    f"no route {request.path!r}")
        except ProtocolError as exc:
            writer.write(response_bytes(exc.status, exc.to_json()))
        except JobError as exc:
            writer.write(response_bytes(exc.status, exc.to_json()))

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise ProtocolError(405, "method-not-allowed",
                                f"{request.method} {request.path} "
                                f"(use {method})")

    async def _stream(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        self.scheduler.get(job_id)          # 404 before the head is sent
        writer.write(stream_head())
        async for record in self.scheduler.stream(job_id):
            writer.write(json_line(record))
            await writer.drain()            # per-record delivery, not buffered
