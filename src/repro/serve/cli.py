"""CLIs: ``python -m repro serve`` and ``python -m repro submit``.

``serve`` runs the long-lived service; ``submit`` turns any existing
experiment into servable traffic — it submits one job, streams the
per-point results as they land, and renders the same grid the direct
experiment harnesses print.

Examples::

    # one terminal: the service (4 worker processes, shared cache)
    python -m repro serve --port 8642 --workers 4

    # another: a Figure-3 sweep for Water, streamed point by point
    python -m repro submit water --connect 127.0.0.1:8642

    # the same job again: served ~100% from cache, no simulation
    python -m repro submit water --connect 127.0.0.1:8642

    # chaos and profile traffic through the same front end
    python -m repro submit asp --kind chaos --loss 0.01 --connect ...
    python -m repro submit fft --kind profile --connect ...

    # analytic fast paths: interpreted (whatif) or vectorized (replay)
    python -m repro submit asp --kind replay --connect ...
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, List, Optional

from ..experiments import grids

DEFAULT_PORT = 8642


def _csv_floats(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad number list {text!r} (want e.g. 6.3,0.95,0.03)") from exc


# ----------------------------------------------------------------------
# python -m repro serve
# ----------------------------------------------------------------------
def serve_main(argv: Optional[list] = None) -> int:
    from ..experiments.cache import DEFAULT_ROOT, SimCache
    from ..obs.report import RunReporter
    from .scheduler import AdmissionPolicy, Scheduler
    from .server import ServeServer

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the sharded simulation-as-a-service front end.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port, 0 for ephemeral (default: "
                             f"{DEFAULT_PORT})")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="also (or instead) bind a Unix socket")
    parser.add_argument("--no-tcp", action="store_true",
                        help="bind only the Unix socket")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker processes (default: 2)")
    parser.add_argument("--cache-root", default=DEFAULT_ROOT,
                        help=f"SimCache directory (default: {DEFAULT_ROOT})")
    parser.add_argument("--max-jobs", type=int, default=16,
                        help="admission: queued+running jobs (default: 16)")
    parser.add_argument("--max-concurrent", type=int, default=2,
                        help="jobs dispatching at once (default: 2)")
    parser.add_argument("--max-points", type=int, default=256,
                        help="admission: points per job (default: 256)")
    parser.add_argument("--max-events", type=int, default=50_000_000,
                        help="engine event budget per dispatched point "
                             "(0 disables; default: 5e7)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="append one serve-job JSON-lines record per "
                             "finished job")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write bound addresses here once accepting "
                             "(for scripts/CI)")
    args = parser.parse_args(argv)

    if args.no_tcp and not args.unix:
        parser.error("--no-tcp needs --unix PATH")

    policy = AdmissionPolicy(
        max_jobs=args.max_jobs,
        max_concurrent_jobs=args.max_concurrent,
        max_points_per_job=args.max_points,
        max_events_per_point=args.max_events or None)
    reporter = RunReporter(args.report) if args.report else None
    scheduler = Scheduler(SimCache(args.cache_root), policy=policy,
                          workers=args.workers, reporter=reporter)
    server = ServeServer(scheduler,
                         host=None if args.no_tcp else args.host,
                         port=args.port, unix_path=args.unix,
                         ready_file=args.ready_file)

    async def _run() -> None:
        addresses = await server.start()
        print(f"repro.serve listening on {', '.join(addresses)} "
              f"({args.workers} workers, cache {args.cache_root})")
        sys.stdout.flush()
        try:
            await asyncio.gather(
                *(s.serve_forever() for s in server._servers))
        finally:
            await server.stop()
            if reporter is not None:
                reporter.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro.serve: shutting down")
    return 0


# ----------------------------------------------------------------------
# python -m repro submit
# ----------------------------------------------------------------------
def _build_spec(args: argparse.Namespace) -> Dict[str, Any]:
    spec: Dict[str, Any] = {
        "kind": args.kind,
        "app": args.app,
        "variant": args.variant,
        "scale": args.scale,
        "seed": args.seed,
        "bandwidths": args.bandwidths,
        "latencies": args.latencies,
    }
    if args.clusters != grids.NUM_CLUSTERS:
        spec["clusters"] = args.clusters
    if args.cluster_size != grids.CLUSTER_SIZE:
        spec["cluster_size"] = args.cluster_size
    if args.loss:
        spec["faults"] = {"loss": args.loss}
    if args.max_events:
        spec["max_events"] = args.max_events
    return spec


def _render_grid(records: List[Dict[str, Any]]) -> None:
    from .client import merge_grid

    grid = merge_grid(records)
    bandwidths = sorted({bw for bw, _ in grid.points}, reverse=True)
    latencies = sorted({lat for _, lat in grid.points})
    print(f"\n{grid.app}/{grid.variant} relative speedup (%), "
          f"baseline {grid.baseline_runtime:.4f}s")
    header = "lat\\bw " + "".join(f"{bw:>9g}" for bw in bandwidths)
    print(header)
    for lat in latencies:
        cells = "".join(
            f"{grid.points[(bw, lat)].relative_speedup_pct:>9.1f}"
            for bw in bandwidths)
        print(f"{lat:>6g} {cells}")


def submit_main(argv: Optional[list] = None) -> int:
    from .client import ServeClient, ServeError

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit one job to a running repro.serve instance and "
                    "stream its results.")
    parser.add_argument("app", choices=list(grids.APPS))
    parser.add_argument("--variant", default=None,
                        choices=["optimized", "unoptimized"])
    parser.add_argument("--kind", default="sweep",
                        choices=["sweep", "whatif", "replay", "chaos",
                                 "profile"])
    parser.add_argument("--scale", default="bench",
                        choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bandwidths", type=_csv_floats,
                        default=list(grids.BANDWIDTHS_MBYTE_S),
                        help="MByte/s, comma separated (default: Figure 3)")
    parser.add_argument("--latencies", type=_csv_floats,
                        default=list(grids.LATENCIES_MS),
                        help="one-way ms, comma separated (default: Figure 3)")
    parser.add_argument("--clusters", type=int, default=grids.NUM_CLUSTERS)
    parser.add_argument("--cluster-size", type=int,
                        default=grids.CLUSTER_SIZE)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="WAN packet-loss probability (adds a fault plan)")
    parser.add_argument("--max-events", type=int, default=0,
                        help="per-point engine event budget")
    parser.add_argument("--connect", default=f"127.0.0.1:{DEFAULT_PORT}",
                        help="server address: host:port or unix:/path "
                             f"(default: 127.0.0.1:{DEFAULT_PORT})")
    parser.add_argument("--json", action="store_true",
                        help="print raw stream records instead of a table")
    parser.add_argument("--no-stream", action="store_true",
                        help="submit, print the job id, exit (poll later "
                             "with the status endpoint)")
    args = parser.parse_args(argv)

    if args.variant is None:
        args.variant = "unoptimized" if args.app == "fft" else "optimized"

    client = ServeClient(args.connect)
    spec = _build_spec(args)
    try:
        job = client.submit(spec)
    except ServeError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        return 2 if exc.status in (400, 404, 405) else 1
    except OSError as exc:
        print(f"cannot reach {args.connect}: {exc}", file=sys.stderr)
        return 1

    if args.no_stream:
        print(json.dumps(job, sort_keys=True))
        return 0

    records: List[Dict[str, Any]] = []
    points_done = 0
    try:
        for record in client.stream(job["id"]):
            records.append(record)
            if args.json:
                print(json.dumps(record, sort_keys=True))
                continue
            kind = record.get("kind")
            if kind == "baseline":
                print(f"[{job['id']}] baseline {record['runtime']:.4f}s"
                      + (" (cached)" if record.get("cached") else ""))
            elif kind == "point":
                points_done += 1
                tag = "cache" if record.get("cached") else "sim"
                if record.get("ok") is False:
                    print(f"[{job['id']}] point bw={record['bandwidth_mbyte_s']:g} "
                          f"lat={record['latency_ms']:g}ms FAILED "
                          f"({record.get('error')})")
                else:
                    print(f"[{job['id']}] point {points_done} "
                          f"bw={record['bandwidth_mbyte_s']:g} "
                          f"lat={record['latency_ms']:g}ms "
                          f"runtime={record['runtime']:.4f}s [{tag}]")
    except (ServeError, OSError) as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 1

    end = records[-1] if records else {}
    state = end.get("state", "?")
    if not args.json:
        print(f"[{job['id']}] {state}: {end.get('points_done', 0)}/"
              f"{end.get('points_total', 0)} points, "
              f"hit rate {100.0 * end.get('hit_rate', 0.0):.0f}%")
        if state == "done" and args.kind in ("sweep", "whatif", "replay"):
            try:
                _render_grid(records)
            except ServeError:
                pass
    return 0 if state == "done" else 1
