"""Sharded simulation-as-a-service: async job queue, dedup, streaming.

The service layer that turns the simulator into long-lived, shareable
infrastructure (see docs/serve.md):

- :mod:`repro.serve.jobs` — job schema, lifecycle states, typed errors,
  content hashing;
- :mod:`repro.serve.scheduler` — admission control, the async job
  queue, :class:`~repro.experiments.cache.SimCache` dedup, sharding
  over a persistent process pool, streaming result emission;
- :mod:`repro.serve.worker` — the picklable pool-side point runners;
- :mod:`repro.serve.server` / :mod:`repro.serve.http` — the asyncio
  HTTP front end (TCP loopback and/or Unix socket, stdlib only);
- :mod:`repro.serve.client` — blocking client + stream-to-grid merge;
- :mod:`repro.serve.cli` — ``python -m repro serve`` and
  ``python -m repro submit``.
"""

from .client import ServeClient, ServeError, merge_grid
from .jobs import (AdmissionError, InvalidJob, Job, JobError, JobSpec,
                   UnknownJob)
from .scheduler import AdmissionPolicy, Scheduler
from .server import ServeServer

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "InvalidJob",
    "Job",
    "JobError",
    "JobSpec",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "UnknownJob",
    "merge_grid",
]
