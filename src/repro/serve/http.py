"""Minimal HTTP/1.1 plumbing for the asyncio front end — stdlib only.

Deliberately tiny: request parsing off a :class:`asyncio.StreamReader`
with hard size limits, JSON responses with ``Content-Length``, and a
chunkless streaming mode (``Connection: close`` + write-through) for the
JSON-lines result streams.  Every connection serves exactly one request;
keep-alive is not supported (clients open one socket per call, and the
stream endpoint holds its socket for the job's lifetime anyway).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Request-line + headers budget.
MAX_HEADER_BYTES = 16 * 1024
#: Body budget (job submissions are small JSON objects).
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(Exception):
    """A malformed or over-budget request; maps to one typed response."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_json(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message}}


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, "invalid-json",
                                f"request body is not valid JSON: {exc}") \
                from None


def _parse_query(raw: str) -> Dict[str, str]:
    """``a=1&b=2`` -> dict.  No percent-decoding: the service's query
    parameters (ids, counts) never need it, and skipping it keeps the
    parser dependency-free."""
    out: Dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        out[key] = value
    return out


async def read_request(reader) -> Request:
    """Parse one request from the stream, enforcing size budgets."""
    try:
        line = await reader.readuntil(b"\r\n")
    except Exception as exc:
        raise ProtocolError(400, "bad-request",
                            f"could not read request line: {exc}") from None
    if len(line) > MAX_HEADER_BYTES:
        raise ProtocolError(413, "header-too-large", "request line too long")
    try:
        method, target, _version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise ProtocolError(400, "bad-request",
                            f"malformed request line {line!r}") from None

    headers: Dict[str, str] = {}
    total = len(line)
    while True:
        hline = await reader.readuntil(b"\r\n")
        total += len(hline)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError(413, "header-too-large", "headers too large")
        if hline in (b"\r\n", b"\n"):
            break
        name, sep, value = hline.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, "bad-request",
                                f"malformed header line {hline!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "bad-request",
                                "non-integer Content-Length") from None
        if length < 0:
            raise ProtocolError(400, "bad-request", "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, "body-too-large",
                                f"body of {length} bytes exceeds the "
                                f"{MAX_BODY_BYTES}-byte budget")
        body = await reader.readexactly(length)

    path, _, query = target.partition("?")
    return Request(method=method.upper(), path=path,
                   query=_parse_query(query), headers=headers, body=body)


def response_bytes(status: int, payload: Any = None,
                   body: Optional[bytes] = None,
                   content_type: str = "application/json") -> bytes:
    """One complete response with ``Content-Length`` and close semantics."""
    if body is None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode() \
            if payload is not None else b""
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def stream_head(status: int = 200) -> bytes:
    """Response head for an unbounded JSON-lines stream (no length;
    the end of the stream is the end of the connection)."""
    return (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/x-ndjson\r\n"
            f"Cache-Control: no-store\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")


def json_line(record: Dict[str, Any]) -> bytes:
    return (json.dumps(record, sort_keys=True) + "\n").encode()


def split_path(path: str) -> Tuple[str, ...]:
    """``/jobs/j0001/stream`` -> ``("jobs", "j0001", "stream")``."""
    return tuple(seg for seg in path.split("/") if seg)
