"""Closed-form first-order performance models, for validating the simulator.

Each function predicts a multi-cluster runtime from the LogP-style
parameters of the topology and an application config, using nothing but
arithmetic — no simulation.  The tests in ``tests/test_analysis.py``
assert that the simulator agrees with these predictions in the regimes
where the closed forms are valid (they deliberately ignore second-order
effects like queueing skew and imbalance, so agreement is to within tens
of percent, not exact).

This is the repository's independent check that the simulator's numbers
*mean* something: two entirely different calculations of the same
quantity must coincide where both are applicable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..network.topology import Topology


def wan_rtt(topo: Topology) -> float:
    """One request/reply round trip over the WAN (small messages)."""
    one_way = (topo.local.one_way_time(64)
               + topo.gateway_overhead * 2
               + topo.wide.one_way_time(64)
               + topo.wide.send_overhead + topo.wide.recv_overhead)
    return 2 * one_way


def local_rtt(topo: Topology) -> float:
    """One intra-cluster round trip (small messages)."""
    one_way = (topo.local.one_way_time(64)
               + topo.local.send_overhead + topo.local.recv_overhead)
    return 2 * one_way


def remote_fraction(topo: Topology) -> float:
    """Fraction of uniformly chosen partners that live in another cluster
    (for the symmetric C x m machine: (C-1)/C)."""
    total = topo.num_ranks
    same = total / topo.num_clusters
    return (total - same) / total


# ----------------------------------------------------------------------
# Applications (unoptimized variants, where the closed form is clean)
# ----------------------------------------------------------------------
def predict_asp_unoptimized(n: int, sec_per_cell: float, row_bytes: int,
                            topo: Topology) -> float:
    """ASP with a fixed sequencer: every row pays its owner's sequencer
    round trip, plus the per-row relaxation compute; row broadcasts
    pipeline behind the compute when bandwidth suffices."""
    p = topo.num_ranks
    rows_per_rank = n / p
    per_row_compute = rows_per_rank * n * sec_per_cell
    seq_cost = remote_fraction(topo) * wan_rtt(topo) \
        + (1 - remote_fraction(topo)) * local_rtt(topo)
    per_row_bandwidth = row_bytes / topo.wide.bandwidth  # one copy per link
    return n * (per_row_compute + seq_cost + max(
        0.0, per_row_bandwidth - per_row_compute))


def predict_tsp_central(num_jobs: int, mean_job_sec: float,
                        topo: Topology) -> float:
    """Central queue under self-scheduling.

    Each worker's cycle is job-compute plus its *own* fetch round trip,
    so workers co-located with the queue process disproportionately many
    jobs.  The aggregate throughput is the sum of per-worker rates; the
    runtime is the job count over that throughput plus one trailing
    remote cycle (the slowest worker finishing its last job).
    """
    cluster_size = topo.num_ranks // topo.num_clusters
    local_workers = cluster_size
    remote_workers = topo.num_ranks - cluster_size
    rate = (local_workers / (mean_job_sec + local_rtt(topo))
            + remote_workers / (mean_job_sec + wan_rtt(topo)))
    return num_jobs / rate + mean_job_sec + wan_rtt(topo)


def predict_fft(points: int, sec_per_point_stage: float, element_bytes: int,
                topo: Topology) -> float:
    """Three all-to-all transposes, bandwidth-bound on the WAN links:
    each ordered cluster pair carries (points/C^2) elements per transpose."""
    import math

    p = topo.num_ranks
    c = topo.num_clusters
    log_n = max(1, int(math.log2(points)))
    compute = 2 * (points / p) * log_n * sec_per_point_stage
    per_link_bytes = (points / (c * c)) * element_bytes
    wan_time = 3 * per_link_bytes / topo.wide.bandwidth
    return compute + wan_time + 3 * topo.wide.latency


def predict_water_optimized_floor(molecules: int, iterations: int,
                                  sec_per_pair: float, pos_bytes: int,
                                  topo: Topology) -> float:
    """A *lower bound* for optimized Water: per-iteration pair compute
    plus one WAN crossing of each remote cluster's position data per
    link (coordinator caching's whole point)."""
    p = topo.num_ranks
    per_rank = molecules / p
    pairs = per_rank * molecules / 2
    compute = pairs * sec_per_pair
    cluster_size = p // topo.num_clusters
    # Positions of one cluster's ranks cross each outgoing link once, in
    # both the fetch and the reduced-update direction.
    per_link_bytes = 2 * cluster_size * per_rank * pos_bytes
    wan_time = per_link_bytes / topo.wide.bandwidth
    # Communication overlaps compute only partially; the floor is whichever
    # resource is the bottleneck each iteration.
    return iterations * max(compute, wan_time)


def gateway_bound(messages_per_gateway: int, topo: Topology) -> float:
    """Minimum time for a message flood through one gateway CPU."""
    return messages_per_gateway * topo.gateway_overhead
