"""Analytic first-order models used to validate the simulator."""

from .model import (
    gateway_bound,
    local_rtt,
    predict_asp_unoptimized,
    predict_fft,
    predict_tsp_central,
    predict_water_optimized_floor,
    remote_fraction,
    wan_rtt,
)

__all__ = [
    "gateway_bound",
    "local_rtt",
    "predict_asp_unoptimized",
    "predict_fft",
    "predict_tsp_central",
    "predict_water_optimized_floor",
    "remote_fraction",
    "wan_rtt",
]
