"""MagPIe: wide-area-optimal collective operations.

The MagPIe library (Kielmann et al., PPoPP'99; Section 6 of the paper)
re-implements MPI's fourteen collectives so that on a two-layer
interconnect

1. every data item crosses each wide-area link **at most once**, and
2. the completion time is on the order of **one** wide-area latency
   (no WAN chains or WAN trees deeper than one).

The algorithms here follow that recipe: combine inside the cluster on the
fast network, exchange once between cluster coordinators, fan out locally.
Signatures mirror :mod:`repro.magpie.flat` exactly so the benchmark
harness can swap implementations.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from ..runtime.barrier import tree_barrier
from ..runtime.bcast import hier_bcast
from ..runtime.context import CONTROL_BYTES, Context
from ..runtime.reduction import hier_reduce


def barrier(ctx: Context, op_id: Any) -> Generator:
    yield from tree_barrier(ctx, ("mag-bar", op_id))


def bcast(ctx: Context, op_id: Any, root: int, size: int,
          value: Any = None) -> Generator:
    result = yield from hier_bcast(ctx, ("mag-bc", op_id), root, size, value)
    return result


def _entry_rank(ctx: Context, root: int) -> int:
    """Cluster coordinator: the root itself in its own cluster, else the leader."""
    topo = ctx.topology
    if ctx.cluster == topo.cluster_of(root):
        return root
    return topo.cluster_leader(ctx.cluster)


def gatherv(ctx: Context, op_id: Any, root: int, sizes: Sequence[int],
            value: Any) -> Generator:
    """Two-level gather: members -> coordinator, one WAN message per cluster."""
    topo = ctx.topology
    tag_loc = ("mag-ga-l", op_id)
    tag_wan = ("mag-ga-w", op_id)
    coord = _entry_rank(ctx, root)

    if ctx.rank != coord:
        yield ctx.send(coord, sizes[ctx.rank], tag_loc, value)
        return None

    members = list(topo.cluster_members(ctx.cluster))
    cluster_items = {ctx.rank: value}
    for _ in range(len(members) - 1):
        msg = yield ctx.recv(tag_loc)
        cluster_items[msg.src] = msg.payload

    if ctx.rank == root:
        items: List[Any] = [None] * ctx.num_ranks
        for r, v in cluster_items.items():
            items[r] = v
        for _ in range(topo.num_clusters - 1):
            msg = yield ctx.recv(tag_wan)
            for r, v in msg.payload.items():
                items[r] = v
        return items

    wire = sum(sizes[r] for r in members)
    yield ctx.send(root, wire, tag_wan, cluster_items)
    return None


def gather(ctx: Context, op_id: Any, root: int, size: int, value: Any) -> Generator:
    result = yield from gatherv(ctx, op_id, root, [size] * ctx.num_ranks, value)
    return result


def scatterv(ctx: Context, op_id: Any, root: int, sizes: Sequence[int],
             values: Optional[Sequence[Any]] = None) -> Generator:
    """Two-level scatter: one WAN message per remote cluster, local fan-out."""
    topo = ctx.topology
    tag_loc = ("mag-sc-l", op_id)
    tag_wan = ("mag-sc-w", op_id)
    coord = _entry_rank(ctx, root)

    if ctx.rank == root:
        assert values is not None, "root must supply the values to scatter"
        for cid in topo.clusters():
            members = list(topo.cluster_members(cid))
            if cid == ctx.cluster:
                for r in members:
                    if r != root:
                        yield ctx.send(r, sizes[r], tag_loc, values[r])
            else:
                chunk = {r: values[r] for r in members}
                wire = sum(sizes[r] for r in members)
                yield ctx.send(topo.cluster_leader(cid), wire, tag_wan, chunk)
        return values[root]

    if ctx.rank == coord:
        msg = yield ctx.recv(tag_wan)
        chunk = msg.payload
        for r, v in sorted(chunk.items()):
            if r != ctx.rank:
                yield ctx.send(r, sizes[r], tag_loc, v)
        return chunk[ctx.rank]

    msg = yield ctx.recv(tag_loc)
    return msg.payload


def scatter(ctx: Context, op_id: Any, root: int, size: int,
            values: Optional[Sequence[Any]] = None) -> Generator:
    result = yield from scatterv(ctx, op_id, root, [size] * ctx.num_ranks, values)
    return result


def allgatherv(ctx: Context, op_id: Any, sizes: Sequence[int], value: Any) -> Generator:
    """Hierarchical gather to rank 0, then hierarchical broadcast."""
    items = yield from gatherv(ctx, ("ag", op_id), 0, sizes, value)
    total = sum(sizes)
    items = yield from hier_bcast(ctx, ("mag-ag", op_id), 0, total, items)
    return items


def allgather(ctx: Context, op_id: Any, size: int, value: Any) -> Generator:
    result = yield from allgatherv(ctx, op_id, [size] * ctx.num_ranks, value)
    return result


def alltoallv(ctx: Context, op_id: Any, sizes: Sequence[int],
              values: Sequence[Any]) -> Generator:
    """Cluster-combined all-to-all.

    Intra-cluster data goes directly.  Data for remote clusters is combined
    at the local coordinator, exchanged coordinator-to-coordinator (one WAN
    message per ordered cluster pair — the minimum possible), and
    distributed at the far side.
    """
    topo = ctx.topology
    tag_direct = ("mag-a2a-d", op_id)
    tag_submit = ("mag-a2a-s", op_id)
    tag_wan = ("mag-a2a-w", op_id)
    tag_deliver = ("mag-a2a-f", op_id)
    leader = topo.cluster_leader(ctx.cluster)
    members = list(topo.cluster_members(ctx.cluster))
    num_remote = topo.num_clusters - 1

    # Phase 1: direct intra-cluster sends; remote-destined data to leader.
    for dst in members:
        if dst != ctx.rank:
            yield ctx.send(dst, sizes[dst], tag_direct, values[dst])
    if num_remote:
        remote = {dst: values[dst] for dst in topo.ranks()
                  if topo.cluster_of(dst) != ctx.cluster}
        wire = sum(sizes[dst] for dst in remote)
        if ctx.rank != leader:
            yield ctx.send(leader, wire, tag_submit, remote)

    received: List[Any] = [None] * ctx.num_ranks
    received[ctx.rank] = values[ctx.rank]

    # Phase 2 (leader only): combine and exchange between coordinators.
    if ctx.rank == leader and num_remote:
        # Collect the remote-destined data of every member (own included).
        per_dst = {dst: {} for dst in topo.ranks()
                   if topo.cluster_of(dst) != ctx.cluster}
        for dst, v in ((d, values[d]) for d in per_dst):
            per_dst[dst][ctx.rank] = v
        for _ in range(len(members) - 1):
            msg = yield ctx.recv(tag_submit)
            for dst, v in msg.payload.items():
                per_dst[dst][msg.src] = v
        for cid in topo.clusters():
            if cid == ctx.cluster:
                continue
            bundle = {dst: per_dst[dst] for dst in topo.cluster_members(cid)}
            wire = sum(sizes[dst] * 1 for dst in bundle) * len(members)
            yield ctx.send(topo.cluster_leader(cid), wire, tag_wan, bundle)
        # Receive bundles from every remote coordinator and deliver locally.
        for _ in range(num_remote):
            msg = yield ctx.recv(tag_wan)
            bundle = msg.payload
            for dst in sorted(bundle):
                contributions = bundle[dst]
                if dst == ctx.rank:
                    for src, v in contributions.items():
                        received[src] = v
                else:
                    wire = sum(sizes[dst] for _ in contributions)
                    yield ctx.send(dst, wire, tag_deliver, contributions)

    # Phase 3: collect everything addressed to me.
    expect_local = len(members) - 1
    expect_deliver = num_remote if ctx.rank != leader else 0
    for _ in range(expect_local):
        msg = yield ctx.recv(tag_direct)
        received[msg.src] = msg.payload
    for _ in range(expect_deliver):
        msg = yield ctx.recv(tag_deliver)
        for src, v in msg.payload.items():
            received[src] = v
    return received


def alltoall(ctx: Context, op_id: Any, size: int, values: Sequence[Any]) -> Generator:
    result = yield from alltoallv(ctx, op_id, [size] * ctx.num_ranks, values)
    return result


def reduce(ctx: Context, op_id: Any, root: int, size: int, value: Any,
           op: Callable[[Any, Any], Any]) -> Generator:
    result = yield from hier_reduce(ctx, ("mag-red", op_id), root, size, value, op)
    return result


def allreduce(ctx: Context, op_id: Any, size: int, value: Any,
              op: Callable[[Any, Any], Any]) -> Generator:
    result = yield from hier_reduce(ctx, ("mag-ar", op_id), 0, size, value, op)
    result = yield from hier_bcast(ctx, ("mag-arb", op_id), 0, size, result)
    return result


def reduce_scatter(ctx: Context, op_id: Any, size: int, values: Sequence[Any],
                   op: Callable[[Any, Any], Any]) -> Generator:
    """Hierarchical reduce of the vector, then hierarchical scatter."""
    def vec_op(a: Sequence[Any], b: Sequence[Any]) -> List[Any]:
        return [op(x, y) for x, y in zip(a, b)]

    p = ctx.num_ranks
    reduced = yield from hier_reduce(
        ctx, ("mag-rs", op_id), 0, size * p, list(values), vec_op
    )
    mine = yield from scatterv(ctx, ("rs", op_id), 0, [size] * p, reduced)
    return mine


def scan(ctx: Context, op_id: Any, size: int, value: Any,
         op: Callable[[Any, Any], Any]) -> Generator:
    """Cluster-aware inclusive scan.

    Local scan inside each cluster, a scan over per-cluster totals between
    coordinators (C-1 WAN hops instead of p-1), then a local correction
    broadcast — each value crosses the WAN once.
    """
    topo = ctx.topology
    tag_chain = ("mag-scan-c", op_id)
    tag_wan = ("mag-scan-w", op_id)
    tag_fix = ("mag-scan-f", op_id)
    members = list(topo.cluster_members(ctx.cluster))
    leader = topo.cluster_leader(ctx.cluster)
    last = members[-1]

    # Local inclusive chain scan (fast network).
    acc = value
    if ctx.rank != members[0]:
        msg = yield ctx.recv(tag_chain)
        acc = op(msg.payload, value)
    if ctx.rank != last:
        yield ctx.send(ctx.rank + 1, size, tag_chain, acc)

    # The last member owns the cluster total; pass it to the leader for the
    # inter-cluster chain.
    if ctx.rank == last and ctx.rank != leader:
        yield ctx.send(leader, size, tag_wan, acc)
    offset = None
    if ctx.rank == leader:
        cluster_total = acc if leader == last else None
        if cluster_total is None:
            msg = yield ctx.recv(tag_wan)
            cluster_total = msg.payload
        if ctx.cluster > 0:
            prev_leader = topo.cluster_leader(ctx.cluster - 1)
            msg = yield ctx.recv(("mag-scan-x", op_id))
            offset = msg.payload
            running = op(offset, cluster_total)
        else:
            offset = None
            running = cluster_total
        if ctx.cluster < topo.num_clusters - 1:
            next_leader = topo.cluster_leader(ctx.cluster + 1)
            yield ctx.send(next_leader, size, ("mag-scan-x", op_id), running)
        # Broadcast the offset to local members.
        for r in members:
            if r != leader:
                yield ctx.send(r, size, tag_fix, offset)
    else:
        msg = yield ctx.recv(tag_fix)
        offset = msg.payload

    if offset is not None:
        acc = op(offset, acc)
    return acc
