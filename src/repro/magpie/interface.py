"""Common interface over the flat (MPICH-like) and MagPIe collective sets.

``get_impl("flat")`` / ``get_impl("magpie")`` return modules exposing the
same fourteen generator functions, so callers can parameterize over the
implementation::

    coll = get_impl("magpie")
    result = yield from coll.allreduce(ctx, op_id, size, value, op)

``invoke`` runs any collective with a synthetic-but-valid argument set of
a given payload size — the benchmark harness uses it to time all fourteen
operations uniformly.
"""

from __future__ import annotations

import operator
from types import ModuleType
from typing import Any, Generator

from ..runtime.context import Context
from . import flat as _flat
from . import hier as _hier

#: The fourteen MPI-1 collective operations MagPIe reimplements.
COLLECTIVE_NAMES = (
    "barrier",
    "bcast",
    "gather",
    "gatherv",
    "scatter",
    "scatterv",
    "allgather",
    "allgatherv",
    "alltoall",
    "alltoallv",
    "reduce",
    "allreduce",
    "reduce_scatter",
    "scan",
)

_IMPLS = {
    "flat": _flat,
    "mpich": _flat,
    "magpie": _hier,
    "hier": _hier,
}


def get_impl(name: str) -> ModuleType:
    """Return the collective implementation module for ``name``."""
    try:
        return _IMPLS[name]
    except KeyError:
        raise ValueError(
            f"unknown collectives implementation {name!r}; "
            f"choose from {sorted(set(_IMPLS))}"
        ) from None


def invoke(ctx: Context, impl: ModuleType, name: str, op_id: Any,
           size: int, root: int = 0) -> Generator:
    """Run collective ``name`` once with representative arguments.

    ``size`` is the per-item payload size in bytes.  Returns whatever the
    operation returns on this rank.
    """
    p = ctx.num_ranks
    add = operator.add
    if name == "barrier":
        result = yield from impl.barrier(ctx, op_id)
    elif name == "bcast":
        value = {"data": op_id} if ctx.rank == root else None
        result = yield from impl.bcast(ctx, op_id, root, size, value)
    elif name == "gather":
        result = yield from impl.gather(ctx, op_id, root, size, ctx.rank)
    elif name == "gatherv":
        sizes = [size * (1 + r % 3) for r in range(p)]
        result = yield from impl.gatherv(ctx, op_id, root, sizes, ctx.rank)
    elif name == "scatter":
        values = list(range(p)) if ctx.rank == root else None
        result = yield from impl.scatter(ctx, op_id, root, size, values)
    elif name == "scatterv":
        sizes = [size * (1 + r % 3) for r in range(p)]
        values = list(range(p)) if ctx.rank == root else None
        result = yield from impl.scatterv(ctx, op_id, root, sizes, values)
    elif name == "allgather":
        result = yield from impl.allgather(ctx, op_id, size, ctx.rank)
    elif name == "allgatherv":
        sizes = [size * (1 + r % 3) for r in range(p)]
        result = yield from impl.allgatherv(ctx, op_id, sizes, ctx.rank)
    elif name == "alltoall":
        values = [ctx.rank * 1000 + d for d in range(p)]
        result = yield from impl.alltoall(ctx, op_id, size, values)
    elif name == "alltoallv":
        sizes = [size * (1 + d % 3) for d in range(p)]
        values = [ctx.rank * 1000 + d for d in range(p)]
        result = yield from impl.alltoallv(ctx, op_id, sizes, values)
    elif name == "reduce":
        result = yield from impl.reduce(ctx, op_id, root, size, ctx.rank + 1, add)
    elif name == "allreduce":
        result = yield from impl.allreduce(ctx, op_id, size, ctx.rank + 1, add)
    elif name == "reduce_scatter":
        values = [ctx.rank + d for d in range(p)]
        result = yield from impl.reduce_scatter(ctx, op_id, size, values, add)
    elif name == "scan":
        result = yield from impl.scan(ctx, op_id, size, ctx.rank + 1, add)
    else:
        raise ValueError(f"unknown collective {name!r}")
    return result
