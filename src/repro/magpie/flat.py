"""Topology-unaware collective operations (MPICH-like baselines).

These are the algorithms a conventional MPI implementation uses on a flat
network: binomial trees over rank order, linear gathers, direct all-to-all
exchanges, chain scans.  On a two-layer interconnect they route many
tree/chain edges over the slow WAN links, which is exactly the behaviour
MagPIe (see :mod:`repro.magpie.hier`) eliminates.

All functions are generators: drive them with ``yield from``.  Every rank
of the machine must call the same operation with the same ``op_id``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from ..runtime.barrier import flat_barrier
from ..runtime.bcast import flat_bcast
from ..runtime.context import CONTROL_BYTES, Context
from ..runtime.reduction import binomial_reduce


def barrier(ctx: Context, op_id: Any) -> Generator:
    yield from flat_barrier(ctx, ("mpi-bar", op_id))


def bcast(ctx: Context, op_id: Any, root: int, size: int,
          value: Any = None) -> Generator:
    result = yield from flat_bcast(ctx, ("mpi-bc", op_id), root, size, value)
    return result


def gatherv(ctx: Context, op_id: Any, root: int, sizes: Sequence[int],
            value: Any) -> Generator:
    """Linear gather: every rank sends its item straight to ``root``.

    Returns the rank-indexed list of items at the root, None elsewhere.
    """
    tag = ("mpi-ga", op_id)
    if ctx.rank == root:
        items: List[Any] = [None] * ctx.num_ranks
        items[root] = value
        for _ in range(ctx.num_ranks - 1):
            msg = yield ctx.recv(tag)
            items[msg.src] = msg.payload
        return items
    yield ctx.send(root, sizes[ctx.rank], tag, value)
    return None


def gather(ctx: Context, op_id: Any, root: int, size: int, value: Any) -> Generator:
    result = yield from gatherv(ctx, op_id, root, [size] * ctx.num_ranks, value)
    return result


def scatterv(ctx: Context, op_id: Any, root: int, sizes: Sequence[int],
             values: Optional[Sequence[Any]] = None) -> Generator:
    """Linear scatter: root sends each rank its chunk directly."""
    tag = ("mpi-sc", op_id)
    if ctx.rank == root:
        assert values is not None, "root must supply the values to scatter"
        for dst in ctx.topology.ranks():
            if dst != root:
                yield ctx.send(dst, sizes[dst], tag, values[dst])
        return values[root]
    msg = yield ctx.recv(tag)
    return msg.payload


def scatter(ctx: Context, op_id: Any, root: int, size: int,
            values: Optional[Sequence[Any]] = None) -> Generator:
    result = yield from scatterv(ctx, op_id, root, [size] * ctx.num_ranks, values)
    return result


def allgatherv(ctx: Context, op_id: Any, sizes: Sequence[int], value: Any) -> Generator:
    """Gather to rank 0, then broadcast the assembled vector."""
    items = yield from gatherv(ctx, ("ag", op_id), 0, sizes, value)
    total = sum(sizes)
    items = yield from flat_bcast(ctx, ("mpi-ag", op_id), 0, total, items)
    return items


def allgather(ctx: Context, op_id: Any, size: int, value: Any) -> Generator:
    result = yield from allgatherv(ctx, op_id, [size] * ctx.num_ranks, value)
    return result


def alltoallv(ctx: Context, op_id: Any, sizes: Sequence[int],
              values: Sequence[Any]) -> Generator:
    """Direct exchange: p*(p-1) point-to-point messages.

    ``values[d]`` / ``sizes[d]`` is this rank's data for destination ``d``.
    Returns the list indexed by source rank.
    """
    tag = ("mpi-a2a", op_id)
    for dst in ctx.topology.ranks():
        if dst != ctx.rank:
            yield ctx.send(dst, sizes[dst], tag, values[dst])
    received: List[Any] = [None] * ctx.num_ranks
    received[ctx.rank] = values[ctx.rank]
    for _ in range(ctx.num_ranks - 1):
        msg = yield ctx.recv(tag)
        received[msg.src] = msg.payload
    return received


def alltoall(ctx: Context, op_id: Any, size: int, values: Sequence[Any]) -> Generator:
    result = yield from alltoallv(ctx, op_id, [size] * ctx.num_ranks, values)
    return result


def reduce(ctx: Context, op_id: Any, root: int, size: int, value: Any,
           op: Callable[[Any, Any], Any]) -> Generator:
    result = yield from binomial_reduce(ctx, ("mpi-red", op_id), root, size, value, op)
    return result


def allreduce(ctx: Context, op_id: Any, size: int, value: Any,
              op: Callable[[Any, Any], Any]) -> Generator:
    result = yield from binomial_reduce(ctx, ("mpi-ar", op_id), 0, size, value, op)
    result = yield from flat_bcast(ctx, ("mpi-arb", op_id), 0, size, result)
    return result


def reduce_scatter(ctx: Context, op_id: Any, size: int, values: Sequence[Any],
                   op: Callable[[Any, Any], Any]) -> Generator:
    """Element-wise reduce of per-rank vectors, then scatter element i to rank i.

    ``values`` is this rank's contribution vector (one entry per rank);
    returns the fully reduced entry for this rank.
    """
    def vec_op(a: Sequence[Any], b: Sequence[Any]) -> List[Any]:
        return [op(x, y) for x, y in zip(a, b)]

    p = ctx.num_ranks
    reduced = yield from binomial_reduce(
        ctx, ("mpi-rs", op_id), 0, size * p, list(values), vec_op
    )
    mine = yield from scatterv(ctx, ("rs", op_id), 0, [size] * p, reduced)
    return mine


def scan(ctx: Context, op_id: Any, size: int, value: Any,
         op: Callable[[Any, Any], Any]) -> Generator:
    """Inclusive prefix scan via a rank-order chain (topology-unaware)."""
    tag = ("mpi-scan", op_id)
    acc = value
    if ctx.rank > 0:
        msg = yield ctx.recv(tag)
        acc = op(msg.payload, value)
    if ctx.rank < ctx.num_ranks - 1:
        yield ctx.send(ctx.rank + 1, size, tag, acc)
    return acc
