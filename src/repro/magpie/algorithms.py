"""Classic MPI collective algorithm families, beyond the two defaults.

The flat/hier split of :mod:`repro.magpie` captures the paper's
comparison, but real MPI implementations choose among several algorithms
per operation.  This module adds the textbook families so their two-layer
behaviour can be studied:

- ``ring_allgather``            — Chan/Thakur ring: bandwidth-optimal,
  p-1 sequential steps (latency-terrible on a WAN).
- ``recursive_doubling_allreduce`` — log2(p) rounds of pairwise exchange
  (the MPICH default for small messages).
- ``rabenseifner_allreduce``    — reduce-scatter + allgather: halves the
  bandwidth of large-message allreduce.
- ``pairwise_alltoall``         — p-1 balanced exchange rounds (the
  MPICH large-message alltoall).
- ``scatter_allgather_bcast``   — van de Geijn large-message broadcast:
  scatter the blocks, then ring-allgather them.

All operate over the full machine and match the semantics of the
corresponding :mod:`repro.magpie.flat` operations (tests enforce it).
Power-of-two rank counts are required where the textbook algorithm
assumes them (recursive doubling, Rabenseifner).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Sequence

from ..runtime.context import Context


def _require_power_of_two(p: int, name: str) -> None:
    if p & (p - 1):
        raise ValueError(f"{name} requires a power-of-two rank count, got {p}")


def ring_allgather(ctx: Context, op_id: Any, size: int, value: Any) -> Generator:
    """Ring allgather: each step passes the neighbour the newest block.

    Bytes per rank: (p-1) * size — optimal.  Steps: p-1 — each paying a
    link latency, which is what kills it across a WAN.
    """
    p = ctx.num_ranks
    rank = ctx.rank
    tag = ("ring-ag", op_id)
    items: List[Any] = [None] * p
    items[rank] = value
    right = (rank + 1) % p
    for step in range(p - 1):
        send_idx = (rank - step) % p
        recv_idx = (rank - step - 1) % p
        yield ctx.send(right, size, (tag, send_idx), items[send_idx])
        msg = yield ctx.recv((tag, recv_idx))
        items[recv_idx] = msg.payload
    return items


def recursive_doubling_allreduce(ctx: Context, op_id: Any, size: int,
                                 value: Any,
                                 op: Callable[[Any, Any], Any]) -> Generator:
    """log2(p) pairwise exchange rounds; both sides end with the total.

    Combination order differs per rank, so ``op`` should be associative
    and commutative (as MPI requires for user ops used this way).
    """
    p = ctx.num_ranks
    _require_power_of_two(p, "recursive doubling")
    rank = ctx.rank
    acc = value
    mask = 1
    round_id = 0
    while mask < p:
        partner = rank ^ mask
        yield ctx.send(partner, size, ("rd-ar", op_id, round_id), acc)
        msg = yield ctx.recv(("rd-ar", op_id, round_id))
        acc = op(acc, msg.payload) if rank < partner else op(msg.payload, acc)
        mask <<= 1
        round_id += 1
    return acc


def rabenseifner_allreduce(ctx: Context, op_id: Any, size: int,
                           values: Sequence[Any],
                           op: Callable[[Any, Any], Any]) -> Generator:
    """Reduce-scatter then allgather over a p-element vector.

    ``values`` is this rank's contribution vector (one block per rank);
    returns the fully reduced vector.  Total bytes per rank approach
    2 * size * (p-1)/p per block — half of recursive doubling for large
    vectors.
    """
    p = ctx.num_ranks
    _require_power_of_two(p, "Rabenseifner")
    rank = ctx.rank
    blocks = list(values)
    if len(blocks) != p:
        raise ValueError(f"need one block per rank ({p}), got {len(blocks)}")

    # Phase 1: reduce-scatter by recursive halving.  After round k each
    # rank is responsible for a 1/2^k slice of the blocks.
    lo, hi = 0, p  # responsibility range [lo, hi)
    mask = p >> 1
    round_id = 0
    while mask:
        partner = rank ^ mask
        mid = (lo + hi) // 2
        if rank < partner:
            send_range, keep_range = (mid, hi), (lo, mid)
        else:
            send_range, keep_range = (lo, mid), (mid, hi)
        payload = {i: blocks[i] for i in range(*send_range)}
        nbytes = size * max(1, len(payload))
        yield ctx.send(partner, nbytes, ("rab-rs", op_id, round_id), payload)
        msg = yield ctx.recv(("rab-rs", op_id, round_id))
        for i, block in msg.payload.items():
            blocks[i] = op(blocks[i], block) if rank < partner \
                else op(block, blocks[i])
        lo, hi = keep_range
        mask >>= 1
        round_id += 1

    # Phase 2: allgather the reduced blocks by recursive doubling.
    mask = 1
    have = {i: blocks[i] for i in range(lo, hi)}
    while mask < p:
        partner = rank ^ mask
        nbytes = size * len(have)
        yield ctx.send(partner, nbytes, ("rab-ag", op_id, mask), dict(have))
        msg = yield ctx.recv(("rab-ag", op_id, mask))
        have.update(msg.payload)
        mask <<= 1
    return [have[i] for i in range(p)]


def pairwise_alltoall(ctx: Context, op_id: Any, size: int,
                      values: Sequence[Any]) -> Generator:
    """p-1 balanced exchange rounds: in round k, swap with rank ^ k
    (power of two) — every link carries exactly one message per round."""
    p = ctx.num_ranks
    _require_power_of_two(p, "pairwise exchange")
    rank = ctx.rank
    received: List[Any] = [None] * p
    received[rank] = values[rank]
    for k in range(1, p):
        partner = rank ^ k
        yield ctx.send(partner, size, ("pw-a2a", op_id, k), values[partner])
        msg = yield ctx.recv(("pw-a2a", op_id, k))
        received[partner] = msg.payload
    return received


def scatter_allgather_bcast(ctx: Context, op_id: Any, root: int, size: int,
                            value: Any = None) -> Generator:
    """van de Geijn broadcast: scatter p blocks, then ring-allgather.

    For a ``size``-byte payload the root sends ~size bytes total instead
    of size * log(p): the large-message broadcast of choice on flat
    networks.  The payload is modelled as p equal blocks.
    """
    p = ctx.num_ranks
    rank = ctx.rank
    block = max(1, size // p)
    # Scatter: root sends block i to rank (root + i) % p.
    if rank == root:
        blocks = {i: ("blk", i, value) for i in range(p)}
        for i in range(p):
            dst = (root + i) % p
            if dst != root:
                yield ctx.send(dst, block, ("vdg-sc", op_id), blocks[i])
        mine = blocks[0]
    else:
        msg = yield ctx.recv(("vdg-sc", op_id))
        mine = msg.payload
    # Ring allgather of the p blocks.
    items = yield from ring_allgather(ctx, ("vdg-ag", op_id), block, mine)
    # Reassembly: every rank now holds all blocks; the value rides in each.
    for item in items:
        if item is not None:
            return item[2]
    return None
