"""MagPIe: wide-area-aware MPI collectives and their flat baselines."""

from . import algorithms, flat, hier
from .interface import COLLECTIVE_NAMES, get_impl, invoke

__all__ = ["algorithms", "flat", "hier", "COLLECTIVE_NAMES", "get_impl", "invoke"]
