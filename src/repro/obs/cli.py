"""``python -m repro trace``: run one app fully instrumented, export traces.

Runs a single application variant on a chosen grid point with every
probe-bus subscriber attached (tracer, metrics, Perfetto exporter),
writes a Chrome/Perfetto ``trace_event`` JSON plus a JSON-lines run
report, and prints the terminal timeline with the headline metrics::

    python -m repro trace asp --scale bench
    python -m repro trace water --variant unoptimized --bw 0.3 --lat 30 \\
        --out water.trace.json --report water.report.jsonl

Load the trace at https://ui.perfetto.dev (or ``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from ..apps import app_names, default_config, get_builder
from ..experiments import grids
from ..experiments.report import render_table
from ..runtime.run import run_spmd
from ..trace import Tracer, render_timeline, utilization
from .bus import ProbeBus
from .metrics import MetricsCollector
from .perfetto import PerfettoTrace
from .report import RunReporter, run_record


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro trace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("app", choices=sorted(app_names()))
    parser.add_argument("--variant", default="optimized",
                        choices=["unoptimized", "optimized"])
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--bw", type=float, default=grids.FIGURE1_BANDWIDTH,
                        help="WAN bandwidth, MByte/s per link")
    parser.add_argument("--lat", type=float, default=grids.FIGURE1_LATENCY_MS,
                        help="WAN one-way latency, ms")
    parser.add_argument("--clusters", type=int, default=grids.NUM_CLUSTERS)
    parser.add_argument("--cluster-size", type=int, default=grids.CLUSTER_SIZE)
    parser.add_argument("--wan-shape", default="full",
                        choices=["full", "star", "ring"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sanitize", action="store_true",
                        help="attach the runtime protocol sanitizer "
                             "(repro.lint); prints its findings at the end")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in character bins")
    parser.add_argument("--out", default=None,
                        help="Perfetto trace path (default <app>-<variant>.trace.json)")
    parser.add_argument("--report", default=None,
                        help="run report path (default <app>-<variant>.report.jsonl)")
    parser.add_argument("--metrics", default=None, metavar="OUT.JSON",
                        help="also dump the metrics registry snapshot "
                             "(counters/gauges/histograms) as JSON")
    args = parser.parse_args(argv)

    out_path = args.out or f"{args.app}-{args.variant}.trace.json"
    report_path = args.report or f"{args.app}-{args.variant}.report.jsonl"

    topo = grids.multi_cluster(args.bw, args.lat, args.clusters,
                               args.cluster_size, args.wan_shape)
    bus = ProbeBus()
    tracer = Tracer()
    metrics = MetricsCollector()
    perfetto = PerfettoTrace(topology=topo)
    bus.attach(tracer)
    bus.attach(metrics)
    bus.attach(perfetto)

    config = default_config(args.app, args.scale)
    body = get_builder(args.app, args.variant)(config)
    meta = {"app": args.app, "variant": args.variant, "scale": args.scale,
            "bandwidth_mbyte_s": args.bw, "latency_ms": args.lat,
            "harness": "trace"}
    result = run_spmd(topo, body, seed=args.seed, bus=bus,
                      sanitize=args.sanitize)
    metrics.finalize(result.runtime)

    events = perfetto.write(out_path)
    if args.metrics:
        with open(args.metrics, "w") as fh:
            json.dump(metrics.snapshot(), fh, sort_keys=True, indent=2)
        print(f"wrote metrics snapshot to {args.metrics}", file=sys.stderr)
    with RunReporter(report_path) as reporter:
        reporter.emit(run_record(result.machine, result.runtime,
                                 result.wall_time, meta=meta, metrics=metrics))

    print(f"=== {args.app} {args.variant} on {topo.describe()}")
    print(render_timeline(tracer, topo, result.runtime, width=args.width))
    lat = tracer.latency_stats()
    util = utilization(tracer, topo, result.runtime)
    mean_util = sum(util.values()) / len(util) if util else 0.0
    print(f"sim time {result.runtime:.4f}s   wall {result.wall_time:.3f}s   "
          f"engine events {result.machine.engine.events_processed}")
    print(f"mean CPU utilization {100 * mean_util:5.1f}%   "
          f"WAN messages {len(tracer.wan_sends())} of {tracer.message_count()}")
    print(f"message latency ms: mean {lat['mean'] * 1e3:.3f}  "
          f"p50 {lat['p50'] * 1e3:.3f}  p95 {lat['p95'] * 1e3:.3f}  "
          f"p99 {lat['p99'] * 1e3:.3f}  max {lat['max'] * 1e3:.3f}")
    pair_rows = result.machine.stats.pair_rows()
    if pair_rows:
        print(render_table(
            ["src", "dst", "messages", "MByte"],
            [[r["src_cluster"], r["dst_cluster"], r["messages"],
              f"{r['mbytes']:.3f}"] for r in pair_rows],
            title="inter-cluster traffic matrix"))
    if args.sanitize:
        findings = result.machine.sanitizer.findings
        if findings:
            print(f"sanitizer: {len(findings)} finding(s)")
            for f in findings:
                print("  " + f.render())
        else:
            print("sanitizer: clean (FIFO, conservation, monotonicity)")
    print(f"wrote {events} trace events to {out_path}")
    print(f"wrote run report to {report_path}", file=sys.stderr)


if __name__ == "__main__":
    main()
