"""Metrics registry: counters, gauges, log-binned histograms, time series.

The registry is deliberately dependency-free and snapshot-oriented: every
metric renders to plain JSON-able values via :meth:`MetricsRegistry.snapshot`,
which is what the run reports (:mod:`repro.obs.report`) embed.

:class:`MetricsCollector` is the standard probe-bus subscriber turning the
event streams into the quantities the paper's analyses need: message
latency percentiles, per-link utilisation and queue-depth series, gateway
CPU occupancy, per-rank compute time.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from .events import (BlockEvent, ComputeEvent, DeliverEvent, GatewayEvent,
                     QueueEvent, SendEvent, UnblockEvent)


class Counter:
    """A monotonically increasing count (messages, bytes, drops)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A last-value-wins measurement (utilisation, occupancy)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class TimeSeries:
    """(time, value) samples, capped; drops beyond the cap are counted."""

    __slots__ = ("samples", "max_samples", "dropped")

    def __init__(self, max_samples: int = 10_000) -> None:
        self.samples: List[Tuple[float, float]] = []
        self.max_samples = max_samples
        self.dropped = 0

    def record(self, time: float, value: float) -> None:
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        self.samples.append((time, value))

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"samples": len(self.samples)}
        if self.samples:
            values = [v for _, v in self.samples]
            out["mean"] = sum(values) / len(values)
            out["max"] = max(values)
        if self.dropped:
            out["dropped"] = self.dropped
        return out


class Histogram:
    """Fixed log-spaced bins over [lo, hi); O(1) observe, percentile reads.

    Bin ``i`` covers ``[lo * r**i, lo * r**(i+1))`` with
    ``r = 10 ** (1 / bins_per_decade)``; values below ``lo`` land in an
    underflow bin, values at or above ``hi`` in an overflow bin.
    Percentiles are estimated as the upper edge of the bin containing the
    requested rank (the usual fixed-bucket estimator), so they are upper
    bounds with relative error bounded by one bin width.
    """

    __slots__ = ("lo", "hi", "bins_per_decade", "_ratio_log", "_counts",
                 "count", "total", "min", "max")

    def __init__(self, lo: float = 1e-7, hi: float = 1e3,
                 bins_per_decade: int = 10) -> None:
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if bins_per_decade <= 0:
            raise ValueError(f"bins_per_decade must be positive, got {bins_per_decade}")
        self.lo = lo
        self.hi = hi
        self.bins_per_decade = bins_per_decade
        self._ratio_log = math.log10(hi / lo)
        nbins = int(math.ceil(bins_per_decade * self._ratio_log))
        # counts[0] is the underflow bin, counts[-1] the overflow bin.
        self._counts = [0] * (nbins + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bin_index(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return len(self._counts) - 1
        frac = math.log10(value / self.lo) / self._ratio_log
        return 1 + min(len(self._counts) - 3, int(frac * (len(self._counts) - 2)))

    def _bin_upper(self, index: int) -> float:
        if index <= 0:
            return self.lo
        if index >= len(self._counts) - 1:
            return self.hi
        return self.lo * 10 ** (index * self._ratio_log / (len(self._counts) - 2))

    def observe(self, value: float) -> None:
        self._counts[self._bin_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, p: float) -> float:
        """Upper-edge estimate of the ``p``-th percentile (0 < p <= 100)."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile out of range (0, 100]: {p}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(self.count * p / 100.0)
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                if i == len(self._counts) - 1:
                    return self.max  # overflow bin has no finite upper edge
                # Clamp the edge estimate into the observed range so tiny
                # samples do not report beyond their own extremes.
                return min(self._bin_upper(i), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named metrics with get-or-create accessors and one-call snapshot."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls, *args, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(*args, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get(name, Histogram, **kwargs)

    def series(self, name: str, **kwargs) -> TimeSeries:
        return self._get(name, TimeSeries, **kwargs)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """All metrics rendered to JSON-able values, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}


class MetricsCollector:
    """Probe-bus subscriber populating the standard run metrics.

    Attach with ``bus.attach(collector)`` (or pass a prepared bus to
    :class:`~repro.runtime.machine.Machine`), run, then call
    :meth:`finalize` with the simulated run time to turn accumulated busy
    times into utilisation/occupancy gauges.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 backlog_series: bool = False) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.backlog_series = backlog_series
        self._link_busy: Dict[str, float] = {}
        self._gateway_busy: Dict[int, float] = {}
        self._rank_compute: Dict[int, float] = {}

    # -- bus handlers ---------------------------------------------------
    def on_send(self, ev: SendEvent) -> None:
        reg = self.registry
        reg.counter("messages.total").inc()
        reg.counter("bytes.total").inc(ev.size)
        if ev.inter_cluster:
            reg.counter("messages.wan").inc()
            reg.counter("bytes.wan").inc(ev.size)

    def on_deliver(self, ev: DeliverEvent) -> None:
        self.registry.histogram("message.latency_s").observe(ev.latency)

    def on_compute(self, ev: ComputeEvent) -> None:
        self._rank_compute[ev.rank] = (
            self._rank_compute.get(ev.rank, 0.0) + (ev.end - ev.start))

    def on_queue(self, ev: QueueEvent) -> None:
        reg = self.registry
        reg.counter(f"link.{ev.link}.messages").inc()
        reg.counter(f"link.{ev.link}.bytes").inc(ev.size)
        self._link_busy[ev.link] = self._link_busy.get(ev.link, 0.0) + ev.duration
        reg.histogram("link.queue_wait_s").observe(ev.wait)
        if self.backlog_series:
            reg.series(f"link.{ev.link}.backlog_s").record(ev.time, ev.wait)

    def on_gateway(self, ev: GatewayEvent) -> None:
        self.registry.counter(f"gateway.c{ev.cluster}.messages").inc()
        self._gateway_busy[ev.cluster] = (
            self._gateway_busy.get(ev.cluster, 0.0) + (ev.end - ev.start))

    def on_block(self, ev: BlockEvent) -> None:
        self.registry.counter("recv.blocks").inc()

    def on_unblock(self, ev: UnblockEvent) -> None:
        self.registry.histogram("recv.blocked_s").observe(ev.waited)

    # -- finishing ------------------------------------------------------
    def finalize(self, sim_time: float) -> MetricsRegistry:
        """Convert busy-time accumulators into gauges over ``sim_time``."""
        reg = self.registry
        horizon = sim_time if sim_time > 0 else 1.0
        for link, busy in self._link_busy.items():
            reg.gauge(f"link.{link}.utilization").set(min(1.0, busy / horizon))
        for cluster, busy in self._gateway_busy.items():
            reg.gauge(f"gateway.c{cluster}.occupancy").set(min(1.0, busy / horizon))
        if self._rank_compute:
            utils = [busy / horizon for busy in self._rank_compute.values()]
            reg.gauge("ranks.mean_compute_utilization").set(sum(utils) / len(utils))
        return reg

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()
