"""The probe bus: typed instrumentation events with a no-subscriber fast path.

A :class:`ProbeBus` is a tiny topic-based publisher the simulator layers
emit into.  The design constraint is that *un-instrumented runs pay
(almost) nothing*: for every topic the bus exposes a plain boolean
attribute ``want_<topic>``, and publishers guard event construction on
it::

    if bus.want_send:
        bus.emit("send", SendEvent(...))

so when nothing is subscribed the cost per probe point is one attribute
load and a branch — no event object, no dict lookup, no call.

Subscribers are either plain callbacks (``bus.subscribe("send", fn)``)
or objects with ``on_<topic>`` methods wired up in one go by
:meth:`ProbeBus.attach` — :class:`repro.trace.Tracer`,
:class:`repro.network.stats.TrafficStats`,
:class:`repro.obs.metrics.MetricsCollector` and
:class:`repro.obs.perfetto.PerfettoTrace` all plug in this way.

The two ``traffic_*`` topics are special: they carry positional counters
instead of event objects (they are on the per-message hot path and are
subscribed in every :class:`~repro.runtime.machine.Machine` by its
:class:`~repro.network.stats.TrafficStats`), published via the dedicated
:meth:`emit_traffic_intra` / :meth:`emit_traffic_inter` helpers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: All topics a bus carries, in a fixed order (used by :meth:`ProbeBus.attach`).
TOPICS: Tuple[str, ...] = (
    "send",           # SendEvent — message injected into the network
    "deliver",        # DeliverEvent — message handed to the endpoint
    "compute",        # ComputeEvent — CPU interval reserved on a rank
    "queue",          # QueueEvent — link transfer with queueing delay
    "gateway",        # GatewayEvent — gateway CPU served one message
    "block",          # BlockEvent — process blocked on a receive
    "unblock",        # UnblockEvent — blocked receive completed
    "phase",          # PhaseEvent — collective/application phase boundary
    "op",             # OpEvent — per-process program-order operation
    "fault_drop",     # FaultDropEvent — message eaten by an injected fault
    "fault_spike",    # FaultSpikeEvent — latency inflated by a burst window
    "fault_link",     # FaultLinkEvent — outage/crash window opened or closed
    "fault_retransmit",  # RetransmitEvent — reliable transport retry fired
    "traffic_intra",  # (size) — intra-cluster traffic counter
    "traffic_inter",  # (src_cluster, dst_cluster, size) — WAN traffic counter
)


class ProbeBus:
    """Topic-based publisher for simulator instrumentation events."""

    __slots__ = ("_subs",) + tuple(f"want_{t}" for t in TOPICS)

    def __init__(self) -> None:
        self._subs: Dict[str, List[Callable]] = {t: [] for t in TOPICS}
        for topic in TOPICS:
            setattr(self, f"want_{topic}", False)

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, callback: Callable) -> Callable:
        """Register ``callback`` for ``topic``; returns the callback."""
        try:
            self._subs[topic].append(callback)
        except KeyError:
            raise ValueError(f"unknown probe topic {topic!r}; "
                             f"known topics: {TOPICS}") from None
        setattr(self, f"want_{topic}", True)
        return callback

    def unsubscribe(self, topic: str, callback: Callable) -> None:
        """Remove one subscription; clears the fast-path flag when empty."""
        subs = self._subs[topic]
        subs.remove(callback)
        if not subs:
            setattr(self, f"want_{topic}", False)

    def attach(self, subscriber: Any) -> List[str]:
        """Wire every ``on_<topic>`` method of ``subscriber`` to its topic.

        Returns the topics attached; raises if the object exposes none
        (almost certainly a typo in a handler name).
        """
        attached = []
        for topic in TOPICS:
            handler = getattr(subscriber, f"on_{topic}", None)
            if callable(handler):
                self.subscribe(topic, handler)
                attached.append(topic)
        if not attached:
            raise ValueError(
                f"{type(subscriber).__name__} defines no on_<topic> handler; "
                f"expected one of {['on_' + t for t in TOPICS]}")
        return attached

    def detach(self, subscriber: Any) -> None:
        """Undo :meth:`attach` for ``subscriber``."""
        for topic in TOPICS:
            handler = getattr(subscriber, f"on_{topic}", None)
            if callable(handler) and handler in self._subs[topic]:
                self.unsubscribe(topic, handler)

    def subscriber_count(self, topic: str) -> int:
        return len(self._subs[topic])

    def subscribers(self, topic: str) -> List[Callable]:
        """The *live* callback list for ``topic`` (kept for the bus's
        lifetime, mutated in place by subscribe/unsubscribe).

        Hot-path publishers may hold this list and iterate it directly,
        skipping the ``emit`` call overhead — the router does this for
        the per-message ``traffic_*`` topics."""
        try:
            return self._subs[topic]
        except KeyError:
            raise ValueError(f"unknown probe topic {topic!r}; "
                             f"known topics: {TOPICS}") from None

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def emit(self, topic: str, event: Any) -> None:
        """Deliver ``event`` to every subscriber of ``topic``.

        Publishers should guard calls on the ``want_<topic>`` flag so no
        event object is built when nobody listens.
        """
        for cb in self._subs[topic]:
            cb(event)

    def emit_traffic_intra(self, size: int) -> None:
        for cb in self._subs["traffic_intra"]:
            cb(size)

    def emit_traffic_inter(self, src_cluster: int, dst_cluster: int,
                           size: int) -> None:
        for cb in self._subs["traffic_inter"]:
            cb(src_cluster, dst_cluster, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = [t for t in TOPICS if self._subs[t]]
        return f"ProbeBus(hot={hot})"
