"""Observability for the simulator: probe bus, metrics, exporters.

Layers (all optional — an un-instrumented run pays only the bus's
fast-path flag checks):

- :mod:`repro.obs.bus` — :class:`ProbeBus`, the typed event publisher the
  engine/machine/router/link layers emit into.
- :mod:`repro.obs.events` — the frozen event dataclasses.
- :mod:`repro.obs.metrics` — counters/gauges/log-binned histograms and
  the standard :class:`MetricsCollector` subscriber.
- :mod:`repro.obs.perfetto` — Chrome/Perfetto ``trace_event`` JSON export.
- :mod:`repro.obs.report` — JSON-lines run reports.
- :mod:`repro.obs.cli` — the ``python -m repro trace`` command (imported
  lazily by ``repro.__main__`` to avoid import cycles).

Typical instrumented run::

    from repro.obs import MetricsCollector, PerfettoTrace, ProbeBus

    bus = ProbeBus()
    metrics = MetricsCollector()
    trace = PerfettoTrace(topology=topo)
    bus.attach(metrics)
    bus.attach(trace)
    machine = Machine(topo, bus=bus)
    ...
    metrics.finalize(machine.runtime())
    trace.write("run.trace.json")
"""

from .bus import TOPICS, ProbeBus
from .events import (BlockEvent, ComputeEvent, DeliverEvent, GatewayEvent,
                     OpEvent, PhaseEvent, QueueEvent, SendEvent, UnblockEvent)
from .metrics import (Counter, Gauge, Histogram, MetricsCollector,
                      MetricsRegistry, TimeSeries)
from .perfetto import PerfettoTrace
from .report import (RunReporter, active_reporter, load_report, run_record,
                     set_reporter, topology_record)

__all__ = [
    "TOPICS",
    "ProbeBus",
    "SendEvent",
    "DeliverEvent",
    "ComputeEvent",
    "QueueEvent",
    "GatewayEvent",
    "BlockEvent",
    "UnblockEvent",
    "PhaseEvent",
    "OpEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "MetricsCollector",
    "PerfettoTrace",
    "RunReporter",
    "run_record",
    "topology_record",
    "set_reporter",
    "active_reporter",
    "load_report",
]
