"""Typed events published on the probe bus.

Every event is a small frozen dataclass carrying simulated-time fields
only — no wall-clock, no object references into mutable simulator state —
so subscribers can buffer them safely and exports built from them are
deterministic (same seed, same bytes).

``SendEvent``/``DeliverEvent``/``ComputeEvent`` are the classic trace
stream (re-exported by :mod:`repro.trace` for backwards compatibility);
the remaining types cover the resources the two-layer model contends on:
link serialization queues, gateway CPUs, blocked receivers, and
application-level collective phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SendEvent:
    """A message injected into the network (after routing classified it)."""

    time: float
    src: int
    dst: int
    size: int
    tag: Any
    inter_cluster: bool


@dataclass(frozen=True)
class DeliverEvent:
    """A message handed to the destination endpoint."""

    time: float
    src: int
    dst: int
    size: int
    tag: Any
    latency: float


@dataclass(frozen=True)
class ComputeEvent:
    """One reserved interval of CPU work on a rank."""

    start: float
    end: float
    rank: int


@dataclass(frozen=True)
class QueueEvent:
    """One transfer through a link, with its queueing delay.

    ``wait`` is how far behind the wire was when the message arrived
    (seconds of backlog — the queue depth of a bandwidth-serialized FIFO),
    ``duration`` the serialization time actually charged, ``end`` the time
    the wire went free again.
    """

    time: float
    link: str
    wait: float
    duration: float
    end: float
    size: int


@dataclass(frozen=True)
class GatewayEvent:
    """One message served by a cluster gateway CPU (store-and-forward)."""

    time: float
    cluster: int
    start: float
    end: float
    size: int


@dataclass(frozen=True)
class BlockEvent:
    """A process started blocking on a receive."""

    time: float
    rank: int
    tag: Any


@dataclass(frozen=True)
class UnblockEvent:
    """A blocked receive completed; ``waited`` is the blocked interval.

    The trailing fields describe the *releasing message* so subscribers
    (notably the :mod:`repro.critpath` profiler) can attribute the wait
    to its cause without correlating against the send/deliver streams:
    ``src``/``size`` identify the message, ``send_time`` is when it
    departed the sender (after host overhead), and ``inter_cluster``
    tells which link class carried it.  They default to "unknown" so
    hand-built events in older tests stay valid.
    """

    time: float
    rank: int
    tag: Any
    waited: float
    src: int = -1
    size: int = 0
    send_time: float = -1.0
    inter_cluster: bool = False


@dataclass(frozen=True)
class PhaseEvent:
    """A named application phase boundary (``kind`` is enter/exit)."""

    time: float
    rank: int
    name: str
    kind: str


@dataclass(frozen=True)
class FaultDropEvent:
    """A message dropped by an injected fault (loss/outage/crash).

    ``link`` names the WAN link or gateway (``"gw2"``) that ate the
    message, ``reason`` is ``"loss"``, ``"outage"`` or
    ``"gateway-crash"``; ``send_time`` is the depart time of the dropped
    message so subscribers can correlate it with its send event.
    """

    time: float
    link: str
    reason: str
    src: int
    dst: int
    size: int
    tag: Any
    send_time: float


@dataclass(frozen=True)
class FaultSpikeEvent:
    """A WAN transfer whose latency was inflated by a burst window."""

    time: float
    link: str
    base_latency: float
    latency: float
    size: int


@dataclass(frozen=True)
class FaultLinkEvent:
    """A scheduled fault window opened or closed (``kind`` is up/down).

    ``link`` is a WAN link name or ``"gw<cluster>"`` for gateway
    crash-and-recover transitions.
    """

    time: float
    link: str
    kind: str


@dataclass(frozen=True)
class RetransmitEvent:
    """The reliable WAN transport retransmitted one unacked message."""

    time: float
    src: int
    dst: int
    seq: int
    attempt: int
    rto: float
    size: int
    tag: Any


@dataclass(frozen=True)
class OpEvent:
    """One application-level operation, in per-process program order.

    Published on the ``op`` topic by the :class:`~repro.runtime.context`
    syscalls — the stream :class:`repro.whatif.record.Recorder` turns into
    a replayable communication DAG.  Unlike the transport-level topics
    (``send``/``deliver``/``queue``), ``op`` events carry the *logical*
    structure of the computation: which process did what, in what order,
    independent of when the network let it happen.

    ``kind`` is one of:

    - ``"compute"`` — ``duration`` seconds of CPU work on ``rank``;
    - ``"send"`` — point-to-point send (``dst``, ``size``, ``tag``);
    - ``"multicast"`` — intra-cluster multicast (``dst`` is a tuple);
    - ``"recv"`` — a blocking receive was *issued* (``tag``);
    - ``"recv_done"`` — that receive matched a message (``src``, ``size``);
    - ``"poll"`` — a non-blocking receive (``detail`` is the hit flag);
    - ``"sleep"`` — a simulated-time timer (``duration``), no CPU charged;
    - ``"spawn"`` — a service process was started (``detail`` is its name).
    """

    time: float
    proc: str
    rank: int
    daemon: bool
    kind: str
    dst: Any = None
    src: int = -1
    size: int = 0
    tag: Any = None
    duration: float = 0.0
    detail: Any = None


__all__ = [
    "SendEvent",
    "DeliverEvent",
    "ComputeEvent",
    "QueueEvent",
    "GatewayEvent",
    "BlockEvent",
    "UnblockEvent",
    "PhaseEvent",
    "FaultDropEvent",
    "FaultSpikeEvent",
    "FaultLinkEvent",
    "RetransmitEvent",
    "OpEvent",
]
