"""Chrome/Perfetto ``trace_event`` export of a simulated run.

:class:`PerfettoTrace` is a probe-bus subscriber that buffers events and
renders the Chrome trace-event JSON format (the ``{"traceEvents": [...]}``
object), loadable in https://ui.perfetto.dev or ``chrome://tracing``.

Track layout:

- pid 1 ``ranks`` — one thread per rank: compute slices, blocked-on-recv
  slices, collective-phase nesting (B/E), send/deliver instants.
- pid 2 ``links`` — one thread per link (first-seen order): transfer
  slices, plus a ``backlog_s`` counter track per link (queue depth).
- pid 3 ``gateways`` — one thread per cluster gateway CPU: service slices.

All timestamps are simulated microseconds.  The export is a pure function
of the simulated event stream — the same seed produces byte-identical
JSON (events are buffered in engine order and serialized with sorted
keys), which makes traces diffable across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .events import (ComputeEvent, DeliverEvent, GatewayEvent, PhaseEvent,
                     QueueEvent, SendEvent, UnblockEvent)

RANKS_PID = 1
LINKS_PID = 2
GATEWAYS_PID = 3


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds, ns-rounded for stable JSON."""
    return round(t * 1e6, 3)


class PerfettoTrace:
    """Buffers probe events and renders Chrome ``trace_event`` JSON."""

    def __init__(self, topology=None, max_events: int = 2_000_000) -> None:
        #: optional :class:`~repro.network.topology.Topology`, used only to
        #: label rank threads with their cluster.
        self.topology = topology
        self.max_events = max_events
        self.dropped = 0
        self._events: List[Dict[str, Any]] = []
        self._link_tids: Dict[str, int] = {}
        self._ranks_seen: Dict[int, bool] = {}
        self._clusters_seen: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    def _add(self, event: Dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def _rank_tid(self, rank: int) -> int:
        self._ranks_seen[rank] = True
        return rank + 1

    def _link_tid(self, link: str) -> int:
        tid = self._link_tids.get(link)
        if tid is None:
            tid = len(self._link_tids) + 1
            self._link_tids[link] = tid
        return tid

    # -- bus handlers ---------------------------------------------------
    def on_compute(self, ev: ComputeEvent) -> None:
        self._add({"name": "compute", "cat": "cpu", "ph": "X",
                   "ts": _us(ev.start), "dur": _us(ev.end - ev.start),
                   "pid": RANKS_PID, "tid": self._rank_tid(ev.rank)})

    def on_send(self, ev: SendEvent) -> None:
        self._add({"name": "send", "cat": "msg", "ph": "i", "s": "t",
                   "ts": _us(ev.time), "pid": RANKS_PID,
                   "tid": self._rank_tid(ev.src),
                   "args": {"dst": ev.dst, "size": ev.size,
                            "tag": str(ev.tag), "wan": ev.inter_cluster}})

    def on_deliver(self, ev: DeliverEvent) -> None:
        self._add({"name": "deliver", "cat": "msg", "ph": "i", "s": "t",
                   "ts": _us(ev.time), "pid": RANKS_PID,
                   "tid": self._rank_tid(ev.dst),
                   "args": {"src": ev.src, "size": ev.size,
                            "tag": str(ev.tag),
                            "latency_us": _us(ev.latency)}})

    def on_unblock(self, ev: UnblockEvent) -> None:
        # One slice covering the whole blocked interval, emitted at its end.
        self._add({"name": f"blocked {ev.tag}", "cat": "block", "ph": "X",
                   "ts": _us(ev.time - ev.waited), "dur": _us(ev.waited),
                   "pid": RANKS_PID, "tid": self._rank_tid(ev.rank)})

    def on_phase(self, ev: PhaseEvent) -> None:
        self._add({"name": ev.name, "cat": "phase",
                   "ph": "B" if ev.kind == "enter" else "E",
                   "ts": _us(ev.time), "pid": RANKS_PID,
                   "tid": self._rank_tid(ev.rank)})

    def on_queue(self, ev: QueueEvent) -> None:
        start = ev.time + ev.wait
        self._add({"name": f"xfer {ev.size}B", "cat": "link", "ph": "X",
                   "ts": _us(start), "dur": _us(ev.duration),
                   "pid": LINKS_PID, "tid": self._link_tid(ev.link)})
        self._add({"name": f"{ev.link} backlog_s", "cat": "link", "ph": "C",
                   "ts": _us(ev.time), "pid": LINKS_PID,
                   "args": {"backlog_s": round(ev.wait, 9)}})

    def on_gateway(self, ev: GatewayEvent) -> None:
        self._add({"name": f"gw c{ev.cluster}", "cat": "gateway", "ph": "X",
                   "ts": _us(ev.start), "dur": _us(ev.end - ev.start),
                   "pid": GATEWAYS_PID, "tid": ev.cluster + 1,
                   "args": {"size": ev.size,
                            "queued_us": _us(ev.start - ev.time)}})
        self._clusters_seen[ev.cluster] = True

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _metadata(self) -> List[Dict[str, Any]]:
        meta: List[Dict[str, Any]] = []

        def name_of(pid: int, label: str) -> None:
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": label}})

        def thread(pid: int, tid: int, label: str) -> None:
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": label}})

        name_of(RANKS_PID, "ranks")
        for rank in sorted(self._ranks_seen):
            label = f"rank {rank}"
            if self.topology is not None:
                label += f" (c{self.topology.cluster_of(rank)})"
            thread(RANKS_PID, rank + 1, label)
        if self._link_tids:
            name_of(LINKS_PID, "links")
            for link, tid in sorted(self._link_tids.items(), key=lambda kv: kv[1]):
                thread(LINKS_PID, tid, link)
        if self._clusters_seen:
            name_of(GATEWAYS_PID, "gateways")
            for cluster in sorted(self._clusters_seen):
                thread(GATEWAYS_PID, cluster + 1, f"gw c{cluster}")
        return meta

    def to_dict(self) -> Dict[str, Any]:
        return {
            "displayTimeUnit": "ms",
            "traceEvents": self._metadata() + self._events,
        }

    def to_json(self) -> str:
        """Deterministic serialization: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def write(self, path: str) -> int:
        """Write the trace JSON to ``path``; returns the event count."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)
