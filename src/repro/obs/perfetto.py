"""Chrome/Perfetto ``trace_event`` export of a simulated run.

:class:`PerfettoTrace` is a probe-bus subscriber that buffers events and
renders the Chrome trace-event JSON format (the ``{"traceEvents": [...]}``
object), loadable in https://ui.perfetto.dev or ``chrome://tracing``.

Track layout:

- pid 1 ``ranks`` — one thread per rank: compute slices, blocked-on-recv
  slices, collective-phase nesting (B/E), send/deliver instants.
- pid 2 ``links`` — one thread per link (first-seen order): transfer
  slices, a ``backlog_s`` counter track per link (queue depth), and
  fault instants (drops, latency spikes, link up/down transitions).
- pid 3 ``gateways`` — one thread per cluster gateway CPU: service
  slices plus a ``queued_s`` counter track (store-and-forward backlog).
- pid 4 ``critical path`` — one slice per step of an extracted critical
  path (see :meth:`PerfettoTrace.add_critical_path`), labelled with the
  step kind and, for message edges, the dominant resource bucket.

Reliable-transport retransmissions (``fault_retransmit``) land as
instants on the sending rank's thread, next to the send they repeat.

All timestamps are simulated microseconds.  The export is a pure function
of the simulated event stream — the same seed produces byte-identical
JSON (events are buffered in engine order and serialized with sorted
keys), which makes traces diffable across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .events import (ComputeEvent, DeliverEvent, FaultDropEvent,
                     FaultLinkEvent, FaultSpikeEvent, GatewayEvent,
                     PhaseEvent, QueueEvent, RetransmitEvent, SendEvent,
                     UnblockEvent)

RANKS_PID = 1
LINKS_PID = 2
GATEWAYS_PID = 3
CRITPATH_PID = 4


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds, ns-rounded for stable JSON."""
    return round(t * 1e6, 3)


class PerfettoTrace:
    """Buffers probe events and renders Chrome ``trace_event`` JSON."""

    def __init__(self, topology=None, max_events: int = 2_000_000) -> None:
        #: optional :class:`~repro.network.topology.Topology`, used only to
        #: label rank threads with their cluster.
        self.topology = topology
        self.max_events = max_events
        self.dropped = 0
        self._events: List[Dict[str, Any]] = []
        self._link_tids: Dict[str, int] = {}
        self._ranks_seen: Dict[int, bool] = {}
        self._clusters_seen: Dict[int, bool] = {}
        self._has_critpath = False

    # ------------------------------------------------------------------
    def _add(self, event: Dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def _rank_tid(self, rank: int) -> int:
        self._ranks_seen[rank] = True
        return rank + 1

    def _link_tid(self, link: str) -> int:
        tid = self._link_tids.get(link)
        if tid is None:
            tid = len(self._link_tids) + 1
            self._link_tids[link] = tid
        return tid

    # -- bus handlers ---------------------------------------------------
    def on_compute(self, ev: ComputeEvent) -> None:
        self._add({"name": "compute", "cat": "cpu", "ph": "X",
                   "ts": _us(ev.start), "dur": _us(ev.end - ev.start),
                   "pid": RANKS_PID, "tid": self._rank_tid(ev.rank)})

    def on_send(self, ev: SendEvent) -> None:
        self._add({"name": "send", "cat": "msg", "ph": "i", "s": "t",
                   "ts": _us(ev.time), "pid": RANKS_PID,
                   "tid": self._rank_tid(ev.src),
                   "args": {"dst": ev.dst, "size": ev.size,
                            "tag": str(ev.tag), "wan": ev.inter_cluster}})

    def on_deliver(self, ev: DeliverEvent) -> None:
        self._add({"name": "deliver", "cat": "msg", "ph": "i", "s": "t",
                   "ts": _us(ev.time), "pid": RANKS_PID,
                   "tid": self._rank_tid(ev.dst),
                   "args": {"src": ev.src, "size": ev.size,
                            "tag": str(ev.tag),
                            "latency_us": _us(ev.latency)}})

    def on_unblock(self, ev: UnblockEvent) -> None:
        # One slice covering the whole blocked interval, emitted at its end.
        self._add({"name": f"blocked {ev.tag}", "cat": "block", "ph": "X",
                   "ts": _us(ev.time - ev.waited), "dur": _us(ev.waited),
                   "pid": RANKS_PID, "tid": self._rank_tid(ev.rank)})

    def on_phase(self, ev: PhaseEvent) -> None:
        self._add({"name": ev.name, "cat": "phase",
                   "ph": "B" if ev.kind == "enter" else "E",
                   "ts": _us(ev.time), "pid": RANKS_PID,
                   "tid": self._rank_tid(ev.rank)})

    def on_queue(self, ev: QueueEvent) -> None:
        start = ev.time + ev.wait
        self._add({"name": f"xfer {ev.size}B", "cat": "link", "ph": "X",
                   "ts": _us(start), "dur": _us(ev.duration),
                   "pid": LINKS_PID, "tid": self._link_tid(ev.link)})
        self._add({"name": f"{ev.link} backlog_s", "cat": "link", "ph": "C",
                   "ts": _us(ev.time), "pid": LINKS_PID,
                   "args": {"backlog_s": round(ev.wait, 9)}})

    def on_gateway(self, ev: GatewayEvent) -> None:
        self._add({"name": f"gw c{ev.cluster}", "cat": "gateway", "ph": "X",
                   "ts": _us(ev.start), "dur": _us(ev.end - ev.start),
                   "pid": GATEWAYS_PID, "tid": ev.cluster + 1,
                   "args": {"size": ev.size,
                            "queued_us": _us(ev.start - ev.time)}})
        # Queue-depth counter: seconds of backlog when the message arrived.
        self._add({"name": f"gw c{ev.cluster} queued_s", "cat": "gateway",
                   "ph": "C", "ts": _us(ev.time), "pid": GATEWAYS_PID,
                   "args": {"queued_s": round(ev.start - ev.time, 9)}})
        self._clusters_seen[ev.cluster] = True

    def on_fault_drop(self, ev: FaultDropEvent) -> None:
        self._add({"name": f"drop ({ev.reason})", "cat": "fault", "ph": "i",
                   "s": "t", "ts": _us(ev.time), "pid": LINKS_PID,
                   "tid": self._link_tid(ev.link),
                   "args": {"src": ev.src, "dst": ev.dst, "size": ev.size,
                            "tag": str(ev.tag),
                            "send_time_us": _us(ev.send_time)}})

    def on_fault_spike(self, ev: FaultSpikeEvent) -> None:
        self._add({"name": "latency spike", "cat": "fault", "ph": "i",
                   "s": "t", "ts": _us(ev.time), "pid": LINKS_PID,
                   "tid": self._link_tid(ev.link),
                   "args": {"base_latency_us": _us(ev.base_latency),
                            "latency_us": _us(ev.latency),
                            "size": ev.size}})

    def on_fault_link(self, ev: FaultLinkEvent) -> None:
        self._add({"name": f"link {ev.kind}", "cat": "fault", "ph": "i",
                   "s": "t", "ts": _us(ev.time), "pid": LINKS_PID,
                   "tid": self._link_tid(ev.link)})

    def on_fault_retransmit(self, ev: RetransmitEvent) -> None:
        self._add({"name": f"retransmit #{ev.attempt}", "cat": "fault",
                   "ph": "i", "s": "t", "ts": _us(ev.time),
                   "pid": RANKS_PID, "tid": self._rank_tid(ev.src),
                   "args": {"dst": ev.dst, "seq": ev.seq,
                            "rto_us": _us(ev.rto), "size": ev.size,
                            "tag": str(ev.tag)}})

    # ------------------------------------------------------------------
    # Critical-path track
    # ------------------------------------------------------------------
    def add_critical_path(self, path) -> int:
        """Render an extracted :class:`~repro.critpath.path.CriticalPath`
        as a dedicated track (pid 4, one slice per step).

        Call after the run, before :meth:`write`.  Message edges are
        named by their dominant resource bucket and carry the per-edge
        decomposition/slack in ``args``; other steps are named by kind.
        Returns the number of slices added.
        """
        self._has_critpath = True
        added = 0
        for step in path.steps:
            if step.kind == "edge":
                name = f"edge [{step.resource}]"
                args = {"src_rank": step.src_rank, "dst_rank": step.rank,
                        "size": step.size, "wan_hops": step.hops,
                        "slack_us": _us(step.slack)}
                for bucket, v in sorted(step.components.items()):
                    if v != 0.0:
                        args[f"{bucket}_us"] = _us(v)
            else:
                name = f"{step.kind} {step.proc}"
                args = {"rank": step.rank}
            self._add({"name": name, "cat": "critpath", "ph": "X",
                       "ts": _us(step.start), "dur": _us(step.length),
                       "pid": CRITPATH_PID, "tid": 1, "args": args})
            added += 1
        return added

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _metadata(self) -> List[Dict[str, Any]]:
        meta: List[Dict[str, Any]] = []

        def name_of(pid: int, label: str) -> None:
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": label}})

        def thread(pid: int, tid: int, label: str) -> None:
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": label}})

        name_of(RANKS_PID, "ranks")
        for rank in sorted(self._ranks_seen):
            label = f"rank {rank}"
            if self.topology is not None:
                label += f" (c{self.topology.cluster_of(rank)})"
            thread(RANKS_PID, rank + 1, label)
        if self._link_tids:
            name_of(LINKS_PID, "links")
            for link, tid in sorted(self._link_tids.items(), key=lambda kv: kv[1]):
                thread(LINKS_PID, tid, link)
        if self._clusters_seen:
            name_of(GATEWAYS_PID, "gateways")
            for cluster in sorted(self._clusters_seen):
                thread(GATEWAYS_PID, cluster + 1, f"gw c{cluster}")
        if self._has_critpath:
            name_of(CRITPATH_PID, "critical path")
            thread(CRITPATH_PID, 1, "critical path")
        return meta

    def to_dict(self) -> Dict[str, Any]:
        return {
            "displayTimeUnit": "ms",
            "traceEvents": self._metadata() + self._events,
        }

    def to_json(self) -> str:
        """Deterministic serialization: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def write(self, path: str) -> int:
        """Write the trace JSON to ``path``; returns the event count."""
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)
