"""JSON-lines run reports: one machine-readable record per simulated run.

A run record captures what you need to regenerate or audit a data point:
harness metadata (app, variant, scale), seed, topology, simulated and
wall-clock time, the full traffic summary (including the inter-cluster
pair matrix), and — when a :class:`~repro.obs.metrics.MetricsCollector`
was attached — the metrics snapshot.

Reports are append-only JSON lines (one object per line, sorted keys),
so sweeps can be resumed, concatenated, and loaded with one-liners::

    import json
    records = [json.loads(l) for l in open("report.jsonl")]

Emission points:

- :func:`repro.runtime.run.run_spmd` emits to the *active reporter* —
  either one installed with :func:`set_reporter` or the path named by the
  ``REPRO_RUN_REPORT`` environment variable.  Because every experiment
  harness funnels through ``run_spmd``/``run_app``, setting that variable
  turns any existing harness into a report producer with no code changes.
- :class:`repro.experiments.runner.Sweeper` accepts an explicit
  ``reporter=`` for programmatic sweeps.
- ``python -m repro trace`` always writes one.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional


def topology_record(topology) -> Dict[str, Any]:
    """JSON-able summary of a :class:`~repro.network.topology.Topology`."""
    return {
        "clusters": list(topology.cluster_sizes),
        "num_ranks": topology.num_ranks,
        "wan_shape": topology.wan_shape,
        "local_latency_s": topology.local.latency,
        "local_bandwidth_byte_s": topology.local.bandwidth,
        "wan_latency_s": topology.wide.latency,
        "wan_bandwidth_byte_s": topology.wide.bandwidth,
        "gateway_overhead_s": topology.gateway_overhead,
        "gap_bandwidth": topology.gap_bandwidth(),
        "gap_latency": topology.gap_latency(),
        "describe": topology.describe(),
    }


def run_record(machine, runtime: float, wall_time_s: float,
               meta: Optional[Dict[str, Any]] = None,
               metrics=None) -> Dict[str, Any]:
    """Build one run-report record from a finished machine.

    ``metrics`` may be a :class:`~repro.obs.metrics.MetricsCollector` or a
    :class:`~repro.obs.metrics.MetricsRegistry` (anything with
    ``snapshot()``); pass the collector *after* calling ``finalize``.
    """
    record: Dict[str, Any] = {
        "kind": "run",
        "meta": dict(meta or {}),
        "seed": machine.seed,
        "topology": topology_record(machine.topology),
        "sim_time_s": runtime,
        "wall_time_s": wall_time_s,
        "engine_events": machine.engine.events_processed,
        "traffic": machine.stats.summary(),
    }
    if metrics is not None:
        record["metrics"] = metrics.snapshot()
    return record


def serve_job_record(job_snapshot: Dict[str, Any],
                     meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build one ``serve-job`` record from a finished service job.

    ``job_snapshot`` is :meth:`repro.serve.jobs.Job.snapshot` — id,
    terminal state, content hash, point/cache counters — so a serve
    report file reads like a sweep report file: one JSON line per unit
    of completed work, concatenable and greppable with the same
    one-liners.
    """
    record: Dict[str, Any] = {"kind": "serve-job", "job": dict(job_snapshot)}
    if meta:
        record["meta"] = dict(meta)
    return record


class RunReporter:
    """Appends JSON-lines records to a file (or any ``.write()`` stream)."""

    def __init__(self, path_or_stream) -> None:
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream
            self._owns = False
            self.path = getattr(path_or_stream, "name", "<stream>")
        else:
            self._stream = open(path_or_stream, "a")
            self._owns = True
            self.path = str(path_or_stream)
        self.records = 0

    def emit(self, record: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, sort_keys=True, default=str))
        self._stream.write("\n")
        self._stream.flush()
        self.records += 1

    def close(self) -> None:
        if self._owns and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "RunReporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Ambient reporter (explicit install beats the environment variable)
# ----------------------------------------------------------------------
_installed: Optional[RunReporter] = None
_env_reporter: Optional[RunReporter] = None
_env_path: Optional[str] = None


def set_reporter(reporter: Optional[RunReporter]) -> None:
    """Install (or with ``None``, remove) the process-wide reporter."""
    global _installed
    _installed = reporter


def active_reporter() -> Optional[RunReporter]:
    """The reporter every ``run_spmd`` emits to, or None.

    Resolution order: the reporter installed via :func:`set_reporter`,
    else a lazily opened reporter on ``$REPRO_RUN_REPORT``, else None.
    """
    if _installed is not None:
        return _installed
    path = os.environ.get("REPRO_RUN_REPORT")
    if not path:
        return None
    global _env_reporter, _env_path
    if _env_reporter is None or _env_path != path:
        if _env_reporter is not None:
            _env_reporter.close()
        _env_reporter = RunReporter(path)
        _env_path = path
    return _env_reporter


def load_report(path: str) -> list:
    """Read a JSON-lines report back into a list of records."""
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]
