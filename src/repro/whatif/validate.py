"""Cross-checking what-if predictions against ground-truth simulation.

Cornebize & Legrand's lesson on simulation-based sensitivity analysis is
that predictions are trustworthy only when validated against ground
truth.  The validator samples a few grid points (by default the four
corners of the requested bandwidth x latency grid — the extremes where a
recorded DAG is most likely to break), runs the full simulation there,
and compares the *relative speedup* both paths produce.  Errors are
reported in percentage points of the paper's y-axis.  When the worst
error exceeds the tolerance — or the recording itself is flagged
timing-sensitive — the caller must fall back to full simulation; the
:class:`~repro.experiments.runner.Sweeper` does this automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .evaluate import EvaluationError, Evaluator
from .record import Recording

#: Default maximum |predicted - simulated| relative speedup, in percentage
#: points, before the grid falls back to full simulation.
DEFAULT_TOLERANCE_PP = 5.0


@dataclass
class ValidationPoint:
    """Prediction vs ground truth at one sampled grid point."""

    bandwidth_mbyte_s: float
    latency_ms: float
    predicted_runtime: float
    simulated_runtime: float
    predicted_speedup_pct: float
    simulated_speedup_pct: float

    @property
    def error_pp(self) -> float:
        """|predicted - simulated| relative speedup, percentage points."""
        return abs(self.predicted_speedup_pct - self.simulated_speedup_pct)


@dataclass
class ValidationReport:
    """Outcome of validating one recording over sampled grid points."""

    app: str
    variant: str
    tolerance_pp: float
    points: List[ValidationPoint] = field(default_factory=list)
    fallback: bool = False
    reason: str = "ok"

    @property
    def max_error_pp(self) -> float:
        return max((p.error_pp for p in self.points), default=0.0)

    def summary(self) -> str:
        if self.fallback:
            return (f"{self.app}/{self.variant}: FALLBACK to full simulation "
                    f"({self.reason})")
        return (f"{self.app}/{self.variant}: predictions valid, max error "
                f"{self.max_error_pp:.2f} pp over {len(self.points)} sampled "
                f"points (tolerance {self.tolerance_pp:g} pp)")


def corner_points(bandwidths: Sequence[float],
                  latencies: Sequence[float]) -> List[Tuple[float, float]]:
    """The four corners of a grid — the default validation sample."""
    bws = sorted(bandwidths)
    lats = sorted(latencies)
    corners = [(bws[-1], lats[0]), (bws[-1], lats[-1]),
               (bws[0], lats[0]), (bws[0], lats[-1])]
    seen, out = set(), []
    for p in corners:
        if p not in seen:
            seen.add(p)
            out.append(p)
    return out


def validate(
    recording: Recording,
    baseline_runtime: float,
    simulate: Callable[[float, float], float],
    points: Sequence[Tuple[float, float]],
    tolerance_pp: float = DEFAULT_TOLERANCE_PP,
    evaluator: Optional[Evaluator] = None,
    topology_for: Optional[Callable[[float, float], "object"]] = None,
) -> ValidationReport:
    """Validate ``recording`` at ``points``; decide whether to fall back.

    ``simulate(bw, lat)`` must return the ground-truth multi-cluster
    runtime at a grid point (the Sweeper passes its cache-aware runner);
    ``baseline_runtime`` is the all-Myrinet T_L the speedups are relative
    to.  ``topology_for(bw, lat)`` builds the evaluation topology and
    defaults to the paper's 4x8 grid point.
    """
    report = ValidationReport(app=recording.app, variant=recording.variant,
                              tolerance_pp=tolerance_pp)
    if recording.timing_sensitive:
        report.fallback = True
        report.reason = ("timing-sensitive recording: "
                         + "; ".join(recording.sensitive_reasons))
        return report

    if topology_for is None:
        from ..experiments import grids

        def topology_for(bw: float, lat: float):
            return grids.multi_cluster(
                bw, lat,
                clusters=len(recording.dag.cluster_sizes),
                cluster_size=recording.dag.cluster_sizes[0])

    if evaluator is None:
        evaluator = Evaluator(recording.dag)

    for bw, lat in points:
        try:
            predicted = evaluator.evaluate(topology_for(bw, lat))
        except EvaluationError as err:
            report.fallback = True
            report.reason = f"evaluation failed at ({bw}, {lat}): {err}"
            return report
        simulated = simulate(bw, lat)
        report.points.append(ValidationPoint(
            bandwidth_mbyte_s=bw,
            latency_ms=lat,
            predicted_runtime=predicted,
            simulated_runtime=simulated,
            predicted_speedup_pct=100.0 * baseline_runtime / predicted,
            simulated_speedup_pct=100.0 * baseline_runtime / simulated,
        ))

    if report.max_error_pp > tolerance_pp:
        report.fallback = True
        report.reason = (f"max relative-speedup error "
                         f"{report.max_error_pp:.2f} pp exceeds tolerance "
                         f"{tolerance_pp:g} pp")
    return report
