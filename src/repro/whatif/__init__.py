"""What-if analysis: record a communication DAG once, evaluate anywhere.

The expensive way to answer "how does this application respond to WAN
bandwidth and latency?" is to re-simulate it at every grid point.  This
package implements the cheap way, in the spirit of LLAMP's LogGPS-based
network sensitivity analysis: run the app *once* under instrumentation
(:mod:`.record`), capture its link-parameter-independent communication
DAG, then replay that DAG analytically under any
:class:`~repro.network.linkspec.LinkSpec` parameterization
(:mod:`.evaluate`) — orders of magnitude faster than full simulation.
Predictions are cross-checked against ground truth at sampled grid
points (:mod:`.validate`); apps whose control flow depends on message
timing fall back to full simulation automatically.
"""

from .evaluate import EvaluationError, Evaluator
from .record import (
    REFERENCE_POINT,
    CommDag,
    ProcRecord,
    Recorder,
    Recording,
    record_app,
)
from .validate import (
    DEFAULT_TOLERANCE_PP,
    ValidationPoint,
    ValidationReport,
    corner_points,
    validate,
)

__all__ = [
    "CommDag",
    "DEFAULT_TOLERANCE_PP",
    "EvaluationError",
    "Evaluator",
    "ProcRecord",
    "REFERENCE_POINT",
    "Recorder",
    "Recording",
    "ValidationPoint",
    "ValidationReport",
    "corner_points",
    "record_app",
    "validate",
]
