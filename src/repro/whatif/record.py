"""Record-once communication DAGs from an instrumented run.

A :class:`Recorder` subscribes to the ``op`` topic of the probe bus (see
:class:`repro.obs.events.OpEvent`) and turns one simulated run into a
:class:`CommDag`: per-process ordered operation lists (compute intervals,
sends with destinations and sizes, receives matched to the *specific*
message that satisfied them) plus a channel table.  Everything recorded is
a property of the application's logical structure — no link latencies, no
bandwidths, no queueing — so the DAG can be re-evaluated under any
parameterization of the same cluster shape by
:class:`repro.whatif.evaluate.Evaluator`.

Message matching follows LLAMP's dependency-graph construction (Shen et
al.): each completed receive is pinned to the k-th message of its
``(src, dst, tag)`` channel, which is FIFO end-to-end in the transport
model, so the dependency edge survives parameter changes as long as the
application's *control flow* does.  Where it does not — work stealing,
arrival-order-driven protocols, non-blocking polls — the recording is
flagged ``timing_sensitive`` and callers fall back to full simulation
(see :mod:`repro.whatif.validate`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..apps import default_config, get_builder, is_timing_dependent
from ..experiments import grids
from ..network.topology import Topology
from ..obs.bus import ProbeBus
from ..obs.events import OpEvent
from ..runtime.run import run_spmd

# Compact op codes used in CommDag op tuples (and by the evaluator).
OP_COMPUTE = 0    # (OP_COMPUTE, duration)
OP_SEND = 1       # (OP_SEND, channel_id, size)
OP_RECV = 2       # (OP_RECV, channel_id, index_in_channel)
OP_MCAST = 3      # (OP_MCAST, (channel_id, ...), size)
OP_SPAWN = 4      # (OP_SPAWN, child_proc_index)
OP_POLL = 5       # (OP_POLL, channel_id_or_-1, index_or_-1)

#: Grid point a DAG is recorded at by default: mid-grid, so the recording
#: run exercises both layers without extreme queueing.
REFERENCE_POINT: Tuple[float, float] = (0.95, 3.3)


@dataclass
class ProcRecord:
    """One simulated process: its identity and ordered operations."""

    name: str
    rank: int
    daemon: bool
    ops: List[tuple] = field(default_factory=list)
    #: index of the spawning proc in CommDag.procs, or None for roots
    #: (the per-rank mains started by ``run_spmd``).
    spawned_by: Optional[int] = None


@dataclass
class CommDag:
    """A recorded, link-parameter-independent communication DAG."""

    procs: List[ProcRecord]
    #: channel_id -> (src_rank, dst_rank, tag); tags are kept for
    #: debugging only — the evaluator needs just the endpoints.
    channels: List[Tuple[int, int, Any]]
    cluster_sizes: Tuple[int, ...]
    #: True when the recording contains constructs whose control flow
    #: depends on message timing; predictions from such a DAG are invalid.
    timing_sensitive: bool = False
    sensitive_reasons: List[str] = field(default_factory=list)

    @property
    def num_ops(self) -> int:
        return sum(len(p.ops) for p in self.procs)

    @property
    def num_messages(self) -> int:
        n = 0
        for p in self.procs:
            for op in p.ops:
                if op[0] == OP_SEND:
                    n += 1
                elif op[0] == OP_MCAST:
                    n += len(op[1])
        return n


class Recorder:
    """Probe-bus subscriber building a :class:`CommDag` from ``op`` events."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._procs: List[ProcRecord] = []
        self._by_name: Dict[str, int] = {}
        self._channels: List[Tuple[int, int, Any]] = []
        self._channel_ids: Dict[Tuple[int, int, Any], int] = {}
        #: messages consumed so far per channel (receive-side index).
        self._recv_counts: Dict[int, int] = {}
        #: procs with a receive issued but not yet matched.
        self._pending_recv: Dict[int, bool] = {}
        self._reasons: List[str] = []

    # ------------------------------------------------------------------
    def _proc(self, event: OpEvent) -> ProcRecord:
        idx = self._by_name.get(event.proc)
        if idx is None:
            idx = len(self._procs)
            self._by_name[event.proc] = idx
            self._procs.append(ProcRecord(event.proc, event.rank, event.daemon))
        return self._procs[idx]

    def _channel(self, src: int, dst: int, tag: Any) -> int:
        key = (src, dst, tag)
        cid = self._channel_ids.get(key)
        if cid is None:
            cid = len(self._channels)
            self._channel_ids[key] = cid
            self._channels.append(key)
        return cid

    def _flag(self, reason: str) -> None:
        if reason not in self._reasons:
            self._reasons.append(reason)

    # ------------------------------------------------------------------
    def on_op(self, event: OpEvent) -> None:
        kind = event.kind
        proc = self._proc(event)
        if kind == "compute":
            proc.ops.append((OP_COMPUTE, event.duration))
        elif kind == "send":
            cid = self._channel(event.rank, event.dst, event.tag)
            proc.ops.append((OP_SEND, cid, event.size))
        elif kind == "multicast":
            cids = tuple(self._channel(event.rank, d, event.tag)
                         for d in event.dst)
            proc.ops.append((OP_MCAST, cids, event.size))
        elif kind == "recv":
            # Placeholder; filled by the matching recv_done.  A process is
            # strictly sequential, so at most one receive is pending.
            self._pending_recv[self._by_name[event.proc]] = True
            proc.ops.append((OP_RECV, -1, -1))
        elif kind == "recv_done":
            cid = self._channel(event.src, event.rank, event.tag)
            k = self._recv_counts.get(cid, 0)
            self._recv_counts[cid] = k + 1
            pidx = self._by_name[event.proc]
            if not self._pending_recv.pop(pidx, False):  # pragma: no cover
                raise RuntimeError(
                    f"recv_done without pending recv on {event.proc}")
            proc.ops[-1] = (OP_RECV, cid, k)
        elif kind == "poll":
            self._flag("non-blocking receive (recv_nowait) used")
            if event.detail:
                cid = self._channel(event.src, event.rank, event.tag)
                k = self._recv_counts.get(cid, 0)
                self._recv_counts[cid] = k + 1
                proc.ops.append((OP_POLL, cid, k))
            else:
                proc.ops.append((OP_POLL, -1, -1))
        elif kind == "sleep":
            # A timer is a fixed simulated delay; replaying it as compute
            # preserves the duration but not the "no CPU reserved"
            # semantics, so flag the recording — timer-driven protocols
            # are timing-dependent anyway.
            self._flag("sleep timer used")
            proc.ops.append((OP_COMPUTE, event.duration))
        elif kind == "spawn":
            child = event.detail
            if child in self._by_name:
                # A service name reused (e.g. repeated retry timers): the
                # op streams of the instances are indistinguishable.
                self._flag(f"service {child!r} spawned more than once")
            proc.ops.append((OP_SPAWN, child))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown op kind {kind!r}")

    # ------------------------------------------------------------------
    def finish(self) -> CommDag:
        """Seal the recording into a :class:`CommDag`."""
        by_name = self._by_name
        for pidx, proc in enumerate(self._procs):
            # Drop a dangling receive (a daemon parked when the run ended).
            if proc.ops and proc.ops[-1] == (OP_RECV, -1, -1):
                proc.ops.pop()
            # Resolve spawn targets to proc indices; mark parentage.
            for i, op in enumerate(proc.ops):
                if op[0] == OP_SPAWN:
                    cidx = by_name.get(op[1])
                    if cidx is None:
                        # Spawned but never emitted an op: nothing to replay.
                        proc.ops[i] = (OP_SPAWN, -1)
                    else:
                        self._procs[cidx].spawned_by = pidx
                        proc.ops[i] = (OP_SPAWN, cidx)
        return CommDag(
            procs=self._procs,
            channels=self._channels,
            cluster_sizes=self.topology.cluster_sizes,
            timing_sensitive=bool(self._reasons),
            sensitive_reasons=list(self._reasons),
        )


@dataclass
class Recording:
    """A :class:`CommDag` plus the ground truth of the run it came from."""

    dag: CommDag
    app: str
    variant: str
    scale: str
    seed: int
    topology: Topology
    #: simulated runtime of the recorded run (ground truth at this point).
    runtime: float
    #: host seconds spent recording (simulation + DAG construction).
    wall_time: float
    #: pre-recording order-stability hint from the static protocol
    #: analyzer (``stable | unstable | timing-sensitive``), or None when
    #: the analyzer could not label the app.  Advisory: the runtime
    #: probe stays the arbiter of the replay ladder.
    static_label: Optional[str] = None

    @property
    def timing_sensitive(self) -> bool:
        return self.dag.timing_sensitive

    @property
    def sensitive_reasons(self) -> List[str]:
        return self.dag.sensitive_reasons


def record_app(
    app: str,
    variant: str,
    topology: Optional[Topology] = None,
    scale: str = "bench",
    seed: int = 0,
    config: Any = None,
) -> Recording:
    """Run ``app``/``variant`` once with a :class:`Recorder` attached.

    ``topology`` defaults to the mid-grid :data:`REFERENCE_POINT` on the
    paper's 4x8 system.  Apps registered ``timing_dependent`` are recorded
    all the same (the run is also a ground-truth sample) but the DAG comes
    back flagged ``timing_sensitive``.
    """
    if topology is None:
        topology = grids.multi_cluster(*REFERENCE_POINT)
    if config is None:
        config = default_config(app, scale)
    # Pre-recording hint from the static protocol analyzer (advisory;
    # never blocks recording).
    from ..lint.proto.report import order_stability_label
    static_label = order_stability_label(app, variant)
    bus = ProbeBus()
    recorder = Recorder(topology)
    bus.subscribe("op", recorder.on_op)
    main = get_builder(app, variant)(config)
    # Host wall-time for the recording-cost report, not simulated time.
    wall_start = time.perf_counter()  # lint: ignore[wall-clock]
    result = run_spmd(topology, main, seed=seed, bus=bus,
                      report_meta={"app": app, "variant": variant,
                                   "harness": "whatif-record"})
    dag = recorder.finish()
    wall = time.perf_counter() - wall_start  # lint: ignore[wall-clock]
    if is_timing_dependent(app):
        dag.timing_sensitive = True
        dag.sensitive_reasons.insert(
            0, "app registered with timing-dependent control flow")
    return Recording(dag=dag, app=app, variant=variant, scale=scale, seed=seed,
                     topology=topology, runtime=result.runtime, wall_time=wall,
                     static_label=static_label)
