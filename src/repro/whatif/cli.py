"""``python -m repro whatif <app>`` — record-once sensitivity analysis.

Records one instrumented run of the app at the mid-grid reference point,
validates analytic predictions against full simulation at the grid
corners, then prints the complete Figure-3 panel computed by the
evaluator — plus a validation table and a record/evaluate/simulate speed
summary.  Timing-dependent apps (tsp, awari) report their fallback and
exit without predicting.
"""

from __future__ import annotations

import argparse
import time
from typing import Optional

from ..experiments import grids
from ..experiments.figure3 import render_panel
from ..experiments.report import render_table
from ..experiments.runner import Sweeper


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro whatif", description=__doc__)
    parser.add_argument("app", choices=list(grids.APPS))
    parser.add_argument("--variant", default="optimized",
                        choices=["unoptimized", "optimized"])
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tolerance-pp", type=float, default=5.0,
                        help="max |predicted - simulated| relative speedup "
                             "(percentage points) before falling back")
    args = parser.parse_args(argv)

    variant = args.variant
    if args.app == "fft" and variant == "optimized":
        variant = "unoptimized"  # the paper found no optimization for FFT
        print("note: fft has no optimized variant; using unoptimized\n")

    sweeper = Sweeper(scale=args.scale, seed=args.seed, predict=True,
                      tolerance_pp=args.tolerance_pp)
    # Host wall-time for the speedup report, not simulated time.
    wall_start = time.perf_counter()  # lint: ignore[wall-clock]
    grid = sweeper.speedup_grid(args.app, variant)
    wall = time.perf_counter() - wall_start  # lint: ignore[wall-clock]
    report = grid.validation

    if not grid.predicted:
        print(f"{args.app}/{variant}: fell back to full simulation")
        if report is not None:
            print(f"  reason: {report.reason}")
        print(f"  grid computed by simulation in {wall:.2f}s "
              f"({len(grid.points)} points)")
        print()
        print(render_panel(grid))
        return 0

    print(render_panel(grid))
    print()
    print(f"[whatif] {report.summary()}")
    rows = [[f"{p.bandwidth_mbyte_s:g}", f"{p.latency_ms:g}",
             f"{p.predicted_speedup_pct:6.2f}%",
             f"{p.simulated_speedup_pct:6.2f}%",
             f"{p.error_pp:.3f} pp"]
            for p in report.points]
    print(render_table(
        ["bw MByte/s", "latency ms", "predicted", "simulated", "error"],
        rows, title="Validation at grid corners (relative speedup)"))
    n_sim = len(report.points) + 1  # corners + baseline
    print(f"\nspeed: {len(grid.points)}-point grid in {wall:.2f}s total, "
          f"including 1 recording run and {n_sim} ground-truth simulations "
          f"for validation; see benchmarks/test_whatif_speedup.py for the "
          f"evaluator-vs-simulation ratio")
    return 0


if __name__ == "__main__":
    main()
