"""Analytic replay of a recorded :class:`~repro.whatif.record.CommDag`.

The evaluator predicts the runtime of an application under *any*
``LinkSpec``/``Topology`` parameterization of the recorded cluster shape
without re-running the application coroutines.  It is a longest-path
computation over the recorded dependency graph with the same first-order
resource model the simulator uses:

- per-rank **CPU clocks** serialize compute intervals (FIFO);
- per-rank **NIC links** serialize outgoing bytes (``size/bandwidth``),
  then propagate for the local latency;
- per-cluster **gateway CPUs** charge a fixed per-message service;
- per-pair **WAN links** serialize bytes at the wide bandwidth and
  propagate at the wide latency, one link per hop of the WAN route;
- per-cluster **gateway egress links** dispatch arriving WAN traffic onto
  the destination cluster's local network.

Process replay comes in two flavors:

**Main processes** advance strictly in recorded program order: their
control flow is the program text, and each receive is pinned to the
specific message that satisfied it (FIFO per channel, so the pin is
parameter-stable for deterministic apps).

**Daemon services** are reactive dispatchers — ``recv`` in a loop,
handle, repeat — whose recorded arrival order is a property of the
*recorded* link parameters, not of the program.  Replaying them in
recorded order manufactures false dependencies (a local request queued
behind a slow WAN reply it never waited for).  Instead the evaluator
splits a daemon's op stream into handler blocks (one receive plus the
work it triggered) and executes blocks in *delivery order*, exactly like
the event-driven server it models.

Processes advance greedily (plain arithmetic, no coroutines) until they
block on an undelivered message.  Because sends are asynchronous in the
simulator — the sender pays only the host overhead while the NIC/WAN
pipeline drains through the engine — every shared-resource reservation
(NIC, gateway CPU, WAN wire, gateway egress) can be deferred to a small
``(time, seq)`` event heap without perturbing any process clock.  The
heap hands out reservations in global time order, exactly how the
discrete-event router resolves contention, while the expensive part of
the simulation (driving application coroutines through the scheduler) is
replaced by table lookups.

Everything structural is compiled once per :class:`Evaluator`: main op
streams become receive-headed segments, daemon streams become handler
blocks, per-channel tables are cached per wiring.  Per evaluation, each
message then costs O(1) bookkeeping — a consumed ``(channel, k)`` pin is
unique and flattened to a global pin index at compile time, so delivery
resolves its waiter with a single flat-array load, and
daemons keep a ready-heap of delivered-but-unserved blocks instead of
rescanning their backlog.  A full simulation spends orders of magnitude
more work per message stepping coroutines through the scheduler; one
Figure-3 grid point evaluates in milliseconds (see
``benchmarks/test_whatif_speedup.py``).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from ..network.topology import Topology
from .record import (OP_COMPUTE, OP_MCAST, OP_POLL, OP_RECV, OP_SEND,
                     OP_SPAWN, CommDag)

# Heap event kinds (field 2 of the heap tuples).
_EV_SEND = 0      # book the sender NIC, then hand off or deliver
_EV_MCAST = 1     # book the sender NIC once, deliver to all destinations
_EV_GW = 2        # gateway CPU + one WAN hop
_EV_ARRIVE = 3    # destination gateway CPU + egress link, then deliver


class EvaluationError(RuntimeError):
    """The DAG could not be replayed to completion (inconsistent recording)."""


class _Proc:
    """Mutable replay state of one recorded process."""

    __slots__ = ("rank", "daemon", "root", "solo_cpu", "solo_send",
                 "started", "finished", "t", "pc", "segs", "prologue",
                 "blocks", "ready", "nserved")

    def __init__(self, rank: int, daemon: bool, root: bool,
                 solo_cpu: bool, solo_send: bool, segs, prologue,
                 blocks) -> None:
        self.rank = rank
        self.daemon = daemon
        self.root = root
        #: True when no other process computes on this rank, so the CPU
        #: clock degenerates to the process's own clock.
        self.solo_cpu = solo_cpu
        #: True when this is the rank's only sending process: its NIC
        #: bookings are then already in time order and skip the heap.
        self.solo_send = solo_send
        self.started = root
        self.finished = False
        self.t = 0.0
        self.pc = 0                # main: current segment index
        self.segs = segs           # main: ((cid, k, pid, body, fdur), ...);
                                   # cid<0 = segment with no recv head
        self.prologue = prologue   # daemon: ops before the first receive
        self.blocks = blocks       # daemon: ((cid, k, body), ...)
        self.ready: List[Tuple[float, int]] = []  # daemon: delivered blocks
        self.nserved = 0


class Evaluator:
    """Replays one :class:`CommDag` under arbitrary link parameters.

    Construct once per recording; :meth:`evaluate` may be called for any
    number of topologies (one Figure-3 grid = 42 calls on one instance).
    The op streams are compiled to segment/block form at construction and
    per-channel tables (endpoints, overheads, WAN routes) are cached per
    wiring — neither depends on bandwidth or latency, so a grid sweep
    pays only for the replay itself.
    """

    def __init__(self, dag: CommDag) -> None:
        if dag.timing_sensitive:
            raise EvaluationError(
                "refusing to evaluate a timing-sensitive DAG: "
                + "; ".join(dag.sensitive_reasons))
        self.dag = dag
        self._n_ranks = sum(dag.cluster_sizes)
        self._tables: Dict[tuple, tuple] = {}
        self._compile()

    def _compile(self) -> None:
        """Turn op streams into replay form: main segments, daemon blocks."""
        computing: Dict[int, int] = {}
        sending: Dict[int, int] = {}
        ch_count = [0] * len(self.dag.channels)
        for p in self.dag.procs:
            if any(op[0] == OP_COMPUTE for op in p.ops):
                computing[p.rank] = computing.get(p.rank, 0) + 1
            if any(op[0] in (OP_SEND, OP_MCAST) for op in p.ops):
                sending[p.rank] = sending.get(p.rank, 0) + 1
            for op in p.ops:
                if op[0] == OP_SEND:
                    ch_count[op[1]] += 1
                elif op[0] == OP_MCAST:
                    for c in op[1]:
                        ch_count[c] += 1

        # Flatten every (channel, k) pin to one global index: the DAG is
        # static, so per-evaluation delivery state can live in flat arrays
        # instead of a dict per channel.
        pin_off = [0] * len(ch_count)
        total = 0
        for cid, cnt in enumerate(ch_count):
            pin_off[cid] = total
            total += cnt
        self._pin_off = pin_off
        self._n_pins = total

        self._compiled = []
        for p in self.dag.procs:
            if any(op[0] == OP_POLL for op in p.ops):  # pragma: no cover
                raise EvaluationError(
                    f"poll op in {p.name} of a DAG not flagged "
                    f"timing-sensitive")
            # Split into receive-headed chunks:
            # (cid, k, pin-index, ops-after-the-recv); cid < 0 = no recv.
            head = (-1, -1, -1)
            chunks: List[Tuple[int, int, int, list]] = []
            body: List[tuple] = []
            for op in p.ops:
                if op[0] == OP_RECV:
                    chunks.append((head[0], head[1], head[2], body))
                    head = (op[1], op[2], pin_off[op[1]] + op[2])
                    body = []
                else:
                    body.append(op)
            chunks.append((head[0], head[1], head[2], body))
            solo = computing.get(p.rank, 0) <= 1
            solo_send = sending.get(p.rank, 0) <= 1
            if p.daemon:
                prologue = chunks[0][3]
                blocks = tuple((c, k, pid, tuple(b))
                               for c, k, pid, b in chunks[1:])
                self._compiled.append((p.rank, True, p.spawned_by is None,
                                       solo, solo_send, None, prologue,
                                       blocks))
            else:
                # A segment whose body is nothing but compute collapses to
                # a single duration (fdur >= 0); deliver() fast-forwards
                # such segments without entering the interpreter.
                segs = tuple(
                    (c, k, pid, tuple(b),
                     sum(op[1] for op in b)
                     if all(op[0] == OP_COMPUTE for op in b) else -1.0)
                    for c, k, pid, b in chunks)
                self._compiled.append((p.rank, False, p.spawned_by is None,
                                       solo, solo_send, segs, None, None))

    # ------------------------------------------------------------------
    def _channel_tables(self, topology: Topology) -> tuple:
        """Bandwidth/latency-independent per-channel constants, cached."""
        local, wide = topology.local, topology.wide
        key = (local.send_overhead, local.recv_overhead, wide.send_overhead,
               wide.recv_overhead, topology.wan_shape, topology.wan_hub)
        tables = self._tables.get(key)
        if tables is not None:
            return tables

        dag = self.dag
        cluster_of = topology.cluster_of
        n_ch = len(dag.channels)
        ch_src = [0] * n_ch
        ch_dst_cluster = [0] * n_ch
        ch_inter = [False] * n_ch
        ch_send_ov = [0.0] * n_ch
        ch_recv_ov = [0.0] * n_ch
        ch_hops: List[Tuple[Tuple[int, int], ...]] = [()] * n_ch
        for cid, (src, dst, _tag) in enumerate(dag.channels):
            sc, dc = cluster_of(src), cluster_of(dst)
            inter = sc != dc
            ch_src[cid] = src
            ch_dst_cluster[cid] = dc
            ch_inter[cid] = inter
            spec = wide if inter else local
            ch_send_ov[cid] = spec.send_overhead
            ch_recv_ov[cid] = spec.recv_overhead
            if inter:
                ch_hops[cid] = tuple(topology.wan_route(sc, dc))
        tables = (ch_src, ch_dst_cluster, ch_inter, ch_send_ov, ch_recv_ov,
                  ch_hops)
        self._tables[key] = tables
        return tables

    # ------------------------------------------------------------------
    def evaluate(self, topology: Topology) -> float:
        """Predicted runtime of the recorded application on ``topology``."""
        dag = self.dag
        if topology.cluster_sizes != dag.cluster_sizes:
            raise EvaluationError(
                f"topology shape {topology.cluster_sizes} does not match the "
                f"recorded shape {dag.cluster_sizes}")
        if topology.wan_variability is not None:
            raise EvaluationError(
                "cannot evaluate under WAN variability: the analytic replay "
                "models first-order contention only; simulate jittered "
                "topologies directly")

        local_lat = topology.local.latency
        local_bw = topology.local.bandwidth
        wide_lat = topology.wide.latency
        wide_bw = topology.wide.bandwidth
        local_send_ov = topology.local.send_overhead
        gw_service = topology.gateway_overhead
        n_clusters = topology.num_clusters

        (ch_src, ch_dst_cluster, ch_inter, ch_send_ov, ch_recv_ov,
         ch_hops) = self._channel_tables(topology)
        n_ch = len(ch_src)

        # Resource clocks (``next_free`` times, all starting idle).
        cpu_free = [0.0] * self._n_ranks
        nic_free = [0.0] * self._n_ranks
        gw_free = [0.0] * n_clusters
        gwout_free = [0.0] * n_clusters
        wan_free: Dict[Tuple[int, int], float] = {
            pair: 0.0 for pair in topology.wan_pairs()}

        procs = [_Proc(*c) for c in self._compiled]
        # Per-channel deliveries arrive in send order (the NIC and WAN
        # pipelines are FIFO per channel), so message k on channel cid is
        # pin ``pin_off[cid] + k`` and delivery state is three flat arrays:
        # how many landed per channel, when each pin landed, and who (if
        # anyone) is parked on it.
        pin_off = self._pin_off
        ch_next = [0] * n_ch
        dlv_at = [0.0] * self._n_pins
        pin_waiter: List = [None] * self._n_pins
        # Daemons wait on every handler block up front; their ready-heaps
        # then receive (delivery_time, block) pairs as messages land.
        for proc in procs:
            if proc.daemon:
                for bi, (_cid, _k, pid, _body) in enumerate(proc.blocks):
                    pin_waiter[pid] = (proc, bi)

        # Heap events: (time, seq, kind, channel-or-channels, size, hop).
        # Pops are monotone in time: processes only emit sends at or after
        # the delivery time that woke them, so reservations taken at pop
        # time replicate the engine's arrival-order contention handling.
        heap: List[tuple] = []
        seq = 0
        runnable: List[Tuple[_Proc, float]] = [(p, 0.0) for p in procs if p.root]
        runnable_append = runnable.append
        pop = heapq.heappop
        push = heapq.heappush

        def deliver(cid: int, at: float) -> None:
            k = ch_next[cid]
            ch_next[cid] = k + 1
            pid = pin_off[cid] + k
            dlv_at[pid] = at
            entry = pin_waiter[pid]
            if entry is not None:
                proc, bi = entry
                if bi >= 0:
                    push(proc.ready, (at, bi))
                    if proc.started:
                        runnable_append((proc, at))
                else:
                    # A parked main: this delivery is exactly the message
                    # heading its current segment, so complete the receive
                    # here and resume it past the head (skip=True) — no
                    # re-check, no round trip through the runnable list.
                    t = proc.t
                    if at > t:
                        t = at
                    t += ch_recv_ov[cid]
                    if not proc.solo_cpu:
                        run_main(proc, t, True)
                        return
                    # Compute-only segments on a solo-CPU rank (the
                    # overwhelming majority) advance the clock by a
                    # precomputed duration; fast-forward through them
                    # until the process parks, finishes, or needs the
                    # full interpreter.
                    segs = proc.segs
                    i = proc.pc
                    n = len(segs)
                    while True:
                        fdur = segs[i][4]
                        if fdur < 0.0:
                            proc.pc = i
                            run_main(proc, t, True)
                            return
                        t += fdur
                        i += 1
                        if i == n:
                            proc.pc = i
                            proc.t = t
                            proc.finished = True
                            return
                        seg = segs[i]
                        scid = seg[0]
                        if seg[1] < ch_next[scid]:
                            d = dlv_at[seg[2]]
                            if d > t:
                                t = d
                            t += ch_recv_ov[scid]
                        else:
                            proc.pc = i
                            proc.t = t
                            pin_waiter[seg[2]] = (proc, -1)
                            return

        def run_main(proc: _Proc, t: float, skip: bool) -> None:
            nonlocal seq
            segs = proc.segs
            i = proc.pc
            n = len(segs)
            rank = proc.rank
            solo = proc.solo_cpu
            solo_send = proc.solo_send
            while i < n:
                cid, k, pid, body, _fdur = segs[i]
                if skip:
                    skip = False
                elif cid >= 0:
                    if k < ch_next[cid]:
                        d = dlv_at[pid]
                        if d > t:
                            t = d
                        t += ch_recv_ov[cid]
                    else:
                        proc.pc = i
                        proc.t = t
                        pin_waiter[pid] = (proc, -1)
                        return
                for op in body:
                    code = op[0]
                    if code == OP_COMPUTE:
                        if solo:
                            t += op[1]
                        else:
                            # CpuClock.reserve: FIFO per rank.
                            start = cpu_free[rank]
                            if t > start:
                                start = t
                            t = start + op[1]
                            cpu_free[rank] = t
                    elif code == OP_SEND:
                        scid = op[1]
                        t += ch_send_ov[scid]
                        if solo_send:
                            # Sole sender on this rank: its NIC bookings
                            # arrive pre-sorted, so skip the heap round trip
                            # and book/deliver inline.
                            start = nic_free[rank]
                            if t > start:
                                start = t
                            end = start + op[2] / local_bw
                            nic_free[rank] = end
                            if ch_inter[scid]:
                                push(heap, (end + local_lat, seq, _EV_GW,
                                            scid, op[2], 0))
                                seq += 1
                            else:
                                deliver(scid, end + local_lat)
                        else:
                            push(heap, (t, seq, _EV_SEND, scid, op[2], 0))
                            seq += 1
                    elif code == OP_MCAST:
                        t += local_send_ov
                        if solo_send:
                            start = nic_free[rank]
                            if t > start:
                                start = t
                            end = start + op[2] / local_bw
                            nic_free[rank] = end
                            arrive_at = end + local_lat
                            for c in op[1]:
                                deliver(c, arrive_at)
                        else:
                            push(heap, (t, seq, _EV_MCAST, op[1], op[2], 0))
                            seq += 1
                    else:  # OP_SPAWN
                        child_idx = op[1]
                        if child_idx >= 0:
                            child = procs[child_idx]
                            if not child.started:
                                child.started = True
                                runnable_append((child, t))
                i += 1
            proc.pc = i
            proc.t = t
            proc.finished = True

        def run_daemon(proc: _Proc, now: float) -> None:
            nonlocal seq
            t = proc.t
            if now > t:
                t = now
            rank = proc.rank
            solo = proc.solo_cpu
            solo_send = proc.solo_send
            ready = proc.ready
            blocks = proc.blocks
            body = proc.prologue
            while True:
                if body is None:
                    # Serve whichever delivered message arrived first —
                    # reactive-server semantics, not recorded order.
                    if not ready:
                        break
                    at, bi = pop(ready)
                    cid, _k, _pid, body = blocks[bi]
                    if at > t:
                        t = at
                    t += ch_recv_ov[cid]
                    proc.nserved += 1
                for op in body:
                    code = op[0]
                    if code == OP_COMPUTE:
                        if solo:
                            t += op[1]
                        else:
                            start = cpu_free[rank]
                            if t > start:
                                start = t
                            t = start + op[1]
                            cpu_free[rank] = t
                    elif code == OP_SEND:
                        scid = op[1]
                        t += ch_send_ov[scid]
                        if solo_send:
                            # Sole sender on this rank: its NIC bookings
                            # arrive pre-sorted, so skip the heap round trip
                            # and book/deliver inline.
                            start = nic_free[rank]
                            if t > start:
                                start = t
                            end = start + op[2] / local_bw
                            nic_free[rank] = end
                            if ch_inter[scid]:
                                push(heap, (end + local_lat, seq, _EV_GW,
                                            scid, op[2], 0))
                                seq += 1
                            else:
                                deliver(scid, end + local_lat)
                        else:
                            push(heap, (t, seq, _EV_SEND, scid, op[2], 0))
                            seq += 1
                    elif code == OP_MCAST:
                        t += local_send_ov
                        if solo_send:
                            start = nic_free[rank]
                            if t > start:
                                start = t
                            end = start + op[2] / local_bw
                            nic_free[rank] = end
                            arrive_at = end + local_lat
                            for c in op[1]:
                                deliver(c, arrive_at)
                        else:
                            push(heap, (t, seq, _EV_MCAST, op[1], op[2], 0))
                            seq += 1
                    else:  # OP_SPAWN
                        child_idx = op[1]
                        if child_idx >= 0:
                            child = procs[child_idx]
                            if not child.started:
                                child.started = True
                                runnable_append((child, t))
                body = None
            proc.prologue = None
            proc.t = t
            if proc.nserved == len(blocks):
                proc.finished = True

        # Drain: run everything runnable, then advance the transport
        # pipeline one event at a time, waking processes as messages land.
        # Delivery times are known the moment a message's last resource is
        # booked, so deliver() is called directly from the booking event —
        # waking a process "early" in processing order is safe because its
        # clock advances to the (correct, future) delivery time and any
        # sends it emits land back on the heap in time order.
        while runnable or heap:
            while runnable:
                proc, at = runnable.pop()
                if proc.finished:
                    continue
                if proc.daemon:
                    if proc.ready or proc.prologue is not None:
                        run_daemon(proc, at)
                else:
                    t = proc.t
                    if at > t:
                        t = at
                    run_main(proc, t, False)
            if not heap:
                break
            at, _, kind, cid, size, hop_idx = pop(heap)
            if kind == _EV_SEND:
                # Book the sender's NIC (Link.transfer, FIFO in time order).
                rank = ch_src[cid]
                start = nic_free[rank]
                if at > start:
                    start = at
                end = start + size / local_bw
                nic_free[rank] = end
                if ch_inter[cid]:
                    push(heap, (end + local_lat, seq, _EV_GW, cid, size, 0))
                    seq += 1
                else:
                    deliver(cid, end + local_lat)
            elif kind == _EV_GW:
                # At the gateway of hops[hop_idx][0]: per-message
                # store-and-forward service, then the WAN wire.
                hops = ch_hops[cid]
                here, nxt = hops[hop_idx]
                start = gw_free[here]
                if at > start:
                    start = at
                ready_at = start + gw_service
                gw_free[here] = ready_at
                wstart = wan_free[(here, nxt)]
                if ready_at > wstart:
                    wstart = ready_at
                wend = wstart + size / wide_bw
                wan_free[(here, nxt)] = wend
                if hop_idx + 1 < len(hops):
                    # Star/ring shapes: store-and-forward at the
                    # intermediate cluster's gateway, then onward.
                    push(heap, (wend + wide_lat, seq, _EV_GW, cid, size,
                                hop_idx + 1))
                else:
                    push(heap, (wend + wide_lat, seq, _EV_ARRIVE, cid, size,
                                hop_idx + 1))
                seq += 1
            elif kind == _EV_ARRIVE:
                # Destination cluster: gateway service, then dispatch onto
                # the local network via the shared gateway egress link.
                dst_cluster = ch_dst_cluster[cid]
                start = gw_free[dst_cluster]
                if at > start:
                    start = at
                ready_at = start + gw_service
                gw_free[dst_cluster] = ready_at
                ostart = gwout_free[dst_cluster]
                if ready_at > ostart:
                    ostart = ready_at
                oend = ostart + size / local_bw
                gwout_free[dst_cluster] = oend
                deliver(cid, oend + local_lat)
            else:  # _EV_MCAST: one NIC transfer, many deliveries
                rank = ch_src[cid[0]]
                start = nic_free[rank]
                if at > start:
                    start = at
                end = start + size / local_bw
                nic_free[rank] = end
                arrive_at = end + local_lat
                for c in cid:
                    deliver(c, arrive_at)

        unfinished = [p for p in procs
                      if p.started and not p.finished and not p.daemon]
        if unfinished:
            names = [dag.procs[procs.index(p)].name for p in unfinished[:5]]
            raise EvaluationError(
                f"replay stalled with {len(unfinished)} main processes "
                f"blocked (first: {names}); the recording is inconsistent "
                f"with this parameterization")
        finish = [p.t for p in procs if p.root and not p.daemon]
        if not finish:
            raise EvaluationError("recording contains no main processes")
        return max(finish)
