"""Calibration constants pinning the simulator to the paper's Table 1.

The study's object is the *ratio* of communication to computation at the
paper's problem sizes on 200 MHz Pentium Pro nodes.  We cannot measure a
Pentium Pro, so per-operation CPU costs are free parameters chosen such
that the simulated single-cluster runs reproduce Table 1's runtimes,
speedups and traffic volumes (see ``repro.experiments.table1`` for the
check).  Everything downstream (Figures 1, 3, 4) then follows from the
network model with *no further tuning*.

All times in seconds, sizes in bytes.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Water (n-squared molecular dynamics, 1500 molecules, ~10 timesteps)
# ----------------------------------------------------------------------
#: CPU time for one intermolecular pair force evaluation.
WATER_SEC_PER_PAIR = 25.5e-6
#: CPU time for integrating one molecule (intra-molecular + bookkeeping).
WATER_SEC_PER_MOL_UPDATE = 40e-6
#: On-the-wire size of one molecule's position record (9 doubles).
WATER_POS_BYTES = 72
#: On-the-wire size of one accumulated force record.
WATER_FORCE_BYTES = 72

# ----------------------------------------------------------------------
# Barnes-Hut (BSP n-body, 64K bodies, theta-opening tree walks)
# ----------------------------------------------------------------------
#: CPU time per body-cell interaction in the force walk.
BARNES_SEC_PER_INTERACTION = 0.96e-6
#: Average interactions per body per iteration (~ opening parameter 1.0).
BARNES_INTERACTIONS_PER_BODY = 260
#: CPU time per body for tree construction, per iteration.
BARNES_SEC_TREE_PER_BODY = 8e-6
#: Locally-essential-tree exchange volume per processor pair per iteration.
BARNES_LET_BYTES_PER_PAIR = 10_800
#: Union-LET size for a whole remote cluster relative to one pair's LET
#: (the eight members' LETs overlap heavily; see apps/barnes/parallel.py).
BARNES_LET_UNION_FACTOR = 2.5
#: Size of one tree-node/body record inside a LET message.
BARNES_RECORD_BYTES = 48

# ----------------------------------------------------------------------
# ASP (Floyd-Warshall, 1500 x 1500 replicated distance matrix)
# ----------------------------------------------------------------------
#: CPU time per inner-loop relaxation (min/add on one matrix cell).
ASP_SEC_PER_CELL = 55e-9
#: On-the-wire size of one broadcast row (1500 half-word distances).
ASP_ROW_BYTES = 3_000

# ----------------------------------------------------------------------
# TSP (branch-and-bound, 16 cities, jobs = 5-city partial tours)
# ----------------------------------------------------------------------
#: Mean CPU time of one job's subtree search (heavy-tailed around this).
TSP_MEAN_JOB_SEC = 4.2e-3
#: Log-normal sigma of job durations (branch-and-bound subtrees vary).
TSP_JOB_SIGMA = 0.9
#: On-the-wire size of one job description (a partial tour).
TSP_JOB_BYTES = 40
#: Number of jobs at paper scale: 15*14*13*12 five-city prefixes.
TSP_PAPER_JOBS = 32_760

# ----------------------------------------------------------------------
# Awari (retrograde analysis, 9-stone database, 9 stages)
# ----------------------------------------------------------------------
#: CPU time to evaluate one game state (generate successors, hash).
AWARI_SEC_PER_EVAL = 25e-6
#: CPU time to apply one incoming value update.
AWARI_SEC_PER_UPDATE = 27e-6
#: CPU time to pack one update into an outgoing combined message.
AWARI_SEC_PER_PACK = 20e-6
#: On-the-wire size of one value update (packed state id + value).
AWARI_UPDATE_BYTES = 16
#: Updates generated per evaluated state (average successor fan-out).
AWARI_FANOUT = 1
#: Per-destination combining threshold of the original program.
AWARI_COMBINE_COUNT = 8

# ----------------------------------------------------------------------
# FFT (1-D transpose algorithm, 2^20 complex points)
# ----------------------------------------------------------------------
#: CPU time per butterfly (complex multiply-add pair).
FFT_SEC_PER_BUTTERFLY = 0.40e-6
#: Bytes of one complex sample on the wire (2 doubles).
FFT_ELEMENT_BYTES = 16
