"""Workload scales.

``paper``  — the exact problem sizes of Table 1 (1500 molecules, 64K
bodies, 1500x1500 matrix, 32760 TSP jobs, 9 Awari stages, 2^20-point FFT).

``bench``  — the default for sweeps: identical *per-step* message sizes,
per-step compute and concurrency structure, but fewer steps (iterations /
rows / jobs / stages).  Relative speedup — the paper's y-axis — is
invariant under this reduction (each step is an independent epoch of the
same communication pattern), which keeps the 500-run Figure 3 sweep fast.

``tiny``   — small *real-data* instances for correctness tests: the
parallel drivers carry actual numbers and their results are checked
against sequential reference kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class WorkloadScale:
    """Step counts for each application at one scale."""

    name: str
    water_molecules: int
    water_iterations: int
    barnes_bodies: int
    barnes_iterations: int
    asp_n: int
    tsp_jobs: int
    awari_stages: int
    awari_states_per_stage: int
    fft_points: int


PAPER = WorkloadScale(
    name="paper",
    water_molecules=1500,
    water_iterations=10,
    barnes_bodies=65_536,
    barnes_iterations=3,
    asp_n=1500,
    tsp_jobs=32_760,
    awari_stages=9,
    awari_states_per_stage=21_600,
    fft_points=1 << 20,
)

BENCH = WorkloadScale(
    name="bench",
    water_molecules=1500,
    water_iterations=2,
    barnes_bodies=65_536,
    barnes_iterations=1,
    asp_n=240,
    tsp_jobs=2_048,
    awari_stages=2,
    awari_states_per_stage=12_000,
    fft_points=1 << 20,
)

SCALES: Dict[str, WorkloadScale] = {"paper": PAPER, "bench": BENCH}


def get_scale(name: str) -> WorkloadScale:
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload scale {name!r}; choose from {sorted(SCALES)}"
        ) from None
