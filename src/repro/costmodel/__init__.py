"""Calibration constants and workload scales (see DESIGN.md section 2)."""

from . import calibration
from .workloads import BENCH, PAPER, SCALES, WorkloadScale, get_scale

__all__ = ["calibration", "BENCH", "PAPER", "SCALES", "WorkloadScale", "get_scale"]
