"""Orca-style shared objects: the programming model of the paper's apps."""

from .objects import ObjectSpec, Placement, choose_placement
from .runtime import ORCA_TAG, OrcaEnv

__all__ = ["ObjectSpec", "Placement", "choose_placement", "OrcaEnv", "ORCA_TAG"]
