"""The Orca runtime: replicated and owned shared objects on the simulator.

Write protocol for replicated objects (Orca's get-sequence-then-broadcast
scheme — the one ASP's description in the paper matches: "The sender ...
has to wait for a sequence number to arrive before it can continue"):

1. the writer RPCs the object's *sequencer* (its home rank's service) for
   the next sequence number;
2. the writer forwards the write to every cluster leader's service (one
   WAN message per remote cluster), which multicasts it locally;
3. every replica applies writes strictly in sequence order (hold-back
   queue), so all replicas traverse identical state histories;
4. the writer's own replica, on applying the write, hands the operation's
   result back to the waiting process.

Reads on replicated objects touch only the local replica: zero messages.
Owned (non-replicated) objects execute every operation at their home rank
via RPC.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Mapping, Optional, Tuple

from ..runtime.context import CONTROL_BYTES, Context
from .objects import ObjectSpec, Placement

ORCA_TAG = "orca-svc"


class _Store:
    """Per-rank object states plus the write-ordering bookkeeping."""

    def __init__(self) -> None:
        self.state: Dict[str, Any] = {}
        self.applied: Dict[str, int] = {}          # obj -> last applied seq
        self.holdback: Dict[Tuple[str, int], Any] = {}
        self.next_seq: Dict[str, int] = {}         # sequencer counters (home)
        self.write_counts: Dict[str, int] = {}
        self.read_counts: Dict[str, int] = {}


class OrcaEnv:
    """Per-rank handle on the shared-object space.

    Construct one per rank with identical ``specs`` and ``placements``;
    then ``result = yield from env.invoke(name, op, *args)``.
    """

    def __init__(self, ctx: Context, specs: Iterable[ObjectSpec],
                 placements: Optional[Mapping[str, Placement]] = None) -> None:
        self.ctx = ctx
        self.specs: Dict[str, ObjectSpec] = {s.name: s for s in specs}
        self.placements: Dict[str, Placement] = {
            name: (placements or {}).get(name, Placement())
            for name in self.specs
        }
        self._store = _Store()
        for name, spec in self.specs.items():
            placement = self.placements[name]
            if placement.replicated or placement.home == ctx.rank:
                self._store.state[name] = spec.initial()
            self._store.applied[name] = -1
            self._store.next_seq[name] = 0
        ctx.spawn_service(self._service, name="orca")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def invoke(self, name: str, op: str, *args: Any) -> Generator:
        """Perform operation ``op`` on object ``name``; returns its result."""
        spec = self.specs[name]
        placement = self.placements[name]
        is_write = spec.is_write(op)

        if placement.replicated:
            if not is_write:
                # Local read on the replica: CPU cost only, no messages.
                yield self.ctx.compute(spec.op_cost)
                self._store.read_counts[name] = \
                    self._store.read_counts.get(name, 0) + 1
                return spec.operation(op)(self._store.state[name], *args)
            result = yield from self._replicated_write(spec, placement, op, args)
            return result

        # Owned object: everything happens at the home rank.
        if self.ctx.rank == placement.home:
            yield self.ctx.compute(spec.op_cost)
            counts = (self._store.write_counts if is_write
                      else self._store.read_counts)
            counts[name] = counts.get(name, 0) + 1
            return spec.operation(op)(self._store.state[name], *args)
        reply = yield from self.ctx.rpc(
            placement.home, ORCA_TAG, spec.op_bytes,
            {"kind": "op", "obj": name, "op": op, "args": args})
        return reply

    def _replicated_write(self, spec: ObjectSpec, placement: Placement,
                          op: str, args: Tuple) -> Generator:
        ctx = self.ctx
        # 1. Synchronously fetch the sequence number (the latency the
        #    paper's ASP optimization attacks).
        seq = yield from ctx.rpc(placement.home, ORCA_TAG, CONTROL_BYTES,
                                 {"kind": "wseq", "obj": spec.name})
        # 2. Fan the write out: one message per cluster leader.
        topo = ctx.topology
        payload = {"kind": "wapply", "obj": spec.name, "seq": seq,
                   "op": op, "args": args, "writer": ctx.rank}
        for cid in topo.clusters():
            yield ctx.send(topo.cluster_leader(cid), spec.op_bytes,
                           ORCA_TAG, {"kind": "wfwd", "inner": payload})
        # 3. Wait for the local replica to reach this write's slot.
        msg = yield ctx.recv(("orca-wres", spec.name, seq))
        return msg.payload

    # Convenience accessors ------------------------------------------------
    def local_state(self, name: str) -> Any:
        """Direct (test/debug) access to this rank's replica state."""
        return self._store.state.get(name)

    def stats(self, name: str) -> Dict[str, int]:
        return {
            "reads": self._store.read_counts.get(name, 0),
            "writes": self._store.write_counts.get(name, 0),
            "applied_seq": self._store.applied.get(name, -1),
        }

    # ------------------------------------------------------------------
    # Service (one daemon per rank)
    # ------------------------------------------------------------------
    def _service(self, ctx: Context) -> Generator:
        store = self._store
        topo = ctx.topology
        members = list(topo.cluster_members(ctx.cluster))

        def apply_ready(obj: str) -> Generator:
            """Drain the hold-back queue in sequence order."""
            spec = self.specs[obj]
            while (obj, store.applied[obj] + 1) in store.holdback:
                seq = store.applied[obj] + 1
                entry = store.holdback.pop((obj, seq))
                yield ctx.compute(spec.op_cost)
                result = spec.operation(entry["op"])(store.state[obj],
                                                     *entry["args"])
                store.applied[obj] = seq
                store.write_counts[obj] = store.write_counts.get(obj, 0) + 1
                if entry["writer"] == ctx.rank:
                    yield ctx.send(ctx.rank, CONTROL_BYTES,
                                   ("orca-wres", obj, seq), result)

        while True:
            msg = yield ctx.recv(ORCA_TAG)
            req = msg.payload
            body = req.body if hasattr(req, "body") else req
            kind = body["kind"]

            if kind == "wseq":
                obj = body["obj"]
                seq = store.next_seq[obj]
                store.next_seq[obj] = seq + 1
                yield ctx.reply(msg, CONTROL_BYTES, seq)

            elif kind == "wfwd":
                inner = body["inner"]
                spec = self.specs[inner["obj"]]
                others = [r for r in members if r != ctx.rank]
                if others:
                    yield ctx.multicast(others, spec.op_bytes, ORCA_TAG, inner)
                store.holdback[(inner["obj"], inner["seq"])] = inner
                yield from apply_ready(inner["obj"])

            elif kind == "wapply":
                store.holdback[(body["obj"], body["seq"])] = body
                yield from apply_ready(body["obj"])

            elif kind == "op":
                spec = self.specs[body["obj"]]
                yield ctx.compute(spec.op_cost)
                result = spec.operation(body["op"])(store.state[body["obj"]],
                                                    *body["args"])
                counts = (store.write_counts if spec.is_write(body["op"])
                          else store.read_counts)
                counts[body["obj"]] = counts.get(body["obj"], 0) + 1
                yield ctx.reply(msg, spec.op_bytes, result)

            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown orca request {kind!r}")
