"""Orca-style shared objects.

Five of the paper's six applications are written in Orca [Bal et al.,
TOCS 16(1)], whose runtime hides communication behind *shared objects*:
an object is either **replicated** on every processor (reads are local;
writes go through a totally-ordered broadcast serialized by a sequencer)
or **owned** by one processor (every operation is an RPC).  The runtime
picks the strategy from the read/write ratio.

This package rebuilds that model on the simulator: it is the layer in
which ASP's replicated distance matrix, TSP's job-queue object and the
Water position objects "live" in the original programs.

Objects are declared with :class:`ObjectSpec`; operations are plain
functions over the object state, split into reads and writes::

    COUNTER = ObjectSpec(
        name="counter",
        initial=lambda: {"value": 0},
        reads={"get": lambda state: state["value"]},
        writes={"add": lambda state, amount: state.__setitem__(
            "value", state["value"] + amount)},
    )

Writes must be deterministic: every replica applies the same sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

ReadOp = Callable[..., Any]
WriteOp = Callable[..., Any]


@dataclass(frozen=True)
class ObjectSpec:
    """Declaration of a shared object type."""

    name: str
    initial: Callable[[], Any]
    reads: Mapping[str, ReadOp] = field(default_factory=dict)
    writes: Mapping[str, WriteOp] = field(default_factory=dict)
    #: estimated on-the-wire size of an operation's arguments/results
    op_bytes: int = 64
    #: CPU time to execute one operation on the state
    op_cost: float = 2e-6

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("object needs a name")
        overlap = set(self.reads) & set(self.writes)
        if overlap:
            raise ValueError(f"operations declared as both read and write: {overlap}")
        if not self.reads and not self.writes:
            raise ValueError(f"object {self.name!r} declares no operations")

    def operation(self, op: str) -> Callable[..., Any]:
        if op in self.reads:
            return self.reads[op]
        if op in self.writes:
            return self.writes[op]
        raise KeyError(f"object {self.name!r} has no operation {op!r}")

    def is_write(self, op: str) -> bool:
        if op in self.writes:
            return True
        if op in self.reads:
            return False
        raise KeyError(f"object {self.name!r} has no operation {op!r}")


@dataclass(frozen=True)
class Placement:
    """Where an object lives.

    ``replicated=True``: a replica on every rank, writes totally ordered
    through the sequencer on ``home`` (reads are free).
    ``replicated=False``: single copy on ``home``, all operations RPC.
    """

    replicated: bool = True
    home: int = 0


def choose_placement(reads_per_write: float, num_ranks: int,
                     home: int = 0) -> Placement:
    """The Orca RTS heuristic, simplified: replicate when the object is
    read at least as often as it is written *per processor* (replication
    turns p reads local at the cost of one ordered broadcast per write)."""
    return Placement(replicated=reads_per_write >= 1.0, home=home)
