"""Barnes-Hut: BSP n-body with locally-essential-tree exchange."""

from . import kernel
from .parallel import BarnesConfig, make_optimized, make_unoptimized

__all__ = ["kernel", "BarnesConfig", "make_optimized", "make_unoptimized"]
