"""Sequential Barnes-Hut kernel: octree, multipole moments, theta-walks,
and locally-essential-tree (LET) extraction.

The parallel code (Blackston & Suel style) partitions bodies spatially;
each rank builds an octree over its own bodies and ships the *locally
essential* part of that tree — the nodes a remote region needs under the
opening criterion — to every other rank before the force phase.  The LET
selection here uses the conservative minimum-distance criterion, so a
receiver may simply sum the shipped items: every shipped node is
acceptable (by the multipole acceptance criterion) for *every* point of
the receiving region.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

EPS = 1e-2  # force softening


class OctreeNode:
    """One node of a Barnes-Hut octree over a cubic cell."""

    __slots__ = ("center", "half", "mass", "com", "children", "body", "count")

    def __init__(self, center: np.ndarray, half: float) -> None:
        self.center = center
        self.half = half                      # half the cell edge length
        self.mass = 0.0
        self.com = np.zeros(3)
        self.children: Optional[List[Optional["OctreeNode"]]] = None
        self.body: Optional[int] = None       # body index if leaf with one body
        self.count = 0

    def _octant(self, pos: np.ndarray) -> int:
        return ((pos[0] > self.center[0]) * 1
                + (pos[1] > self.center[1]) * 2
                + (pos[2] > self.center[2]) * 4)

    def _child_for(self, pos: np.ndarray) -> "OctreeNode":
        if self.children is None:
            self.children = [None] * 8
        idx = self._octant(pos)
        child = self.children[idx]
        if child is None:
            offset = np.array([
                self.half / 2 if pos[0] > self.center[0] else -self.half / 2,
                self.half / 2 if pos[1] > self.center[1] else -self.half / 2,
                self.half / 2 if pos[2] > self.center[2] else -self.half / 2,
            ])
            child = OctreeNode(self.center + offset, self.half / 2)
            self.children[idx] = child
        return child

    def insert(self, index: int, pos: np.ndarray, all_pos: np.ndarray,
               depth: int = 0) -> None:
        """Insert body ``index``; splits leaves as needed."""
        if self.count == 0:
            self.body = index
            self.count = 1
            return
        if self.count == 1 and depth < 64:
            # Split: push the resident body down, then insert the new one.
            resident = self.body
            self.body = None
            self._child_for(all_pos[resident]).insert(resident, all_pos[resident],
                                                      all_pos, depth + 1)
            self.count = 0  # recounted below
            self.count = 1
        self.count += 1
        if depth >= 64:  # pathological coincident points: keep as multi-leaf
            return
        self._child_for(pos).insert(index, pos, all_pos, depth + 1)


def bounding_cube(pos: np.ndarray) -> Tuple[np.ndarray, float]:
    """Center and half-size of a cube covering all positions."""
    lo, hi = pos.min(axis=0), pos.max(axis=0)
    center = (lo + hi) / 2
    half = float((hi - lo).max() / 2) or 0.5
    return center, half * 1.001 + 1e-9


def build_octree(pos: np.ndarray, mass: np.ndarray) -> OctreeNode:
    """Octree over the given bodies, with moments computed."""
    center, half = bounding_cube(pos)
    root = OctreeNode(center, half)
    for i in range(len(pos)):
        root.insert(i, pos[i], pos)
    compute_moments(root, pos, mass)
    return root


def compute_moments(node: OctreeNode, pos: np.ndarray, mass: np.ndarray) -> None:
    """Fill mass and center-of-mass bottom-up."""
    if node.body is not None:
        node.mass = float(mass[node.body])
        node.com = pos[node.body].astype(float)
        return
    total = 0.0
    com = np.zeros(3)
    if node.children:
        for child in node.children:
            if child is not None and child.count:
                compute_moments(child, pos, mass)
                total += child.mass
                com += child.mass * child.com
    node.mass = total
    node.com = com / total if total > 0 else node.center.astype(float)


def _accel_from(point: np.ndarray, source: np.ndarray, mass: float) -> np.ndarray:
    delta = source - point
    r2 = float(delta @ delta) + EPS
    return mass * delta / (r2 * np.sqrt(r2))


def force_on(point: np.ndarray, node: OctreeNode, theta: float,
             skip_body: Optional[int] = None) -> Tuple[np.ndarray, int]:
    """Theta-walk force on a point; returns (force, interactions)."""
    if node.count == 0:
        return np.zeros(3), 0
    if node.body is not None:
        if node.body == skip_body:
            return np.zeros(3), 0
        return _accel_from(point, node.com, node.mass), 1
    delta = node.com - point
    dist = float(np.sqrt(delta @ delta)) + 1e-12
    if node.half * 2 / dist < theta:
        return _accel_from(point, node.com, node.mass), 1
    total = np.zeros(3)
    interactions = 0
    for child in (node.children or []):
        if child is not None and child.count:
            f, n = force_on(point, child, theta, skip_body)
            total += f
            interactions += n
    return total, interactions


def min_dist_to_box(point: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    """Distance from a point to an axis-aligned box (0 inside)."""
    clamped = np.minimum(np.maximum(point, lo), hi)
    delta = point - clamped
    return float(np.sqrt(delta @ delta))


def _box_gap(node: OctreeNode, lo: np.ndarray, hi: np.ndarray) -> float:
    """Minimum distance between the node's cell and the target box."""
    n_lo = node.center - node.half
    n_hi = node.center + node.half
    gap = np.maximum(np.maximum(lo - n_hi, n_lo - hi), 0.0)
    return float(np.sqrt(gap @ gap))


def let_items(node: OctreeNode, lo: np.ndarray, hi: np.ndarray,
              theta: float) -> List[Tuple[np.ndarray, float]]:
    """Locally essential tree of ``node`` for target region [lo, hi].

    Returns (position, mass) items such that summing their direct
    contributions reproduces a conservative theta-walk for every point in
    the region: a node is shipped as a single item only when it satisfies
    the acceptance criterion at the region's *closest* point.
    """
    if node.count == 0:
        return []
    if node.body is not None:
        return [(node.com.copy(), node.mass)]
    gap = _box_gap(node, lo, hi)
    if gap > 0 and node.half * 2 / gap < theta:
        return [(node.com.copy(), node.mass)]
    items: List[Tuple[np.ndarray, float]] = []
    for child in (node.children or []):
        if child is not None and child.count:
            items.extend(let_items(child, lo, hi, theta))
    return items


def force_from_items(point: np.ndarray,
                     items: List[Tuple[np.ndarray, float]]) -> np.ndarray:
    """Sum direct contributions of LET items at a point."""
    total = np.zeros(3)
    for source, mass in items:
        total += _accel_from(point, source, mass)
    return total


def direct_forces(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """O(n^2) reference accelerations (softened)."""
    n = len(pos)
    delta = pos[None, :, :] - pos[:, None, :]
    r2 = (delta ** 2).sum(axis=-1) + EPS
    np.fill_diagonal(r2, np.inf)
    inv = mass[None, :] / (r2 * np.sqrt(r2))
    return (inv[:, :, None] * delta).sum(axis=1)


def morton_order(pos: np.ndarray, bits: int = 10) -> np.ndarray:
    """Body permutation along a Z-order curve (compact spatial blocks)."""
    lo, hi = pos.min(axis=0), pos.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    q = np.clip(((pos - lo) / span * (2 ** bits - 1)).astype(np.int64),
                0, 2 ** bits - 1)
    keys = np.zeros(len(pos), dtype=np.int64)
    for bit in range(bits):
        for dim in range(3):
            keys |= ((q[:, dim] >> bit) & 1) << (3 * bit + dim)
    return np.argsort(keys, kind="stable")


def random_bodies(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Plummer-ish random cluster: positions, masses, velocities."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(0.0, 1.0, size=(n, 3))
    mass = rng.uniform(0.5, 1.5, size=n) / n
    vel = rng.normal(0.0, 0.05, size=(n, 3))
    return pos, mass, vel
