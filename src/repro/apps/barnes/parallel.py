"""Parallel Barnes-Hut: BSP supersteps with precomputed LET exchange.

Unoptimized (uniform-network design)
    Blackston & Suel's BSP code: each iteration, every rank sends one
    combined LET message to *every other rank* (per-recipient message
    combining is standard BSP practice), with strict barrier-separated
    supersteps.  On a multi-cluster, each sender pays p - cluster_size
    WAN messages per iteration and the barriers serialize on the WAN.

Optimized (the paper's improvement)
    1. Each sender combines the messages for all recipients in the same
       remote cluster into a single message to that cluster's gateway
       rank, which dispatches them locally (WAN messages per sender drop
       from 24 to 3 on the 4x8 system; bytes are unchanged).
    2. The strict barriers are relaxed: receives are matched by explicit
       iteration sequence numbers instead (no global synchronization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ...costmodel import calibration as cal
from ...runtime.barrier import flat_barrier
from ...runtime.context import Context
from ...runtime.reduction import linear_reduce
from ..base import register_app
from ..blockdist import partition
from . import kernel

LET_TAG = "bh-let"
GW_TAG = "bh-gw"
BBOX_TAG = "bh-bbox"


@dataclass
class BarnesConfig:
    """Problem size and cost parameters."""

    bodies: int = 65_536
    iterations: int = 1
    theta: float = 0.6
    real_data: bool = False
    seed: int = 0
    sec_per_interaction: float = cal.BARNES_SEC_PER_INTERACTION
    interactions_per_body: float = cal.BARNES_INTERACTIONS_PER_BODY
    sec_tree_per_body: float = cal.BARNES_SEC_TREE_PER_BODY
    let_bytes_per_pair: int = cal.BARNES_LET_BYTES_PER_PAIR
    #: Size of one *union* LET for a whole remote cluster, relative to a
    #: single pair's LET.  The eight recipients' LETs overlap heavily (they
    #: are spatially adjacent), so their union is far smaller than their sum
    #: — the bandwidth half of the cluster-combining optimization.
    let_union_factor: float = cal.BARNES_LET_UNION_FACTOR
    record_bytes: int = cal.BARNES_RECORD_BYTES
    dt: float = 0.05
    #: Ablation knob: None follows the variant (unoptimized = strict BSP
    #: barriers, optimized = sequence-number receives); True/False forces.
    strict_barriers: Optional[bool] = None


def _gateway_service(ctx: Context) -> Generator:
    """Cluster gateway daemon (optimized variant): unpacks combined LET
    bundles from remote senders and dispatches them to local recipients."""
    while True:
        msg = yield ctx.recv(GW_TAG)
        for dst, size, tag, payload in msg.payload:
            yield ctx.send(dst, size, tag, payload)


def _let_payload_and_size(cfg: BarnesConfig, tree, lo, hi) -> Tuple[Any, int]:
    if cfg.real_data:
        items = kernel.let_items(tree, lo, hi, cfg.theta)
        return items, max(1, len(items)) * cfg.record_bytes
    return None, cfg.let_bytes_per_pair


def _let_union_payload_and_size(cfg: BarnesConfig, tree, boxes) -> Tuple[Any, int]:
    """One LET covering a whole remote cluster's combined region.

    The conservative acceptance criterion over the union box is valid for
    every member region it contains, so all recipients can share it.
    """
    if cfg.real_data:
        import numpy as np

        lo = np.min([b[0] for b in boxes], axis=0)
        hi = np.max([b[1] for b in boxes], axis=0)
        items = kernel.let_items(tree, lo, hi, cfg.theta)
        return items, max(1, len(items)) * cfg.record_bytes
    return None, int(cfg.let_bytes_per_pair * cfg.let_union_factor)


def _make_driver(cfg: BarnesConfig, optimized: bool) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        p = ctx.num_ranks
        rank = ctx.rank
        topo = ctx.topology
        n = cfg.bodies
        counts = [len(partition(n, p, r)) for r in range(p)]
        barrier_seq = [0]
        strict = cfg.strict_barriers
        if strict is None:
            strict = not optimized

        def superstep_barrier():
            """Strict BSP barrier (unoptimized default; the optimized code
            relies on iteration-tagged receives instead)."""
            if strict:
                barrier_seq[0] += 1
                return flat_barrier(ctx, ("bh", barrier_seq[0]))
            return iter(())  # no-op generator

        pos = vel = mass = None
        if cfg.real_data:
            all_pos, all_mass, all_vel = kernel.random_bodies(n, cfg.seed)
            order = kernel.morton_order(all_pos)
            mine = partition(n, p, rank)
            sel = order[mine.start:mine.stop]
            pos = all_pos[sel].copy()
            mass = all_mass[sel].copy()
            vel = all_vel[sel].copy()

        gateway = topo.cluster_leader(ctx.cluster)
        if optimized and rank == gateway and topo.num_clusters > 1:
            ctx.spawn_service(_gateway_service, name="bh-gateway")

        for it in range(cfg.iterations):
            # ----- Superstep 1: local tree construction --------------------
            yield ctx.compute(counts[rank] * cfg.sec_tree_per_body)
            tree = None
            regions: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            if cfg.real_data:
                tree = kernel.build_octree(pos, mass)
                # All ranks need each other's bounding boxes to build LETs:
                # a cheap allgather of 48-byte boxes.
                my_box = (pos.min(axis=0), pos.max(axis=0))
                for r in range(p):
                    if r != rank:
                        yield ctx.send(r, 48, (BBOX_TAG, it), my_box)
                regions[rank] = my_box
                for _ in range(p - 1):
                    msg = yield ctx.recv((BBOX_TAG, it))
                    regions[msg.src] = msg.payload

            # ----- Superstep 2: LET exchange -------------------------------
            tag = (LET_TAG, it)
            if optimized and topo.num_clusters > 1:
                # One combined message per remote cluster, via its gateway.
                for cid in topo.clusters():
                    if cid == ctx.cluster:
                        for dst in topo.cluster_members(cid):
                            if dst == rank:
                                continue
                            payload, size = _let_payload_and_size(
                                cfg, tree, *(regions.get(dst) or (None, None)))
                            yield ctx.send(dst, size, tag, (rank, payload))
                    else:
                        # One *union* LET for the whole remote cluster: the
                        # members' regions are spatially adjacent, so their
                        # LETs overlap heavily and the union is much smaller
                        # than their sum.  The gateway forwards a copy to
                        # each member (cheap local traffic).  The original
                        # sender rides inside the payload because the
                        # gateway's forwards carry its own rank as source.
                        members = list(topo.cluster_members(cid))
                        boxes = [regions[dst] for dst in members]                             if cfg.real_data else None
                        payload, size = _let_union_payload_and_size(
                            cfg, tree, boxes)
                        bundle = [(dst, size, tag, (rank, payload))
                                  for dst in members]
                        yield ctx.send(topo.cluster_leader(cid), size,
                                       GW_TAG, bundle)
            else:
                for dst in range(p):
                    if dst == rank:
                        continue
                    payload, size = _let_payload_and_size(
                        cfg, tree, *(regions.get(dst) or (None, None)))
                    yield ctx.send(dst, size, tag, (rank, payload))

            remote_lets: Dict[int, Any] = {}
            for _ in range(p - 1):
                msg = yield ctx.recv(tag)
                sender, let_payload = msg.payload
                remote_lets[sender] = let_payload
            yield from superstep_barrier()

            # ----- Superstep 3: force computation --------------------------
            if cfg.real_data:
                forces = np.zeros_like(pos)
                interactions = 0
                for i in range(len(pos)):
                    f, cnt = kernel.force_on(pos[i], tree, cfg.theta, skip_body=i)
                    interactions += cnt
                    for src in sorted(remote_lets):
                        items = remote_lets[src]
                        f = f + kernel.force_from_items(pos[i], items)
                        interactions += len(items)
                    forces[i] = f
                yield ctx.compute(interactions * cfg.sec_per_interaction)
            else:
                yield ctx.compute(counts[rank] * cfg.interactions_per_body
                                  * cfg.sec_per_interaction)
            yield from superstep_barrier()

            # ----- Superstep 4: integration --------------------------------
            yield ctx.compute(counts[rank] * cfg.sec_tree_per_body * 0.25)
            if cfg.real_data:
                vel = vel + cfg.dt * forces
                pos = pos + cfg.dt * vel
            yield from superstep_barrier()

        return (pos, vel) if cfg.real_data else None

    return main


def make_unoptimized(cfg: BarnesConfig) -> Callable[[Context], Generator]:
    return _make_driver(cfg, optimized=False)


def make_optimized(cfg: BarnesConfig) -> Callable[[Context], Generator]:
    return _make_driver(cfg, optimized=True)


def _default_config(scale: str) -> BarnesConfig:
    from ...costmodel import get_scale

    ws = get_scale(scale)
    return BarnesConfig(bodies=ws.barnes_bodies, iterations=ws.barnes_iterations)


register_app("barnes", "unoptimized", make_unoptimized, _default_config)
register_app("barnes", "optimized", make_optimized)
