"""Sequential Water kernel: n-squared molecular dynamics.

A faithful-in-structure stand-in for the Splash-2 "n-squared" Water code:
molecules in a periodic box interact pairwise (soft Lennard-Jones-like
force, no cutoff — every pair interacts, which is what makes the
communication all-to-half), then positions are integrated.

The parallel drivers in :mod:`repro.apps.water.parallel` reuse these
functions on real data at test scale; ``serial_water`` is the reference
the parallel results are checked against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

BOX_SIZE = 10.0
DT = 1e-3
SOFTENING = 0.5


def init_molecules(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Random initial positions in the box and small random velocities."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, BOX_SIZE, size=(n, 3))
    velocities = rng.normal(0.0, 0.05, size=(n, 3))
    return positions, velocities


def pair_forces(pos_a: np.ndarray, pos_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Forces between two disjoint molecule groups.

    Returns ``(force_on_a, force_on_b)`` with Newton's third law holding
    exactly: ``force_on_b = -sum-contributions`` of the same pair terms.
    """
    # delta[i, j] = pos_a[i] - pos_b[j]
    delta = pos_a[:, None, :] - pos_b[None, :, :]
    # Minimum-image convention in the periodic box.
    delta -= BOX_SIZE * np.round(delta / BOX_SIZE)
    r2 = np.sum(delta * delta, axis=-1) + SOFTENING
    # Soft 1/r^2-style repulsion with a 1/r^4 core (smooth, bounded).
    magnitude = 1.0 / (r2 * r2)
    pairwise = magnitude[:, :, None] * delta
    return pairwise.sum(axis=1), -pairwise.sum(axis=0)


def parity_mask(n_mine: int, n_other: int, parity: int) -> np.ndarray:
    """Boolean mask over (mine, other) pairs with ``(i + j) % 2 == parity``.

    Used to split the p/2-distant "tie" partner's pair set exactly in half
    between the two owners (lower rank takes parity 0, upper parity 1).
    """
    i = np.arange(n_mine)[:, None]
    j = np.arange(n_other)[None, :]
    return (i + j) % 2 == parity


def pair_forces_masked(
    pos_mine: np.ndarray, pos_other: np.ndarray, keep: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Like :func:`pair_forces` but only over pairs where ``keep`` is True."""
    delta = pos_mine[:, None, :] - pos_other[None, :, :]
    delta -= BOX_SIZE * np.round(delta / BOX_SIZE)
    r2 = np.sum(delta * delta, axis=-1) + SOFTENING
    magnitude = np.where(keep, 1.0 / (r2 * r2), 0.0)
    pairwise = magnitude[:, :, None] * delta
    return pairwise.sum(axis=1), -pairwise.sum(axis=0)


def internal_forces(pos: np.ndarray) -> np.ndarray:
    """Forces within one molecule group (each unordered pair counted once)."""
    n = len(pos)
    forces = np.zeros_like(pos)
    if n < 2:
        return forces
    delta = pos[:, None, :] - pos[None, :, :]
    delta -= BOX_SIZE * np.round(delta / BOX_SIZE)
    r2 = np.sum(delta * delta, axis=-1) + SOFTENING
    np.fill_diagonal(r2, np.inf)
    magnitude = 1.0 / (r2 * r2)
    forces = (magnitude[:, :, None] * delta).sum(axis=1)
    return forces


def integrate(
    positions: np.ndarray, velocities: np.ndarray, forces: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One leapfrog-ish Euler step, wrapped into the periodic box."""
    velocities = velocities + DT * forces
    positions = np.mod(positions + DT * velocities, BOX_SIZE)
    return positions, velocities


def total_forces(positions: np.ndarray) -> np.ndarray:
    """Direct O(n^2) forces on all molecules — the serial reference."""
    return internal_forces(positions)


def serial_water(
    n: int, iterations: int, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference simulation: returns final (positions, velocities)."""
    positions, velocities = init_molecules(n, seed)
    for _ in range(iterations):
        forces = total_forces(positions)
        positions, velocities = integrate(positions, velocities, forces)
    return positions, velocities


def partition(n: int, p: int, rank: int) -> range:
    """Contiguous block of molecule indices owned by ``rank`` (balanced)."""
    base, extra = divmod(n, p)
    start = rank * base + min(rank, extra)
    return range(start, start + base + (1 if rank < extra else 0))
