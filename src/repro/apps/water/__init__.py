"""Water: n-squared molecular dynamics with all-to-half communication."""

from . import kernel
from .parallel import (WaterConfig, make_optimized, make_unoptimized, need_set,
                       providers, tie_parity, tie_partner)

__all__ = ["kernel", "WaterConfig", "make_optimized", "make_unoptimized",
           "need_set", "providers", "tie_parity", "tie_partner"]
