"""Parallel Water: all-to-half exchange, unoptimized vs. cluster-aware.

Unoptimized (uniform-network design)
    Every iteration, each rank pushes its molecule positions to the p/2
    ranks that compute against them, and later sends each of those owners
    a force-update message.  On a 4-cluster machine 75% of these O(p^2)
    messages cross the WAN, and the same position data crosses the same
    WAN link up to 8 times.

Optimized (the paper's improvement)
    Per remote owner ``q``, one rank in each cluster acts as *local
    coordinator* for ``q``.  Position reads become an intra-cluster RPC to
    the coordinator, which fetches the data over the WAN once per
    iteration and serves cached copies locally.  Force updates are
    combined (added) at the coordinator, so only the reduced result
    crosses the WAN — the two-level reduction tree of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

import numpy as np

from ...costmodel import calibration as cal
from ...runtime.context import CONTROL_BYTES, Context
from ..base import register_app
from . import kernel

SVC_TAG = "water-svc"


@dataclass
class WaterConfig:
    """Problem size and cost parameters (defaults: paper scale constants)."""

    molecules: int = 1500
    iterations: int = 2
    real_data: bool = False
    seed: int = 0
    sec_per_pair: float = cal.WATER_SEC_PER_PAIR
    sec_per_update: float = cal.WATER_SEC_PER_MOL_UPDATE
    sec_per_force_add: float = 0.2e-6
    pos_bytes: int = cal.WATER_POS_BYTES
    force_bytes: int = cal.WATER_FORCE_BYTES


# ----------------------------------------------------------------------
# Ownership structure (who computes which pair, who talks to whom)
# ----------------------------------------------------------------------
def need_set(rank: int, p: int) -> List[int]:
    """Owners whose positions ``rank`` fetches and computes against.

    ``rank`` handles partners at cyclic distance 1..p/2.  For even p the
    p/2-distant "tie" partner appears in *both* owners' need sets and the
    pair work is split exactly in half by index parity (the Splash Water
    scheme), keeping the load balanced.
    """
    if p <= 1:
        return []
    half = p // 2
    return [(rank + d) % p for d in range(1, half + 1)]


def tie_partner(rank: int, p: int) -> Optional[int]:
    """The p/2-distant partner whose pair set is split by parity (even p)."""
    if p > 1 and p % 2 == 0:
        return (rank + p // 2) % p
    return None


def tie_parity(rank: int, p: int) -> int:
    """Which parity of (i + j) this rank computes against its tie partner."""
    tie = tie_partner(rank, p)
    return 0 if tie is None or rank < tie else 1


def providers(rank: int, p: int) -> List[int]:
    """Ranks that compute against ``rank``'s molecules.

    They need ``rank``'s positions and send force updates back; by
    symmetry this is the complement half of :func:`need_set` (the tie
    partner, if any, appears in both).
    """
    return [r for r in range(p) if rank in need_set(r, p)]


def _tie_pair_count(n_mine: int, n_other: int, parity: int) -> int:
    """Number of (i, j) pairs in an n x m grid with (i + j) % 2 == parity."""
    total = n_mine * n_other
    if n_mine % 2 and n_other % 2:
        return (total + 1) // 2 if parity == 0 else total // 2
    return total // 2


def _counts(cfg: WaterConfig, p: int) -> List[int]:
    return [len(kernel.partition(cfg.molecules, p, r)) for r in range(p)]


def _pair_compute_time(cfg: WaterConfig, rank: int, p: int, counts: List[int]) -> float:
    my_count = counts[rank]
    pairs = my_count * (my_count - 1) // 2
    tie = tie_partner(rank, p)
    for q in need_set(rank, p):
        if q == tie:
            pairs += _tie_pair_count(my_count, counts[q], tie_parity(rank, p))
        else:
            pairs += my_count * counts[q]
    return pairs * cfg.sec_per_pair


def _compute_forces_real(cfg: WaterConfig, rank: int, p: int, pos, partner_pos):
    """Real-data force phase: my accumulated forces + per-owner contributions."""
    my_forces = kernel.internal_forces(pos)
    forces_for = {}
    tie = tie_partner(rank, p)
    for q in need_set(rank, p):
        other = partner_pos[q]
        if q == tie:
            mask = kernel.parity_mask(len(pos), len(other), tie_parity(rank, p))
            f_mine, f_theirs = kernel.pair_forces_masked(pos, other, mask)
        else:
            f_mine, f_theirs = kernel.pair_forces(pos, other)
        my_forces += f_mine
        forces_for[q] = f_theirs
    return my_forces, forces_for


# ----------------------------------------------------------------------
# Unoptimized driver
# ----------------------------------------------------------------------
def make_unoptimized(cfg: WaterConfig) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        p = ctx.num_ranks
        rank = ctx.rank
        counts = _counts(cfg, p)
        mine = kernel.partition(cfg.molecules, p, rank)
        partners_out = need_set(rank, p)   # I read positions / send updates
        partners_in = providers(rank, p)   # they read mine / send me updates

        state: Dict[str, Any] = {"published": {}}
        ctx.spawn_service(
            lambda c: _water_service(c, cfg, counts, state), name="water-svc"
        )

        pos = vel = None
        if cfg.real_data:
            all_pos, all_vel = kernel.init_molecules(cfg.molecules, cfg.seed)
            pos = all_pos[mine.start:mine.stop].copy()
            vel = all_vel[mine.start:mine.stop].copy()

        for it in range(cfg.iterations):
            # Publish this iteration's positions, then read each partner's
            # positions with a synchronous shared-object RPC — the Orca
            # program's access pattern.  On a multi-cluster, 75% of these
            # blocking reads pay the WAN round trip, every iteration.
            state["published"][it] = pos
            yield ctx.send(rank, CONTROL_BYTES, SVC_TAG, {"kind": "pub", "iter": it})
            partner_pos: Dict[int, Any] = {}
            for q in partners_out:
                yield ctx.send(q, CONTROL_BYTES, SVC_TAG,
                               {"kind": "fetch", "iter": it, "reply_to": rank,
                                "reply_tag": ("pos", it, q)})
                msg = yield ctx.recv(("pos", it, q))
                partner_pos[q] = msg.payload

            # Force computation (charged; real arithmetic at test scale).
            yield ctx.compute(_pair_compute_time(cfg, rank, p, counts))
            forces_for: Dict[int, Any] = {}
            my_forces = None
            if cfg.real_data:
                my_forces, forces_for = _compute_forces_real(
                    cfg, rank, p, pos, partner_pos)

            # Send accumulated contributions back to each owner.
            for q in partners_out:
                yield ctx.send(q, counts[q] * cfg.force_bytes, ("frc", it),
                               payload=forces_for.get(q))
            for _ in partners_in:
                msg = yield ctx.recv(("frc", it))
                if cfg.real_data:
                    my_forces += msg.payload

            # Integration.
            yield ctx.compute(counts[rank] * cfg.sec_per_update)
            if cfg.real_data:
                pos, vel = kernel.integrate(pos, vel, my_forces)

        return pos if cfg.real_data else None

    return main


# ----------------------------------------------------------------------
# Optimized driver: coordinator caching + two-level force reduction
# ----------------------------------------------------------------------
def _coordinator_for(ctx: Context, q: int, cluster: int) -> int:
    """The rank in ``cluster`` acting as local coordinator for owner ``q``."""
    members = list(ctx.topology.cluster_members(cluster))
    return members[q % len(members)]


def _local_dependents(ctx: Context, cluster: int, q: int, p: int) -> List[int]:
    """Members of ``cluster`` that compute against owner ``q``."""
    return [r for r in ctx.topology.cluster_members(cluster)
            if q in need_set(r, p)]


def _send_positions(ctx: Context, cfg: WaterConfig, counts: List[int],
                    fetch_request: Dict[str, Any], positions: Any) -> Generator:
    """Answer a position fetch: to the requester's service inbox by default,
    or to an explicit reply tag (direct synchronous reads)."""
    it = fetch_request["iter"]
    size = counts[ctx.rank] * cfg.pos_bytes
    reply_tag = fetch_request.get("reply_tag")
    if reply_tag is not None:
        yield ctx.send(fetch_request["reply_to"], size, reply_tag, positions)
    else:
        yield ctx.send(fetch_request["reply_to"], size, SVC_TAG,
                       {"kind": "fetchreply", "q": ctx.rank, "iter": it,
                        "pos": positions})


def _water_service(ctx: Context, cfg: WaterConfig, counts: List[int],
                   state: Dict[str, Any]) -> Generator:
    """Per-rank daemon: serves position fetches and reduces force updates.

    All requests arrive on one inbox and are dispatched on ``kind``; the
    service never blocks on anything but its inbox, so coordinator-to-
    coordinator traffic cannot deadlock.
    """
    p = ctx.num_ranks
    published: Dict[int, Any] = state["published"]
    fetch_waiters: Dict[int, List[Any]] = {}          # iter -> parked fetches
    cache: Dict[Any, Any] = {}                        # (q, iter) -> positions
    cache_waiters: Dict[Any, List[Any]] = {}          # (q, iter) -> reply tags
    served: Dict[Any, int] = {}                       # (q, iter) -> replies sent
    reductions: Dict[Any, Dict[str, Any]] = {}        # (q, iter) -> partial sum

    def expected_requesters(q: int) -> int:
        return len(_local_dependents(ctx, ctx.cluster, q, p))

    while True:
        msg = yield ctx.recv(SVC_TAG)
        req = msg.payload
        kind = req["kind"]

        if kind == "pub":
            it = req["iter"]
            for fetch in fetch_waiters.pop(it, []):
                yield from _send_positions(ctx, cfg, counts, fetch, published[it])

        elif kind == "fetch":
            # A remote coordinator (or, in the unoptimized program, a peer
            # doing a direct shared-object read) wants my positions for
            # iteration `iter`.
            it = req["iter"]
            if it in published:
                yield from _send_positions(ctx, cfg, counts, req, published[it])
            else:
                fetch_waiters.setdefault(it, []).append(req)

        elif kind == "getpos":
            # A local rank asks me (the coordinator for q) for q's positions.
            q, it = req["q"], req["iter"]
            key = (q, it)
            if key in cache:
                yield ctx.send(msg.src, counts[q] * cfg.pos_bytes,
                               req["reply_tag"], cache[key])
                served[key] = served.get(key, 0) + 1
                if served[key] >= expected_requesters(q):
                    del cache[key], served[key]
            elif key in cache_waiters:
                cache_waiters[key].append((msg.src, req["reply_tag"]))
            else:
                cache_waiters[key] = [(msg.src, req["reply_tag"])]
                yield ctx.send(q, CONTROL_BYTES, SVC_TAG,
                               {"kind": "fetch", "iter": it, "reply_to": ctx.rank})

        elif kind == "fetchreply":
            q, it = req["q"], req["iter"]
            key = (q, it)
            cache[key] = req["pos"]
            served[key] = 0
            for requester, reply_tag in cache_waiters.pop(key, []):
                yield ctx.send(requester, counts[q] * cfg.pos_bytes,
                               reply_tag, cache[key])
                served[key] += 1
            if served[key] >= expected_requesters(q):
                del cache[key], served[key]

        elif kind == "fupd":
            # Local contribution to the force reduction for remote owner q.
            q, it = req["q"], req["iter"]
            key = (q, it)
            entry = reductions.setdefault(key, {"n": 0, "sum": None})
            entry["n"] += 1
            if cfg.real_data and req["data"] is not None:
                entry["sum"] = (req["data"] if entry["sum"] is None
                                else entry["sum"] + req["data"])
            yield ctx.compute(counts[q] * cfg.sec_per_force_add)
            if entry["n"] >= len(_local_dependents(ctx, ctx.cluster, q, p)):
                yield ctx.send(q, counts[q] * cfg.force_bytes, ("frc", it),
                               payload=entry["sum"])
                del reductions[key]

        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown water service request {kind!r}")


def make_optimized(cfg: WaterConfig) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        p = ctx.num_ranks
        rank = ctx.rank
        topo = ctx.topology
        counts = _counts(cfg, p)
        mine = kernel.partition(cfg.molecules, p, rank)
        partners_out = need_set(rank, p)
        partners_in = providers(rank, p)
        local_out = [q for q in partners_out if ctx.is_local(q)]
        remote_out = [q for q in partners_out if not ctx.is_local(q)]
        local_in = [r for r in partners_in if ctx.is_local(r)]
        # Remote clusters that will send me one combined force update each.
        remote_in_clusters = sorted({topo.cluster_of(r) for r in partners_in
                                     if not ctx.is_local(r)})

        state: Dict[str, Any] = {"published": {}}
        ctx.spawn_service(
            lambda c: _water_service(c, cfg, counts, state), name="water-svc"
        )

        pos = vel = None
        if cfg.real_data:
            all_pos, all_vel = kernel.init_molecules(cfg.molecules, cfg.seed)
            pos = all_pos[mine.start:mine.stop].copy()
            vel = all_vel[mine.start:mine.stop].copy()

        for it in range(cfg.iterations):
            # Publish this iteration's positions to my own service.
            state["published"][it] = pos
            yield ctx.send(rank, CONTROL_BYTES, SVC_TAG, {"kind": "pub", "iter": it})

            # Local consumers still get a direct push (fast network).
            for r in local_in:
                yield ctx.send(r, counts[rank] * cfg.pos_bytes, ("pos", it),
                               payload=pos)

            # Remote owners: ask each one's local coordinator (all requests
            # in flight at once so WAN fetches overlap).
            for q in remote_out:
                coord = _coordinator_for(ctx, q, ctx.cluster)
                yield ctx.send(coord, CONTROL_BYTES, SVC_TAG,
                               {"kind": "getpos", "q": q, "iter": it,
                                "reply_tag": ("wpos", it, q)})
            partner_pos: Dict[int, Any] = {}
            for _ in local_out:
                msg = yield ctx.recv(("pos", it))
                partner_pos[msg.src] = msg.payload
            for q in remote_out:
                msg = yield ctx.recv(("wpos", it, q))
                partner_pos[q] = msg.payload

            yield ctx.compute(_pair_compute_time(cfg, rank, p, counts))
            forces_for: Dict[int, Any] = {}
            my_forces = None
            if cfg.real_data:
                my_forces, forces_for = _compute_forces_real(
                    cfg, rank, p, pos, partner_pos)

            # Force updates: direct locally, via the coordinator reduction
            # tree for remote owners.
            for q in local_out:
                yield ctx.send(q, counts[q] * cfg.force_bytes, ("frc", it),
                               payload=forces_for.get(q))
            for q in remote_out:
                coord = _coordinator_for(ctx, q, ctx.cluster)
                yield ctx.send(coord, counts[q] * cfg.force_bytes, SVC_TAG,
                               {"kind": "fupd", "q": q, "iter": it,
                                "data": forces_for.get(q)})
            expected = len(local_in) + len(remote_in_clusters)
            for _ in range(expected):
                msg = yield ctx.recv(("frc", it))
                if cfg.real_data:
                    my_forces += msg.payload

            yield ctx.compute(counts[rank] * cfg.sec_per_update)
            if cfg.real_data:
                pos, vel = kernel.integrate(pos, vel, my_forces)

        return pos if cfg.real_data else None

    return main


def _default_config(scale: str) -> WaterConfig:
    from ...costmodel import get_scale

    ws = get_scale(scale)
    return WaterConfig(molecules=ws.water_molecules, iterations=ws.water_iterations)


register_app("water", "unoptimized", make_unoptimized, _default_config)
register_app("water", "optimized", make_optimized)
