"""Sequential TSP kernel: branch-and-bound over partial tours.

As in the paper, runs use a *fixed* cutoff bound (no global best-bound
updates), which makes the search deterministic and independent of job
execution order — the property that lets the parallel program distribute
jobs freely.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

import numpy as np


def random_cities(n: int, seed: int = 0) -> np.ndarray:
    """Symmetric integer distance matrix from random points on a grid."""
    rng = np.random.default_rng(seed)
    points = rng.integers(0, 1000, size=(n, 2))
    delta = points[:, None, :] - points[None, :, :]
    dist = np.sqrt((delta ** 2).sum(axis=-1)).astype(np.int64)
    np.fill_diagonal(dist, 0)
    return dist


def tour_length(dist: np.ndarray, tour: Sequence[int]) -> int:
    """Length of the closed tour visiting ``tour`` in order."""
    total = 0
    for a, b in zip(tour, tour[1:]):
        total += int(dist[a][b])
    total += int(dist[tour[-1]][tour[0]])
    return total


def greedy_bound(dist: np.ndarray) -> int:
    """Nearest-neighbour tour length — the fixed cutoff bound."""
    n = len(dist)
    unvisited = set(range(1, n))
    tour = [0]
    while unvisited:
        here = tour[-1]
        nxt = min(unvisited, key=lambda c: dist[here][c])
        unvisited.remove(nxt)
        tour.append(nxt)
    return tour_length(dist, tour)


def enumerate_jobs(n: int, depth: int) -> List[Tuple[int, ...]]:
    """All partial tours of ``depth`` cities starting at city 0.

    With n=16, depth=5 this yields the paper's 15*14*13*12 = 32760 jobs.
    """
    if not 1 <= depth <= n:
        raise ValueError(f"depth must be in [1, {n}], got {depth}")
    return [(0, *rest) for rest in itertools.permutations(range(1, n), depth - 1)]


def search_job(dist: np.ndarray, prefix: Sequence[int], bound: int) -> Tuple[int, int]:
    """Depth-first completion of ``prefix`` with partial-length pruning.

    Returns ``(best_length, nodes_explored)``; best_length may exceed
    ``bound`` (reported as found) only if no completion beats the bound —
    callers treat the bound as the incumbent.
    """
    n = len(dist)
    in_prefix = set(prefix)
    prefix_len = sum(int(dist[a][b]) for a, b in zip(prefix, prefix[1:]))
    best = bound
    nodes = 0
    remaining0 = [c for c in range(n) if c not in in_prefix]

    def dfs(last: int, length: int, remaining: List[int]) -> None:
        nonlocal best, nodes
        nodes += 1
        if not remaining:
            total = length + int(dist[last][0])
            if total < best:
                best = total
            return
        for idx, city in enumerate(remaining):
            step = length + int(dist[last][city])
            if step >= best:
                continue
            rest = remaining[:idx] + remaining[idx + 1:]
            dfs(city, step, rest)

    dfs(prefix[-1], prefix_len, remaining0)
    return best, nodes


def solve_serial(dist: np.ndarray, depth: int, bound: int = None) -> int:
    """Best tour length over all jobs — the parallel result's reference."""
    if bound is None:
        bound = greedy_bound(dist)
    best = bound
    for job in enumerate_jobs(len(dist), depth):
        length, _ = search_job(dist, job, bound)
        best = min(best, length)
    return best
