"""TSP: branch-and-bound with centralized vs. per-cluster work queues."""

from . import kernel
from .parallel import TspConfig, make_optimized, make_unoptimized

__all__ = ["kernel", "TspConfig", "make_optimized", "make_unoptimized"]
