"""Parallel TSP: centralized job queue vs. per-cluster queues with stealing.

Unoptimized (uniform-network design)
    A single job queue on rank 0.  Every job fetch is an RPC; on a
    4-cluster machine 75% of fetches pay the WAN round trip, making the
    program latency-bound (its tiny messages make it bandwidth-immune —
    the distinctive TSP profile in Figure 3).

Optimized
    One queue per cluster (on the cluster leader), workers fetch locally;
    an empty queue steals batches from remote queues.  Inter-cluster
    traffic then scales with the number of clusters, not processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from ...costmodel import calibration as cal
from ...runtime.context import Context
from ...runtime.reduction import hier_reduce, linear_reduce
from ...runtime.workqueue import (
    CentralQueueService,
    ClusterQueueService,
    get_central_job,
    get_cluster_job,
)
from ...sim.rng import make_rng
from ..base import register_app
from . import kernel


@dataclass
class TspConfig:
    """Problem size and cost parameters."""

    cities: int = 16
    job_depth: int = 5
    num_jobs: Optional[int] = 2048  # None = full enumeration (paper scale)
    real_data: bool = False
    seed: int = 0
    mean_job_sec: float = cal.TSP_MEAN_JOB_SEC
    job_sigma: float = cal.TSP_JOB_SIGMA
    job_bytes: int = cal.TSP_JOB_BYTES
    #: real-data mode: CPU time per explored search node.
    sec_per_node: float = 2e-6
    #: fraction of a victim queue taken per steal.
    steal_fraction: float = 0.5
    #: ablation knob: place every job in cluster 0's queue initially, so
    #: the other clusters depend entirely on work stealing.
    imbalanced_start: bool = False


def _make_jobs(cfg: TspConfig) -> List:
    """Job list: real partial tours, or synthetic indices at scale."""
    if cfg.real_data:
        return kernel.enumerate_jobs(cfg.cities, cfg.job_depth)
    count = cfg.num_jobs if cfg.num_jobs is not None else cal.TSP_PAPER_JOBS
    return list(range(count))


def _job_duration(cfg: TspConfig, job_index: int) -> float:
    """Synthetic job runtime: heavy-tailed around the calibrated mean.

    Deterministic per (seed, job), so runs are reproducible and the total
    work is identical however jobs are distributed.
    """
    import math

    rng = make_rng(cfg.seed, f"tsp-job-{job_index}")
    mu = math.log(cfg.mean_job_sec) - cfg.job_sigma ** 2 / 2
    return rng.lognormvariate(mu, cfg.job_sigma)


def _work_on(ctx: Context, cfg: TspConfig, job, dist, bound) -> Generator:
    """Process one job; returns the best tour length found (or None)."""
    if cfg.real_data:
        length, nodes = kernel.search_job(dist, job, bound)
        yield ctx.compute(nodes * cfg.sec_per_node)
        return length
    yield ctx.compute(_job_duration(cfg, job))
    return None


def make_unoptimized(cfg: TspConfig) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        dist = bound = None
        if cfg.real_data:
            dist = kernel.random_cities(cfg.cities, cfg.seed)
            bound = kernel.greedy_bound(dist)
        if ctx.rank == 0:
            service = CentralQueueService(_make_jobs(cfg), job_bytes=cfg.job_bytes)
            ctx.spawn_service(service.body, name="tsp-queue")

        best = bound
        while True:
            job = yield from get_central_job(ctx, 0)
            if job is None:
                break
            length = yield from _work_on(ctx, cfg, job, dist, bound)
            if length is not None and (best is None or length < best):
                best = length

        result = yield from linear_reduce(
            ctx, "tsp-best", 0, 64, best, _min_or_none)
        return result

    return main


def make_optimized(cfg: TspConfig) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        topo = ctx.topology
        dist = bound = None
        if cfg.real_data:
            dist = kernel.random_cities(cfg.cities, cfg.seed)
            bound = kernel.greedy_bound(dist)

        jobs = _make_jobs(cfg)
        leaders = [topo.cluster_leader(c) for c in topo.clusters()]
        my_leader = topo.cluster_leader(ctx.cluster)
        if ctx.rank in leaders:
            cid = topo.cluster_of(ctx.rank)
            if cfg.imbalanced_start:
                share = list(jobs) if cid == 0 else []
            else:
                share = jobs[cid::topo.num_clusters]
            peers = [l for l in leaders if l != ctx.rank]
            service = ClusterQueueService(share, peers, job_bytes=cfg.job_bytes,
                                          steal_fraction=cfg.steal_fraction,
                                          terminate_on_drain=True)
            ctx.spawn_service(service.body, name="tsp-queue")

        best = bound
        request_id = 0
        while True:
            job = yield from get_cluster_job(ctx, my_leader, request_id)
            request_id += 1
            if job is None:
                break
            length = yield from _work_on(ctx, cfg, job, dist, bound)
            if length is not None and (best is None or length < best):
                best = length

        result = yield from hier_reduce(
            ctx, "tsp-best", 0, 64, best, _min_or_none)
        return result

    return main


def _min_or_none(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _default_config(scale: str) -> TspConfig:
    from ...costmodel import get_scale

    ws = get_scale(scale)
    num_jobs = None if scale == "paper" else ws.tsp_jobs
    return TspConfig(num_jobs=num_jobs)


# Work stealing: victim choice, steal timing and the retry timer all
# depend on message arrival order, so a recorded communication DAG is
# not parameter-stable (repro.whatif falls back to full simulation).
register_app("tsp", "unoptimized", make_unoptimized, _default_config,
             timing_dependent=True)
register_app("tsp", "optimized", make_optimized)
