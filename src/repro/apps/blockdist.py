"""Balanced contiguous block distribution shared by the applications."""

from __future__ import annotations


def partition(n: int, p: int, rank: int) -> range:
    """Contiguous block of indices owned by ``rank`` (sizes differ by <= 1)."""
    base, extra = divmod(n, p)
    start = rank * base + min(rank, extra)
    return range(start, start + base + (1 if rank < extra else 0))


def owner_of(n: int, p: int, index: int) -> int:
    """Rank owning ``index`` under :func:`partition` (inverse mapping)."""
    if not 0 <= index < n:
        raise IndexError(f"index {index} out of range for n={n}")
    base, extra = divmod(n, p)
    boundary = (base + 1) * extra  # first index owned by a small block
    if index < boundary:
        return index // (base + 1)
    return extra + (index - boundary) // base
