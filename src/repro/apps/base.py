"""Common application plumbing: variant registry and run helper.

Every application registers two builders (``unoptimized``/``optimized``;
FFT registers the same driver for both, as the paper found no
optimization).  A builder takes the app's config object and returns the
per-rank main generator, ready for :func:`repro.runtime.run_spmd`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..network.topology import Topology
from ..runtime.context import Context
from ..runtime.run import RunResult, run_spmd

AppBuilder = Callable[[Any], Callable[[Context], Generator]]

VARIANTS = ("unoptimized", "optimized")

_REGISTRY: Dict[Tuple[str, str], AppBuilder] = {}
_DEFAULT_CONFIGS: Dict[str, Callable[[str], Any]] = {}
_TIMING_DEPENDENT: Dict[str, bool] = {}


def register_app(
    name: str,
    variant: str,
    builder: AppBuilder,
    default_config: Optional[Callable[[str], Any]] = None,
    timing_dependent: bool = False,
) -> None:
    """Register an application variant builder.

    ``default_config(scale_name)`` constructs the app's config at a named
    workload scale ("paper" / "bench"); registering it once per app is
    enough.

    ``timing_dependent`` declares that the app's *control flow* depends on
    message arrival timing (work stealing, arrival-order-driven protocols,
    timers), so a communication DAG recorded at one grid point is not
    valid at another — :mod:`repro.whatif` falls back to full simulation
    for such apps.  Setting it on any variant marks the whole app.
    """
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    _REGISTRY[(name, variant)] = builder
    if default_config is not None:
        _DEFAULT_CONFIGS[name] = default_config
    if timing_dependent:
        _TIMING_DEPENDENT[name] = True


def is_timing_dependent(name: str) -> bool:
    """True when the app declared timing-dependent control flow."""
    return _TIMING_DEPENDENT.get(name, False)


def app_names() -> Tuple[str, ...]:
    return tuple(sorted({name for name, _ in _REGISTRY}))


def get_builder(name: str, variant: str) -> AppBuilder:
    try:
        return _REGISTRY[(name, variant)]
    except KeyError:
        known = sorted(_REGISTRY)
        raise ValueError(f"no app variant {(name, variant)!r}; known: {known}") from None


def default_config(name: str, scale: str = "bench") -> Any:
    try:
        factory = _DEFAULT_CONFIGS[name]
    except KeyError:
        raise ValueError(f"app {name!r} has no registered default config") from None
    return factory(scale)


def run_app(
    name: str,
    variant: str,
    topology: Topology,
    config: Any = None,
    scale: str = "bench",
    seed: int = 0,
    until: Optional[float] = None,
    bus: Any = None,
    sanitize: bool = False,
    faults: Any = None,
    max_events: Optional[int] = None,
) -> RunResult:
    """Build and run one application variant on ``topology``.

    ``bus`` (a prepared :class:`~repro.obs.bus.ProbeBus`) instruments the
    run; active run reporters receive a record tagged with app/variant.
    ``sanitize=True`` attaches the runtime protocol sanitizer.
    ``faults`` (a :class:`~repro.faults.plan.FaultPlan`) injects WAN
    faults and enables the reliable transport; ``max_events`` bounds the
    engine event budget (used by the chaos tests to rule out hangs).
    """
    if config is None:
        config = default_config(name, scale)
    main = get_builder(name, variant)(config)
    return run_spmd(topology, main, seed=seed, until=until, bus=bus,
                    sanitize=sanitize, faults=faults, max_events=max_events,
                    report_meta={"app": name, "variant": variant})
