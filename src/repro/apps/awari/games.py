"""Additional real games for the retrograde-analysis substrate.

The parallel Awari driver works over any *stage-DAG game*: states carry a
stage number and every move strictly decreases it, so stages can be
solved in order.  Besides the subtraction game in
:mod:`repro.apps.awari.kernel`, this module provides:

- :class:`KaylesGame` — the classic bowling-pin game on heap multisets:
  remove one or two adjacent pins, possibly splitting a row.  Its state
  space has real combinatorial structure (partitions of n), and the
  Sprague-Grundy theorem gives an independent correctness oracle: the
  Grundy number of a multi-heap state must equal the XOR of its heaps'
  single-heap values.

- :func:`retrograde_grundy` — backward induction computing full Grundy
  numbers (mex over successors), generalizing WIN/LOSS retrograde
  analysis.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

State = Tuple[int, ...]  # canonical: non-increasing heap sizes, no zeros


def _canonical(heaps) -> State:
    return tuple(sorted((h for h in heaps if h > 0), reverse=True))


class KaylesGame:
    """Kayles on rows of pins, states = multisets of row lengths.

    A move removes 1 or 2 adjacent pins from one row; the remainder of
    the row splits into (up to) two rows.  The mover unable to move (no
    pins) loses.  ``stage(state)`` is the total pin count: every move
    removes pins, so the stage strictly decreases — the property the
    parallel retrograde driver relies on.
    """

    def __init__(self, n_max: int) -> None:
        if n_max < 0:
            raise ValueError(f"n_max must be >= 0, got {n_max}")
        self.n_max = n_max
        self._states = self._enumerate_states()
        self._predecessors: Dict[State, List[State]] = {s: [] for s in self._states}
        for s in self._states:
            for succ in self.successors(s):
                self._predecessors[succ].append(s)

    # -- enumeration -----------------------------------------------------
    def _enumerate_states(self) -> List[State]:
        """All partitions with total pins <= n_max (canonical form)."""
        states: List[State] = [()]

        def extend(prefix: List[int], remaining: int, max_part: int) -> None:
            for part in range(min(remaining, max_part), 0, -1):
                heaps = prefix + [part]
                states.append(tuple(heaps))
                extend(heaps, remaining - part, part)

        extend([], self.n_max, self.n_max)
        return states

    def states(self) -> List[State]:
        return self._states

    def stage(self, state: State) -> int:
        return sum(state)

    def num_stages(self) -> int:
        return self.n_max + 1

    # -- moves -----------------------------------------------------------
    def successors(self, state: State) -> List[State]:
        out = set()
        for idx, row in enumerate(state):
            rest = state[:idx] + state[idx + 1:]
            for take in (1, 2):
                if row < take:
                    continue
                # Taking `take` adjacent pins at offset i leaves rows of
                # lengths i and row - take - i.
                for left in range(0, row - take + 1):
                    right = row - take - left
                    out.add(_canonical(rest + (left, right)))
        return sorted(out, reverse=True)

    def predecessors(self, state: State) -> List[State]:
        return self._predecessors[state]


def retrograde_grundy(game) -> Dict[object, int]:
    """Grundy numbers for every state, by stages (mex over successors)."""
    values: Dict[object, int] = {}
    by_stage: Dict[int, List[object]] = {}
    for s in game.states():
        by_stage.setdefault(game.stage(s), []).append(s)
    for stage in range(game.num_stages()):
        for s in by_stage.get(stage, []):
            succ_values = {values[t] for t in game.successors(s)}
            g = 0
            while g in succ_values:
                g += 1
            values[s] = g
    return values


def forward_grundy(game) -> Dict[object, int]:
    """Independent oracle: memoized forward mex computation."""

    @lru_cache(maxsize=None)
    def value(state) -> int:
        succ_values = {value(t) for t in game.successors(state)}
        g = 0
        while g in succ_values:
            g += 1
        return g

    return {s: value(s) for s in game.states()}
