"""Awari: parallel retrograde analysis with staged tiny-update floods."""

from . import games, kernel
from .parallel import AwariConfig, make_optimized, make_unoptimized

__all__ = ["games", "kernel", "AwariConfig", "make_optimized", "make_unoptimized"]
