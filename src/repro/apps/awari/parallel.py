"""Parallel retrograde analysis (Awari): staged floods of tiny updates.

States are hashed to processors.  The computation proceeds in stages (one
per stone count); evaluating a state produces tiny value updates for the
owners of its predecessor states — "many small, asynchronous packets of
work" (Section 3.1).

Unoptimized (uniform-network design)
    Per-destination message combining only.  Every combined batch travels
    directly to its destination, so on a multi-cluster most of the tiny-
    message flood crosses the WAN, paying the high per-message overhead.

Optimized (the paper's improvement)
    A second combining layer: cross-cluster updates are assembled at a
    designated local relay rank, shipped in large batches over the slow
    link, and re-distributed by the relay on the far side.

Stage synchronization uses end-markers carried *through the same combined
channels* as the data (FIFO per path), so quiescence detection itself is
subject to the combining delays — the starvation effect the paper notes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ...costmodel import calibration as cal
from ...runtime.combining import Batch, CombiningBuffer
from ...runtime.context import CONTROL_BYTES, Context
from ...sim.rng import make_rng
from ..base import register_app
from . import kernel

#: Marker item ending a rank's contribution to a stage on some channel.
MARK = "AW-MARK"
#: Marker item from the relay: all remote-cluster data has been delivered.
RELAY_DONE = "AW-RELAY-DONE"

UPDATE_TAG = "aw-upd"
RELAY_TAG = "aw-relay"


@dataclass
class AwariConfig:
    """Problem size and cost parameters."""

    stages: int = 9
    states_per_stage: int = 21_600  # total across all ranks
    fanout: int = 2
    imbalance_sigma: float = 0.85
    real_data: bool = False
    game_tokens: int = 60
    takes: Tuple[int, ...] = (1, 2, 3)
    #: Optional factory for a custom stage-DAG game (e.g. games.KaylesGame);
    #: overrides game_tokens/takes when set.
    game_factory: Optional[Callable[[], Any]] = None
    seed: int = 0
    sec_per_eval: float = cal.AWARI_SEC_PER_EVAL
    sec_per_update: float = cal.AWARI_SEC_PER_UPDATE
    sec_per_pack: float = cal.AWARI_SEC_PER_PACK
    update_bytes: int = cal.AWARI_UPDATE_BYTES
    combine_count: int = cal.AWARI_COMBINE_COUNT
    relay_combine_count: int = 64
    #: relay CPU cost per update repacked/unpacked (optimized variant); the
    #: relay rank is also a worker, so this contends with its compute.
    sec_per_relay_item: float = 5e-6


# ----------------------------------------------------------------------
# Synthetic workload (paper scale)
# ----------------------------------------------------------------------
def _seed_count(cfg: AwariConfig, rank: int, stage: int, p: int) -> int:
    """Per-rank state count for a stage: the rank's share of the stage's
    fixed total, scaled by a log-normal imbalance factor deterministic per
    (seed, stage, rank).  Real game stages hash unevenly onto processors;
    this models the resulting load imbalance (which grows with p, as the
    max of p draws)."""
    base = cfg.states_per_stage / p
    if p == 1:
        return max(1, round(base))
    # Hash-induced imbalance grows with p: each rank's share is a 1/p
    # sample of the stage's states, so relative fluctuations scale like
    # sqrt(p).  ``imbalance_sigma`` is the value at 32 ranks.
    sigma = cfg.imbalance_sigma * math.sqrt(p / 32.0)
    rng = make_rng(cfg.seed, f"awari-seeds-{stage}-{rank}")
    factor = rng.lognormvariate(-sigma ** 2 / 2, sigma)
    return max(1, round(base * factor))


def _synthetic_updates(cfg: AwariConfig, ctx: Context, stage: int) -> List[Tuple[int, Any]]:
    """(destination, item) pairs this rank emits in a stage."""
    rng = make_rng(cfg.seed, f"awari-dests-{stage}-{ctx.rank}")
    p = ctx.num_ranks
    updates = []
    for i in range(_seed_count(cfg, ctx.rank, stage, p) * cfg.fanout):
        updates.append((rng.randrange(p), ("upd", stage, ctx.rank, i)))
    return updates


# ----------------------------------------------------------------------
# Stage exchange protocols
# ----------------------------------------------------------------------
def _exchange_direct(ctx: Context, cfg: AwariConfig, stage: int,
                     updates: List[Tuple[int, Any]]) -> Generator:
    """Unoptimized: per-destination combining straight to every rank.

    Returns the update items received this stage.  Completion: one MARK
    from every other rank, carried through the combined channels.
    """
    p = ctx.num_ranks
    tag = (UPDATE_TAG, stage)
    buf = CombiningBuffer(ctx, tag, flush_count=cfg.combine_count)
    received: List[Any] = []
    pack_time = 0.0
    for dst, item in updates:
        if dst == ctx.rank:
            received.append(item)
        else:
            pack_time += cfg.sec_per_pack
            yield from buf.add(dst, item, cfg.update_bytes)
    if pack_time:
        yield ctx.compute(pack_time)
    for r in range(p):
        if r != ctx.rank:
            yield from buf.add(r, MARK, 8)
    yield from buf.flush_all()

    markers = 0
    while markers < p - 1:
        msg = yield ctx.recv(tag)
        for item in msg.payload.items:
            if item == MARK:
                markers += 1
            else:
                received.append(item)
    return received


def _relay_service(ctx: Context, cfg: AwariConfig) -> Generator:
    """Cluster relay daemon: second-level message combining (optimized).

    Receives local workers' remote-destined updates, combines them into
    jumbo batches per target cluster, exchanges them relay-to-relay, and
    re-distributes arriving batches to final destinations.  All per-stage;
    the stage's bookkeeping is discarded once complete.
    """
    topo = ctx.topology
    members = list(topo.cluster_members(ctx.cluster))
    remote_leaders = [topo.cluster_leader(c) for c in topo.clusters()
                      if c != ctx.cluster]

    class StageState:
        __slots__ = ("jumbo", "deliver", "local_done", "remote_done", "delivered")

        def __init__(self, stage: int) -> None:
            #: pending jumbo items per remote relay rank
            self.jumbo: Dict[int, List[Any]] = {r: [] for r in remote_leaders}
            #: per-final-destination combining of arriving remote updates
            self.deliver = CombiningBuffer(ctx, (UPDATE_TAG, stage),
                                           flush_count=cfg.combine_count)
            self.local_done = 0
            self.remote_done = 0
            self.delivered = False  # RELAY_DONE already broadcast

    stages: Dict[int, StageState] = {}

    def state_for(stage: int) -> StageState:
        st = stages.get(stage)
        if st is None:
            st = StageState(stage)
            stages[stage] = st
        return st

    def jumbo_send(stage: int, relay: int, items: List[Any]) -> Generator:
        size = cfg.update_bytes * len(items)
        yield ctx.send(relay, size, RELAY_TAG, ("jumbo", stage, items))

    def finish_delivery(st: "StageState") -> Generator:
        """All remote-cluster data for the stage is in: release the members."""
        st.delivered = True
        for r in members:
            yield from st.deliver.add(r, RELAY_DONE, 8)
        yield from st.deliver.flush_all()

    while True:
        msg = yield ctx.recv(RELAY_TAG)
        kind, stage, items = msg.payload
        st = state_for(stage)

        if kind == "submit":
            # Local worker's remote-destined updates (or its end marker).
            data_items = sum(1 for e in items if e != MARK)
            if data_items:
                yield ctx.compute(data_items * cfg.sec_per_relay_item)
            for entry in items:
                if entry == MARK:
                    st.local_done += 1
                else:
                    dst, item = entry
                    relay = topo.cluster_leader(topo.cluster_of(dst))
                    pending = st.jumbo[relay]
                    pending.append((dst, item))
                    if len(pending) >= cfg.relay_combine_count:
                        yield from jumbo_send(stage, relay, pending)
                        st.jumbo[relay] = []
            if st.local_done == len(members):
                for relay in remote_leaders:
                    pending = st.jumbo[relay]
                    # Final flush, with the end marker riding along.
                    yield from jumbo_send(stage, relay, pending + [MARK])
                    st.jumbo[relay] = []
                if not remote_leaders and not st.delivered:
                    # Single-cluster machine: nothing will ever arrive.
                    yield from finish_delivery(st)
        elif kind == "jumbo":
            # A batch (possibly ending in a marker) from a remote relay.
            data_items = sum(1 for e in items if e != MARK)
            if data_items:
                yield ctx.compute(data_items * cfg.sec_per_relay_item)
            for entry in items:
                if entry == MARK:
                    st.remote_done += 1
                else:
                    dst, item = entry
                    yield from st.deliver.add(dst, item, cfg.update_bytes)
            if st.remote_done == len(remote_leaders) and not st.delivered:
                yield from finish_delivery(st)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown relay message kind {kind!r}")


def _exchange_relayed(ctx: Context, cfg: AwariConfig, stage: int,
                      updates: List[Tuple[int, Any]]) -> Generator:
    """Optimized: local combining direct; remote via the cluster relay."""
    topo = ctx.topology
    members = list(topo.cluster_members(ctx.cluster))
    relay = topo.cluster_leader(ctx.cluster)
    tag = (UPDATE_TAG, stage)
    buf_local = CombiningBuffer(ctx, tag, flush_count=cfg.combine_count)
    received: List[Any] = []
    submit: List[Any] = []
    pack_time = 0.0

    for dst, item in updates:
        if dst == ctx.rank:
            received.append(item)
        elif topo.same_cluster(dst, ctx.rank):
            pack_time += cfg.sec_per_pack
            yield from buf_local.add(dst, item, cfg.update_bytes)
        else:
            pack_time += cfg.sec_per_pack
            submit.append((dst, item))
            if len(submit) >= cfg.combine_count:
                size = cfg.update_bytes * len(submit)
                yield ctx.send(relay, size, RELAY_TAG, ("submit", stage, submit))
                submit = []
    if pack_time:
        yield ctx.compute(pack_time)

    submit.append(MARK)
    yield ctx.send(relay, cfg.update_bytes * len(submit), RELAY_TAG,
                   ("submit", stage, submit))
    for r in members:
        if r != ctx.rank:
            yield from buf_local.add(r, MARK, 8)
    yield from buf_local.flush_all()

    # Completion: MARK from each local peer + RELAY_DONE from the relay.
    local_marks = 0
    relay_done = False
    expect_local = len(members) - 1
    while local_marks < expect_local or not relay_done:
        msg = yield ctx.recv(tag)
        for item in msg.payload.items:
            if item == MARK:
                local_marks += 1
            elif item == RELAY_DONE:
                relay_done = True
            else:
                received.append(item)
    return received


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _make_driver(cfg: AwariConfig, optimized: bool) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        p = ctx.num_ranks
        rank = ctx.rank
        topo = ctx.topology
        use_relay = optimized
        if use_relay and rank == topo.cluster_leader(ctx.cluster):
            ctx.spawn_service(lambda c: _relay_service(c, cfg), name="aw-relay")
        exchange = _exchange_relayed if use_relay else _exchange_direct

        game = values = succ_values = None
        if cfg.real_data:
            if cfg.game_factory is not None:
                game = cfg.game_factory()
            else:
                game = kernel.SubtractionGame(cfg.game_tokens, cfg.takes)
            values = {}
            succ_values: Dict[int, List[int]] = {}
            my_states = [s for s in game.states()
                         if kernel.state_owner(s, p) == rank]
            by_stage: Dict[int, List[int]] = {}
            for s in my_states:
                by_stage.setdefault(game.stage(s), []).append(s)
            num_stages = game.num_stages()
        else:
            num_stages = cfg.stages

        for stage in range(num_stages):
            updates: List[Tuple[int, Any]] = []
            if cfg.real_data:
                for s in sorted(by_stage.get(stage, [])):
                    succ = game.successors(s)
                    known = succ_values.get(s, [])
                    assert len(known) == len(succ), (
                        f"state {s}: {len(known)}/{len(succ)} successor values"
                    )
                    value = (kernel.WIN if any(v == kernel.LOSS for v in known)
                             else kernel.LOSS)
                    values[s] = value
                    yield ctx.compute(cfg.sec_per_eval)
                    for pred in game.predecessors(s):
                        updates.append((kernel.state_owner(pred, p),
                                        ("val", pred, value)))
            else:
                evals = _seed_count(cfg, rank, stage, p)
                yield ctx.compute(evals * cfg.sec_per_eval)
                updates = _synthetic_updates(cfg, ctx, stage)

            received = yield from exchange(ctx, cfg, stage, updates)

            yield ctx.compute(len(received) * cfg.sec_per_update)
            if cfg.real_data:
                for item in received:
                    _, pred, value = item
                    succ_values.setdefault(pred, []).append(value)

        return values if cfg.real_data else None

    return main


def make_unoptimized(cfg: AwariConfig) -> Callable[[Context], Generator]:
    return _make_driver(cfg, optimized=False)


def make_optimized(cfg: AwariConfig) -> Callable[[Context], Generator]:
    return _make_driver(cfg, optimized=True)


def _default_config(scale: str) -> AwariConfig:
    from ...costmodel import get_scale

    ws = get_scale(scale)
    return AwariConfig(stages=ws.awari_stages,
                       states_per_stage=ws.awari_states_per_stage)


# The stage exchange consumes update batches in arrival order and the
# MARK-based quiescence detection races with the data, so a recorded
# communication DAG is not parameter-stable (repro.whatif falls back).
register_app("awari", "unoptimized", make_unoptimized, _default_config,
             timing_dependent=True)
register_app("awari", "optimized", make_optimized)
