"""Sequential retrograde-analysis kernel.

Retrograde analysis computes game-theoretic values of *all* states by
backward induction from terminal positions — the method Awari end-game
databases are built with.  We provide a generic solver over an abstract
game plus a concrete small game (a subtraction game) whose stage
structure (states with s tokens form stage s) mirrors Awari's by-stone
stages.  The forward minimax solver is the independent reference the
retrograde results are tested against.
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List

LOSS = 0   # the player to move loses with optimal play
WIN = 1    # the player to move wins


class SubtractionGame:
    """Take-away game: remove t tokens (t in ``takes``); no move = loss.

    States are integers 0..n_max; ``stage(state) = state`` (token count),
    and every move strictly decreases the stage — exactly the dependency
    structure of Awari's by-stone database stages.
    """

    def __init__(self, n_max: int, takes: Iterable[int] = (1, 2, 3)) -> None:
        takes = tuple(sorted(set(takes)))
        if not takes or takes[0] < 1:
            raise ValueError(f"takes must be positive, got {takes}")
        if n_max < 0:
            raise ValueError(f"n_max must be >= 0, got {n_max}")
        self.n_max = n_max
        self.takes = takes

    def states(self) -> range:
        return range(self.n_max + 1)

    def stage(self, state: int) -> int:
        return state

    def num_stages(self) -> int:
        return self.n_max + 1

    def successors(self, state: int) -> List[int]:
        return [state - t for t in self.takes if state - t >= 0]

    def predecessors(self, state: int) -> List[int]:
        return [state + t for t in self.takes if state + t <= self.n_max]


def retrograde_solve(game: SubtractionGame) -> Dict[int, int]:
    """Backward-induction values for every state, stage by stage.

    A state is WIN iff some successor is LOSS; terminal states (no moves)
    are LOSS.  Processing stages in increasing order guarantees all
    successor values are known — the invariant the parallel driver
    enforces with its per-stage synchronization.
    """
    values: Dict[int, int] = {}
    for stage in range(game.num_stages()):
        for state in game.states():
            if game.stage(state) != stage:
                continue
            succ = game.successors(state)
            if not succ:
                values[state] = LOSS
            else:
                values[state] = WIN if any(values[s] == LOSS for s in succ) else LOSS
    return values


def minimax_solve(game: SubtractionGame) -> Dict[int, int]:
    """Independent forward-search reference (memoized minimax)."""

    @lru_cache(maxsize=None)
    def value(state: int) -> int:
        succ = game.successors(state)
        if not succ:
            return LOSS
        return WIN if any(value(s) == LOSS for s in succ) else LOSS

    return {state: value(state) for state in game.states()}


def state_owner(state, p: int) -> int:
    """Deterministic hash distribution of states over p ranks (Awari hashes
    positions to processors).  Supports integer states (subtraction game)
    and tuple-of-int states (Kayles heaps); both hash reproducibly."""
    if isinstance(state, int):
        return (state * 2654435761 + 0x9E3779B9) % (2 ** 32) % p
    acc = 0x9E3779B9
    for part in state:
        acc = (acc * 2654435761 + part + 0x7F4A7C15) % (2 ** 61 - 1)
    return acc % p
