"""The six applications of the study, each in unoptimized and optimized form.

Importing this package registers every variant with the registry in
:mod:`repro.apps.base`; use :func:`repro.apps.run_app` to run one.
"""

from .base import (app_names, default_config, get_builder, is_timing_dependent,
                   register_app, run_app)

# Importing the subpackages has the side effect of registering variants.
from . import asp, awari, barnes, fft, tsp, water  # noqa: E402,F401

__all__ = ["app_names", "default_config", "get_builder", "is_timing_dependent",
           "register_app", "run_app",
           "asp", "awari", "barnes", "fft", "tsp", "water"]
