"""Sequential ASP kernel: Floyd-Warshall all-pairs shortest paths."""

from __future__ import annotations

import numpy as np

#: "No edge" marker; small enough that INF + weight never overflows int64.
INF = 10 ** 9


def random_graph(n: int, seed: int = 0, density: float = 0.2,
                 max_weight: int = 100) -> np.ndarray:
    """Random directed weighted graph as an n x n distance matrix."""
    rng = np.random.default_rng(seed)
    dist = np.full((n, n), INF, dtype=np.int64)
    edges = rng.random((n, n)) < density
    weights = rng.integers(1, max_weight + 1, size=(n, n))
    dist[edges] = weights[edges]
    np.fill_diagonal(dist, 0)
    return dist


def floyd_warshall(dist: np.ndarray) -> np.ndarray:
    """Reference O(n^3) all-pairs shortest paths (does not modify input)."""
    d = dist.copy()
    n = len(d)
    for k in range(n):
        np.minimum(d, d[:, k, None] + d[None, k, :], out=d)
    return d


def relax_block(block: np.ndarray, col_k: np.ndarray, row_k: np.ndarray) -> None:
    """One Floyd-Warshall step on a row block, in place.

    ``block`` holds this rank's rows, ``col_k`` is the block's column k,
    ``row_k`` the (already final for step k) pivot row.
    """
    np.minimum(block, col_k[:, None] + row_k[None, :], out=block)
