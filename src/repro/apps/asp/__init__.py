"""ASP: all-pairs shortest paths with ordered row broadcasts."""

from . import kernel
from .parallel import AspConfig, make_optimized, make_unoptimized

__all__ = ["kernel", "AspConfig", "make_optimized", "make_unoptimized"]
