"""Parallel ASP: sequencer-ordered row broadcasts (Floyd-Warshall).

Unoptimized (uniform-network design)
    A fixed sequencer node (rank 0) issues sequence numbers for the
    totally-ordered row broadcasts.  The sender of row k must complete a
    synchronous RPC to the sequencer *before* broadcasting; on a
    4-cluster machine 75% of these RPCs pay the WAN round trip — once
    per row, 1500 times.

Optimized (the paper's improvement)
    The sequencer *migrates* to the cluster of the current sender, which
    ASP's regular structure makes possible: rows are broadcast in block
    order, so the sequencer moves only C-1 times (3 WAN round trips
    total) and every other request is cluster-local.

Both variants broadcast rows through the same two-level multicast tree
(point-to-point to cluster gateways, multicast inside clusters), as
described in Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

import numpy as np

from ...costmodel import calibration as cal
from ...runtime.bcast import hier_bcast
from ...runtime.context import Context
from ...runtime.sequencer import SequencerService, get_seq, migrate_sequencer
from ..base import register_app
from ..blockdist import owner_of, partition
from . import kernel


@dataclass
class AspConfig:
    """Problem size and cost parameters."""

    n: int = 1500
    real_data: bool = False
    seed: int = 0
    sec_per_cell: float = cal.ASP_SEC_PER_CELL
    row_bytes: int = cal.ASP_ROW_BYTES


def _make_driver(cfg: AspConfig, migrating: bool) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        p = ctx.num_ranks
        rank = ctx.rank
        topo = ctx.topology
        n = cfg.n
        mine = partition(n, p, rank)

        block = None
        if cfg.real_data:
            full = kernel.random_graph(n, cfg.seed)
            block = full[mine.start:mine.stop].copy()

        # Sequencer placement: fixed on rank 0, or hosted by every cluster
        # leader with only the first initially active.
        if migrating:
            seq_hosts = [topo.cluster_leader(c) for c in topo.clusters()]
        else:
            seq_hosts = [0]
        if rank in seq_hosts:
            service = SequencerService(initially_active=(rank == seq_hosts[0]))
            ctx.spawn_service(service.body, name="asp-seq")

        def sequencer_for(k: int) -> int:
            if not migrating:
                return 0
            return topo.cluster_leader(topo.cluster_of(owner_of(n, p, k)))

        row_compute = len(mine) * n * cfg.sec_per_cell

        for k in range(n):
            owner = owner_of(n, p, k)
            if rank == owner:
                seq_rank = sequencer_for(k)
                if migrating and k > 0:
                    prev_seq = sequencer_for(k - 1)
                    if prev_seq != seq_rank:
                        # First row broadcast from a new cluster: pull the
                        # sequencer over (one WAN round trip, 3 times total).
                        yield from migrate_sequencer(ctx, prev_seq, seq_rank)
                yield from get_seq(ctx, seq_rank)
                row_payload = block[k - mine.start].copy() if cfg.real_data else None
                row_k = yield from hier_bcast(ctx, ("asp-row", k), owner,
                                              cfg.row_bytes, row_payload)
            else:
                row_k = yield from hier_bcast(ctx, ("asp-row", k), owner,
                                              cfg.row_bytes, None)

            yield ctx.compute(row_compute)
            if cfg.real_data:
                kernel.relax_block(block, block[:, k], row_k)

        return block if cfg.real_data else None

    return main


def make_unoptimized(cfg: AspConfig) -> Callable[[Context], Generator]:
    return _make_driver(cfg, migrating=False)


def make_optimized(cfg: AspConfig) -> Callable[[Context], Generator]:
    return _make_driver(cfg, migrating=True)


def _default_config(scale: str) -> AspConfig:
    from ...costmodel import PAPER, get_scale

    ws = get_scale(scale)
    # Reduced-n sweeps must keep the *per-row* compute time and row size at
    # paper scale (relative speedup is a per-row property); per-cell cost
    # scales with (n_paper / n)^2 to compensate for both the narrower rows
    # and the smaller per-rank block.
    factor = (PAPER.asp_n / ws.asp_n) ** 2
    return AspConfig(n=ws.asp_n, sec_per_cell=cal.ASP_SEC_PER_CELL * factor)


register_app("asp", "unoptimized", make_unoptimized, _default_config)
register_app("asp", "optimized", make_optimized)
