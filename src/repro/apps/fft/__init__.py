"""FFT: 1-D transpose-algorithm FFT (three all-to-all transposes)."""

from . import kernel
from .parallel import FftConfig, make_driver

__all__ = ["kernel", "FftConfig", "make_driver"]
