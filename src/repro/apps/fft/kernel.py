"""Sequential FFT kernel: the six-step (transpose) 1-D FFT.

The transpose algorithm views the n-point input as an R x C matrix and
computes the FFT as: transpose, R-point row FFTs, twiddle scaling,
transpose, C-point row FFTs, transpose — the "three transposes,
interspersed by parallel FFTs" of the paper.  Row FFTs are embarrassingly
parallel over distributed rows; only the transposes communicate.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def split_dims(n: int) -> Tuple[int, int]:
    """Factor n (a power of two) into the squarest R x C = n."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a positive power of two, got {n}")
    log = n.bit_length() - 1
    r_log = log // 2
    return 1 << r_log, 1 << (log - r_log)


def random_signal(n: int, seed: int = 0) -> np.ndarray:
    """Deterministic complex test input."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=n) + 1j * rng.normal(size=n)


def twiddle_block(rows: np.ndarray, k1: np.ndarray, n: int) -> np.ndarray:
    """Twiddle factors e^(-2*pi*i * i2 * k1 / n) for a block of i2 rows."""
    return np.exp(-2j * np.pi * rows[:, None] * k1[None, :] / n)


def six_step_fft(x: np.ndarray) -> np.ndarray:
    """1-D FFT via the transpose algorithm; equals ``np.fft.fft(x)``."""
    n = len(x)
    r, c = split_dims(n)
    a = x.reshape(r, c)
    # Transpose 1: bring i1 (length-R dimension) into rows.
    b = a.T.copy()                                   # C x R, indexed [i2][i1]
    b = np.fft.fft(b, axis=1)                        # over i1 -> k1
    b *= twiddle_block(np.arange(c), np.arange(r), n)
    # Transpose 2: bring i2 into rows for the second FFT.
    m = b.T.copy()                                   # R x C, indexed [k1][i2]
    m = np.fft.fft(m, axis=1)                        # over i2 -> k2
    # Transpose 3: natural output order X[k2*R + k1].
    return m.T.copy().reshape(-1)


def point_stages(n_rows: int, row_length: int) -> int:
    """Work unit count for a block of row FFTs: points x log2(length)."""
    return n_rows * row_length * max(1, int(math.log2(row_length)))
