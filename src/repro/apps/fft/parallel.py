"""Parallel FFT: distributed six-step transpose algorithm.

The communication pattern is three all-to-all matrix transposes with
little computation in between — the paper's negative control: "The
communication pattern is too synchronous and fine grained; no
multi-cluster optimization was found."  Accordingly, the same driver is
registered for both the "unoptimized" and "optimized" variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

import numpy as np

from ...costmodel import calibration as cal
from ...runtime.context import Context
from ..base import register_app
from ..blockdist import partition
from . import kernel


@dataclass
class FftConfig:
    """Problem size and cost parameters."""

    points: int = 1 << 20
    real_data: bool = False
    seed: int = 0
    sec_per_point_stage: float = cal.FFT_SEC_PER_BUTTERFLY
    element_bytes: int = cal.FFT_ELEMENT_BYTES


def _transpose(ctx: Context, cfg: FftConfig, step: int, block,
               rm: int, cm: int) -> Generator:
    """Distributed transpose of an rm x cm row-distributed matrix.

    Returns this rank's row block of the cm x rm transposed matrix.
    Every rank exchanges an (rm/p) x (cm/p) sub-block with every other
    rank — the all-to-all of Table 2.
    """
    p = ctx.num_ranks
    rank = ctx.rank
    my_rows = partition(rm, p, rank)
    new_rows = partition(cm, p, rank)
    tag = ("fft-t", step)

    out = None
    if cfg.real_data:
        out = np.empty((len(new_rows), rm), dtype=complex)

    for s in range(p):
        dst_cols = partition(cm, p, s)
        if s == rank:
            if cfg.real_data:
                out[:, my_rows.start:my_rows.stop] = \
                    block[:, dst_cols.start:dst_cols.stop].T
            continue
        nbytes = len(my_rows) * len(dst_cols) * cfg.element_bytes
        payload = None
        if cfg.real_data:
            payload = block[:, dst_cols.start:dst_cols.stop].copy()
        yield ctx.send(s, nbytes, tag, payload)

    for _ in range(p - 1):
        msg = yield ctx.recv(tag)
        if cfg.real_data:
            src_cols = partition(rm, p, msg.src)
            out[:, src_cols.start:src_cols.stop] = msg.payload.T
    return out


def make_driver(cfg: FftConfig) -> Callable[[Context], Generator]:
    def main(ctx: Context) -> Generator:
        p = ctx.num_ranks
        rank = ctx.rank
        n = cfg.points
        r, c = kernel.split_dims(n)
        if cfg.real_data and (r % p or c % p):
            raise ValueError(f"real-data FFT needs p | {r} and p | {c}")

        block = None
        if cfg.real_data:
            x = kernel.random_signal(n, cfg.seed)
            rows = partition(r, p, rank)
            block = x.reshape(r, c)[rows.start:rows.stop].copy()

        # Transpose 1: R x C -> C x R (rows now indexed by i2).
        block = yield from _transpose(ctx, cfg, 0, block, r, c)
        rows_t1 = partition(c, p, rank)
        yield ctx.compute(kernel.point_stages(len(rows_t1), r)
                          * cfg.sec_per_point_stage)
        if cfg.real_data:
            block = np.fft.fft(block, axis=1)
            block *= kernel.twiddle_block(
                np.arange(rows_t1.start, rows_t1.stop), np.arange(r), n)

        # Transpose 2: C x R -> R x C (rows indexed by k1).
        block = yield from _transpose(ctx, cfg, 1, block, c, r)
        rows_t2 = partition(r, p, rank)
        yield ctx.compute(kernel.point_stages(len(rows_t2), c)
                          * cfg.sec_per_point_stage)
        if cfg.real_data:
            block = np.fft.fft(block, axis=1)

        # Transpose 3: R x C -> C x R (natural output order).
        block = yield from _transpose(ctx, cfg, 2, block, r, c)
        return block

    return main


def _default_config(scale: str) -> FftConfig:
    from ...costmodel import get_scale

    ws = get_scale(scale)
    return FftConfig(points=ws.fft_points)


register_app("fft", "unoptimized", make_driver, _default_config)
register_app("fft", "optimized", make_driver)
