"""An MPI-flavoured facade over the runtime and the collective libraries.

For users porting message-passing code, :class:`Communicator` exposes the
familiar surface — ``rank``/``size``, point-to-point ``send``/``recv``
with tags and source matching, and the collective operations — while
running on the simulated two-layer machine.  The collective algorithms
are selected by name: ``"flat"`` (MPICH-like) or ``"magpie"``
(wide-area-optimized), so a whole program can be switched with one
argument, as Section 6 advertises.

All methods are generators: drive them with ``yield from``.  As in MPI,
all ranks must call collectives in the same order (operation ids are
derived from a per-communicator call counter).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..magpie.interface import get_impl
from ..runtime.context import Context

ANY_SOURCE: Optional[int] = None


class Communicator:
    """MPI-style communicator bound to one rank's :class:`Context`."""

    def __init__(self, ctx: Context, collectives: str = "magpie",
                 name: str = "world") -> None:
        self.ctx = ctx
        self.name = name
        self._impl = get_impl(collectives)
        self._op_ids = itertools.count()
        self._stash: List[Any] = []  # out-of-order point-to-point messages

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def size(self) -> int:
        return self.ctx.num_ranks

    def _tag(self, tag: int) -> Tuple[str, str, int]:
        return ("mpi", self.name, tag)

    def _next_op(self) -> Tuple[str, str, int]:
        return ("mpi-coll", self.name, next(self._op_ids))

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0,
             nbytes: int = 1024) -> Generator:
        """Asynchronous send (returns once the host overhead is paid)."""
        yield self.ctx.send(dest, nbytes, self._tag(tag), obj)

    def recv(self, source: Optional[int] = ANY_SOURCE, tag: int = 0) -> Generator:
        """Blocking receive; returns ``(obj, source)``.

        With a specific ``source``, messages from other senders under the
        same tag are stashed and handed to later receives (MPI matching).
        """
        for i, msg in enumerate(self._stash):
            if msg.tag == self._tag(tag) and (source is ANY_SOURCE
                                              or msg.src == source):
                self._stash.pop(i)
                return msg.payload, msg.src
        while True:
            msg = yield self.ctx.recv(self._tag(tag))
            if source is ANY_SOURCE or msg.src == source:
                return msg.payload, msg.src
            self._stash.append(msg)

    def sendrecv(self, obj: Any, dest: int, source: Optional[int] = ANY_SOURCE,
                 tag: int = 0, nbytes: int = 1024) -> Generator:
        yield from self.send(obj, dest, tag, nbytes)
        result = yield from self.recv(source, tag)
        return result

    # ------------------------------------------------------------------
    # Collectives (signatures loosely follow mpi4py's lowercase methods)
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        yield from self._impl.barrier(self.ctx, self._next_op())

    def bcast(self, obj: Any = None, root: int = 0, nbytes: int = 1024) -> Generator:
        result = yield from self._impl.bcast(self.ctx, self._next_op(), root,
                                             nbytes, obj)
        return result

    def gather(self, obj: Any, root: int = 0, nbytes: int = 1024) -> Generator:
        result = yield from self._impl.gather(self.ctx, self._next_op(), root,
                                              nbytes, obj)
        return result

    def scatter(self, objs: Optional[List[Any]] = None, root: int = 0,
                nbytes: int = 1024) -> Generator:
        result = yield from self._impl.scatter(self.ctx, self._next_op(), root,
                                               nbytes, objs)
        return result

    def allgather(self, obj: Any, nbytes: int = 1024) -> Generator:
        result = yield from self._impl.allgather(self.ctx, self._next_op(),
                                                 nbytes, obj)
        return result

    def alltoall(self, objs: List[Any], nbytes: int = 1024) -> Generator:
        result = yield from self._impl.alltoall(self.ctx, self._next_op(),
                                                nbytes, objs)
        return result

    def reduce(self, obj: Any, op, root: int = 0, nbytes: int = 64) -> Generator:
        result = yield from self._impl.reduce(self.ctx, self._next_op(), root,
                                              nbytes, obj, op)
        return result

    def allreduce(self, obj: Any, op, nbytes: int = 64) -> Generator:
        result = yield from self._impl.allreduce(self.ctx, self._next_op(),
                                                 nbytes, obj, op)
        return result

    def reduce_scatter(self, objs: List[Any], op, nbytes: int = 64) -> Generator:
        result = yield from self._impl.reduce_scatter(self.ctx, self._next_op(),
                                                      nbytes, objs, op)
        return result

    def scan(self, obj: Any, op, nbytes: int = 64) -> Generator:
        result = yield from self._impl.scan(self.ctx, self._next_op(),
                                            nbytes, obj, op)
        return result
