"""MPI-flavoured programming interface over the simulated machine."""

from .comm import ANY_SOURCE, Communicator

__all__ = ["ANY_SOURCE", "Communicator"]
