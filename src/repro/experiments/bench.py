"""Simulator performance trajectory: ``python -m repro bench``.

Runs ``benchmarks/test_simulator_perf.py`` under pytest-benchmark and
records the headline throughput numbers in ``BENCH_simperf.json`` at the
repository root — engine events/s, process switches/s, end-to-end
messages/s, the wall time of one bench-scale Water run (the Figure 3
unit of work), serve points/s at three cache hit rates, and Figure-3
grid points/s for both analytic backends (interpreted predict vs
compiled vectorized replay).  The file is a *trajectory*: each recorded run appends an
entry, so the history of the hot path's speed lives next to the code
that determines it.

Modes::

    python -m repro bench                 # run + append an entry
    python -m repro bench --label "..."   # run + append with a label
    python -m repro bench --check         # run + compare against the last
                                          # committed entry; exit 1 on a
                                          # >20% throughput regression (CI)

``--check`` is wired into CI next to the observability-overhead and
what-if-speedup guards; see docs/performance.md for how to read the file.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional

#: Trajectory file, relative to the working directory (the repo root in CI).
DEFAULT_PATH = "BENCH_simperf.json"

#: Allowed fractional drop in throughput before --check fails.
REGRESSION_TOLERANCE = 0.20

#: Benchmark files the trajectory is measured from.
BENCH_FILES = (
    "benchmarks/test_simulator_perf.py",
    "benchmarks/test_serve_throughput.py",
    # Node IDs: only the throughput feeds — the file's speedup/budget
    # guards have their own CI job and would add assert noise here.
    "benchmarks/test_replay_speedup.py::test_predict_grid_points_throughput",
    "benchmarks/test_replay_speedup.py::test_replay_grid_points_throughput",
    "benchmarks/test_replay_speedup.py::test_adaptive_grid_points_throughput",
)

#: Nominal operations per benchmark round, used to turn pytest-benchmark's
#: min wall time into a throughput.  These mirror the benchmark bodies in
#: the BENCH_FILES.
OPS_PER_ROUND = {
    "test_engine_event_throughput": ("engine_events_per_s", 50_000),
    "test_process_switch_throughput": ("process_switches_per_s", 10_020),
    "test_message_pipeline_throughput": ("messages_per_s", 2_000),
    # One 3x3 Water sweep job through repro.serve = 10 units of work
    # (9 grid points + the baseline) at each cache hit rate.
    "test_serve_throughput_cold": ("serve_points_per_s_cold", 10),
    "test_serve_throughput_mixed": ("serve_points_per_s_50pct_cache", 10),
    "test_serve_throughput_warm": ("serve_points_per_s_warm", 10),
    # Analytic grid backends, 42 Figure-3 points per round each: the
    # interpreted predict path, the compiled vectorized replay path,
    # and the order-adaptive fixed-point engine (fft).
    "test_predict_grid_points_throughput": ("predict_grid_points_per_s", 42),
    "test_replay_grid_points_throughput": ("replay_grid_points_per_s", 42),
    "test_adaptive_grid_points_throughput": ("adaptive_grid_points_per_s", 42),
}

#: Benchmarks whose trajectory number is the *worst* round, not the
#: best: the adaptive engine's wall time varies with how many points
#: converge early, and a sweep planner budgets for the bad round.
WORST_OF_ROUNDS = {"test_adaptive_grid_points_throughput"}

#: Wall-time metric (lower is better) — one bench-scale Water run.
WALL_TIME_BENCH = "test_full_app_run_wall_time"
WALL_TIME_METRIC = "water_run_wall_s"


def run_benchmarks(bench_files=BENCH_FILES) -> Dict:
    """Run the perf benchmarks in a subprocess; return pytest-benchmark JSON."""
    fd, json_path = tempfile.mkstemp(suffix=".json", prefix="bench_")
    os.close(fd)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    try:
        # Benchmark harness code: the subprocess is the point here,
        # no simulated process is anywhere near this call.
        proc = subprocess.run(  # lint: ignore[blocking-call]
            [sys.executable, "-m", "pytest", *bench_files, "-q",
             "--benchmark-disable-gc", f"--benchmark-json={json_path}"],
            env=env,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark run failed (exit {proc.returncode})")
        with open(json_path) as fh:
            return json.load(fh)
    finally:
        os.unlink(json_path)


def summarize(raw: Dict) -> Dict[str, float]:
    """Collapse pytest-benchmark JSON into the headline metrics."""
    mins = {}
    for bench in raw["benchmarks"]:
        name = bench["name"].split("[")[0]
        stat = "max" if name in WORST_OF_ROUNDS else "min"
        mins[name] = bench["stats"][stat]
    metrics: Dict[str, float] = {}
    for bench_name, (metric, ops) in OPS_PER_ROUND.items():
        if bench_name in mins:
            metrics[metric] = round(ops / mins[bench_name], 1)
    if WALL_TIME_BENCH in mins:
        metrics[WALL_TIME_METRIC] = round(mins[WALL_TIME_BENCH], 6)
    return metrics


def load_trajectory(path: str) -> Dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return {
            "description": "Simulator hot-path performance trajectory; "
                           "append entries with `python -m repro bench`.",
            "source": "benchmarks/test_simulator_perf.py "
                      "(pytest-benchmark min over rounds)",
            "entries": [],
        }


def check_regression(baseline: Dict[str, float], current: Dict[str, float],
                     tolerance: float = REGRESSION_TOLERANCE) -> List[str]:
    """Regression messages (empty = pass): throughputs may not drop and the
    Water wall time may not grow by more than ``tolerance``."""
    failures = []
    for metric, base in baseline.items():
        got = current.get(metric)
        if got is None or base <= 0:
            continue
        if metric == WALL_TIME_METRIC:
            if got > base * (1.0 + tolerance):
                failures.append(
                    f"{metric}: {got:.4f}s vs baseline {base:.4f}s "
                    f"(+{(got / base - 1.0) * 100.0:.1f}%, limit +{tolerance * 100:.0f}%)")
        elif got < base * (1.0 - tolerance):
            failures.append(
                f"{metric}: {got:,.0f}/s vs baseline {base:,.0f}/s "
                f"({(got / base - 1.0) * 100.0:.1f}%, limit -{tolerance * 100:.0f}%)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(argv or [])
    check = "--check" in argv
    if check:
        argv.remove("--check")
    label = None
    if "--label" in argv:
        i = argv.index("--label")
        label = argv[i + 1]
        del argv[i:i + 2]
    path = argv[0] if argv else DEFAULT_PATH

    trajectory = load_trajectory(path)
    metrics = summarize(run_benchmarks())
    print("\ncurrent hot-path metrics:")
    for metric, value in sorted(metrics.items()):
        if metric == WALL_TIME_METRIC:
            print(f"  {metric:28s} {value:>14,.4f} s")
        else:
            print(f"  {metric:28s} {value:>14,.1f} /s")

    if check:
        entries = trajectory["entries"]
        if not entries:
            print(f"no baseline entries in {path}; nothing to check against",
                  file=sys.stderr)
            return 2
        baseline = entries[-1]
        failures = check_regression(baseline["metrics"], metrics)
        print(f"\nbaseline: {baseline.get('label', '?')}")
        if failures:
            print("PERFORMANCE REGRESSION:", file=sys.stderr)
            for line in failures:
                print("  " + line, file=sys.stderr)
            return 1
        print("within tolerance of the committed baseline "
              f"(-{REGRESSION_TOLERANCE * 100:.0f}% throughput, "
              f"+{REGRESSION_TOLERANCE * 100:.0f}% wall time)")
        return 0

    trajectory["entries"].append({
        "label": label or "local run",
        "metrics": metrics,
    })
    with open(path, "w") as fh:
        json.dump(trajectory, fh, indent=1, sort_keys=False)
        fh.write("\n")
    print(f"\nappended entry {len(trajectory['entries'])} to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main(sys.argv[1:]))
