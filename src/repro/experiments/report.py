"""Terminal rendering for experiment output: tables and ASCII charts."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """A simple aligned text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series_chart(series: Dict[str, List[float]], x_labels: List[str],
                        title: str, y_max: float = 100.0, height: int = 16,
                        y_label: str = "%") -> str:
    """ASCII multi-series chart: one printable column block per x value.

    Good enough to eyeball the Figure 3 curve shapes in a terminal.
    """
    keys = list(series)
    symbols = "ox+*#@%&"[: len(keys)]
    width = len(x_labels)
    rows = []
    for level in range(height, -1, -1):
        threshold = y_max * level / height
        line = []
        for xi in range(width):
            char = " "
            for key, sym in zip(keys, symbols):
                value = series[key][xi]
                if abs(value - threshold) <= y_max / (2 * height):
                    char = sym
            line.append(char)
        label = f"{threshold:5.0f}{y_label} |" if level % 4 == 0 else "      |"
        rows.append(label + "  ".join(c for c in line))
    axis = "      +" + "-" * (3 * width - 2)
    labels = "       " + "  ".join(l[0] for l in x_labels)
    legend = "  ".join(f"{sym}={key}" for key, sym in zip(keys, symbols))
    xdesc = "       x: " + ", ".join(x_labels)
    return "\n".join([title, *rows, axis, labels, xdesc, "  legend: " + legend])


def format_pct(value: float) -> str:
    return f"{value:5.1f}%"
