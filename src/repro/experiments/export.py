"""Export experiment data as CSV/JSON for external plotting.

The terminal tables are for eyeballs; this module emits the same numbers
in machine-readable form::

    python -m repro.experiments.export figure3 --apps water --out water.csv
    python -m repro.experiments.export table1 --format json

Supported datasets: ``table1``, ``figure1``, ``figure3``, ``figure4``,
and ``traffic`` (the per-app inter-cluster pair matrix).
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from typing import Dict, List, Optional

from . import grids
from .runner import Sweeper


def table1_rows(scale: str = "paper") -> List[Dict]:
    from .table1 import PAPER_TABLE1, measure_app

    rows = []
    for app in grids.APPS:
        measured = measure_app(app, scale)
        paper = PAPER_TABLE1[app]
        rows.append({
            "app": app,
            "speedup_32": round(measured.speedup_32, 3),
            "speedup_8": round(measured.speedup_8, 3),
            "traffic_mbyte_s": round(measured.traffic_mbyte_s, 3),
            "runtime_32_s": round(measured.runtime_32, 4),
            "paper_speedup_32": paper["sp32"],
            "paper_speedup_8": paper["sp8"],
            "paper_traffic": paper["traffic"],
            "paper_runtime": paper["runtime"],
        })
    return rows


def figure1_rows(scale: str = "paper") -> List[Dict]:
    from .figure1 import measure

    rows = []
    for app in grids.APPS:
        point = measure(app, scale)
        rows.append({
            "app": app,
            "mbyte_s_per_cluster": round(point.mbyte_s_per_cluster, 4),
            "messages_s_per_cluster": round(point.messages_s_per_cluster, 1),
        })
    return rows


def figure3_rows(apps: Optional[List[str]] = None,
                 scale: str = "bench", seed: int = 0) -> List[Dict]:
    sweeper = Sweeper(scale=scale, seed=seed)
    rows = []
    for app in (apps or grids.APPS):
        variants = ["unoptimized"] if app == "fft" else ["unoptimized", "optimized"]
        for variant in variants:
            grid = sweeper.speedup_grid(app, variant)
            for (bw, lat), point in sorted(grid.points.items()):
                rows.append({
                    "app": app,
                    "variant": variant,
                    "bandwidth_mbyte_s": bw,
                    "latency_ms": lat,
                    "runtime_s": round(point.runtime, 6),
                    "relative_speedup_pct": round(point.relative_speedup_pct, 2),
                })
    return rows


def figure4_rows(scale: str = "bench", seed: int = 0) -> List[Dict]:
    sweeper = Sweeper(scale=scale, seed=seed)
    rows = []
    for app in grids.APPS:
        variant = "optimized" if app != "fft" else "unoptimized"
        for bw in grids.BANDWIDTHS_MBYTE_S:
            rows.append({
                "app": app, "panel": "bandwidth",
                "bandwidth_mbyte_s": bw, "latency_ms": grids.FIGURE4_LATENCY_MS,
                "communication_time_pct": round(
                    sweeper.communication_time_pct(
                        app, variant, bw, grids.FIGURE4_LATENCY_MS), 2),
            })
        for lat in grids.LATENCIES_MS:
            rows.append({
                "app": app, "panel": "latency",
                "bandwidth_mbyte_s": grids.FIGURE4_BANDWIDTH, "latency_ms": lat,
                "communication_time_pct": round(
                    sweeper.communication_time_pct(
                        app, variant, grids.FIGURE4_BANDWIDTH, lat), 2),
            })
    return rows


def traffic_rows(apps: Optional[List[str]] = None,
                 scale: str = "bench", seed: int = 0,
                 faults=None) -> List[Dict]:
    """Inter-cluster traffic pair matrix per app at the Figure-1 point.

    Each row carries the run-level fault/transport counters (zero on
    clean runs) so a CSV from a faulty run (pass a
    :class:`~repro.faults.plan.FaultPlan`) is directly comparable.
    """
    from ..apps import run_app

    topo = grids.multi_cluster(grids.FIGURE1_BANDWIDTH, grids.FIGURE1_LATENCY_MS)
    rows = []
    for app in (apps or grids.APPS):
        variant = "optimized" if app != "fft" else "unoptimized"
        result = run_app(app, variant, topo, scale=scale, seed=seed,
                         faults=faults)
        stats = result.machine.stats
        for row in result.machine.stats.pair_rows():
            rows.append({"app": app, "variant": variant, **row,
                         "fault_drops": stats.fault_drops,
                         "retransmits": stats.retransmits,
                         "acks": stats.acks,
                         "dup_data_drops": stats.dup_data_drops})
    return rows


DATASETS = {
    "table1": table1_rows,
    "figure1": figure1_rows,
    "figure3": figure3_rows,
    "figure4": figure4_rows,
    "traffic": traffic_rows,
}


def to_csv(rows: List[Dict]) -> str:
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def to_json(rows: List[Dict]) -> str:
    return json.dumps(rows, indent=2)


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dataset", choices=sorted(DATASETS))
    parser.add_argument("--format", default="csv", choices=["csv", "json"])
    parser.add_argument("--out", default=None, help="output path (default stdout)")
    parser.add_argument("--scale", default=None, choices=[None, "paper", "bench"])
    parser.add_argument("--apps", nargs="*", default=None)
    parser.add_argument("--faults", type=float, default=None, metavar="LOSS",
                        help="traffic dataset only: run under uniform WAN "
                             "loss (probability) with the reliable transport")
    args = parser.parse_args(argv)

    kwargs = {}
    if args.scale:
        kwargs["scale"] = args.scale
    if args.apps and args.dataset in ("figure3", "traffic"):
        kwargs["apps"] = args.apps
    if args.faults is not None and args.dataset == "traffic":
        from ..faults import FaultPlan

        kwargs["faults"] = FaultPlan.wan_loss(args.faults)
    rows = DATASETS[args.dataset](**kwargs)
    text = to_csv(rows) if args.format == "csv" else to_json(rows)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {len(rows)} rows to {args.out}", file=sys.stderr)
    else:
        print(text, end="")


if __name__ == "__main__":
    main()
