"""The paper's experimental grids (Section 5).

Figure 3 sweeps inter-cluster bandwidth over {6.3, 2.6, 0.95, 0.3, 0.1,
0.03} MByte/s and one-way latency over {0.5, 1.3, 3.3, 10, 30, 100, 300}
ms on 4 clusters of 8 processors, with an all-Myrinet 32-processor run as
the 100% baseline.  (The paper quotes 0.4 ms as the lowest latency in
Section 3.2 and 0.5 ms in the figures; we follow the figures.)
"""

from __future__ import annotations

from typing import List, Tuple

from ..network.topology import Topology, das_topology, single_cluster

#: Figure 3 x-axis, MByte/s per WAN link.
BANDWIDTHS_MBYTE_S: Tuple[float, ...] = (6.3, 2.6, 0.95, 0.3, 0.1, 0.03)

#: Figure 3 series, one-way WAN latency in ms.
LATENCIES_MS: Tuple[float, ...] = (0.5, 1.3, 3.3, 10.0, 30.0, 100.0, 300.0)

#: The paper's system shape.
NUM_CLUSTERS = 4
CLUSTER_SIZE = 8
NUM_RANKS = NUM_CLUSTERS * CLUSTER_SIZE

#: Figure 1 / Table-ish reference WAN point (6 MByte/s, 0.5 ms).
FIGURE1_BANDWIDTH = 6.0
FIGURE1_LATENCY_MS = 0.5

#: Figure 4 fixed points.
FIGURE4_LATENCY_MS = 3.3          # left panel: sweep bandwidth at 3.3 ms
FIGURE4_BANDWIDTH = 0.9           # right panel: sweep latency at 0.9 MByte/s

#: The six applications, in the paper's Table 1 order.
APPS: Tuple[str, ...] = ("water", "barnes", "tsp", "asp", "awari", "fft")

#: Applications with a distinct optimized variant (FFT has none).
OPTIMIZED_APPS: Tuple[str, ...] = ("water", "barnes", "tsp", "asp", "awari")


def multi_cluster(bandwidth_mbyte_s: float, latency_ms: float,
                  clusters: int = NUM_CLUSTERS,
                  cluster_size: int = CLUSTER_SIZE,
                  wan_shape: str = "full") -> Topology:
    """A Figure-3 grid point topology (optionally star/ring shaped)."""
    from ..network.linkspec import wan
    from ..network.topology import Topology as _Topology
    from ..network.linkspec import myrinet

    return _Topology(tuple([cluster_size] * clusters), myrinet(),
                     wan(latency_ms, bandwidth_mbyte_s), wan_shape=wan_shape)


def baseline(num_ranks: int = NUM_RANKS) -> Topology:
    """The all-Myrinet machine the speedups are measured against."""
    return single_cluster(num_ranks)
