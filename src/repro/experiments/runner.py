"""Sweep driver: relative speedups over the bandwidth x latency grid.

Relative speedup follows the paper exactly: ``T_L / T_M * 100%`` where
``T_L`` is the run time on the all-Myrinet single cluster with the same
number of processors and ``T_M`` the run time on the multi-cluster.
Baseline runs are cached per (app, variant, scale, ranks, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps import default_config, run_app
from ..network.topology import Topology
from ..obs.report import RunReporter, run_record
from ..runtime.run import RunResult
from . import grids


@dataclass
class GridPoint:
    bandwidth_mbyte_s: float
    latency_ms: float
    runtime: float
    relative_speedup_pct: float


@dataclass
class SpeedupGrid:
    """Relative-speedup surface for one application variant."""

    app: str
    variant: str
    baseline_runtime: float
    points: Dict[Tuple[float, float], GridPoint] = field(default_factory=dict)

    def series(self, latency_ms: float) -> List[GridPoint]:
        """One Figure-3 curve: points of a latency series, by bandwidth."""
        return [self.points[(bw, latency_ms)]
                for bw in sorted({bw for bw, lat in self.points
                                  if lat == latency_ms})]


class Sweeper:
    """Runs applications over grids with baseline caching.

    Pass ``reporter=`` (a :class:`~repro.obs.report.RunReporter`) to get
    one machine-readable JSON-lines record per simulated run — config,
    seed, topology, sim/wall time, and the full traffic summary — the raw
    material sharded/async sweep drivers resume from.
    """

    def __init__(self, scale: str = "bench", seed: int = 0,
                 reporter: Optional[RunReporter] = None) -> None:
        self.scale = scale
        self.seed = seed
        self.reporter = reporter
        self._baseline_cache: Dict[Tuple[str, str, int], float] = {}

    # ------------------------------------------------------------------
    def run_on(self, app: str, variant: str, topo: Topology) -> RunResult:
        config = default_config(app, self.scale)
        result = run_app(app, variant, topo, config=config, seed=self.seed)
        if self.reporter is not None:
            self.reporter.emit(run_record(
                result.machine, result.runtime, result.wall_time,
                meta={"app": app, "variant": variant, "scale": self.scale,
                      "harness": "sweeper"}))
        return result

    def baseline_runtime(self, app: str, variant: str,
                         num_ranks: int = grids.NUM_RANKS) -> float:
        key = (app, variant, num_ranks)
        if key not in self._baseline_cache:
            result = self.run_on(app, variant, grids.baseline(num_ranks))
            self._baseline_cache[key] = result.runtime
        return self._baseline_cache[key]

    # ------------------------------------------------------------------
    def speedup_at(self, app: str, variant: str, bandwidth: float,
                   latency_ms: float, clusters: int = grids.NUM_CLUSTERS,
                   cluster_size: int = grids.CLUSTER_SIZE,
                   wan_shape: str = "full") -> GridPoint:
        topo = grids.multi_cluster(bandwidth, latency_ms, clusters,
                                   cluster_size, wan_shape)
        result = self.run_on(app, variant, topo)
        base = self.baseline_runtime(app, variant, clusters * cluster_size)
        return GridPoint(
            bandwidth_mbyte_s=bandwidth,
            latency_ms=latency_ms,
            runtime=result.runtime,
            relative_speedup_pct=100.0 * base / result.runtime,
        )

    def speedup_grid(self, app: str, variant: str,
                     bandwidths=grids.BANDWIDTHS_MBYTE_S,
                     latencies=grids.LATENCIES_MS) -> SpeedupGrid:
        """The full Figure-3 panel for one application variant."""
        grid = SpeedupGrid(app=app, variant=variant,
                           baseline_runtime=self.baseline_runtime(app, variant))
        for lat in latencies:
            for bw in bandwidths:
                grid.points[(bw, lat)] = self.speedup_at(app, variant, bw, lat)
        return grid

    # ------------------------------------------------------------------
    def communication_time_pct(self, app: str, variant: str, bandwidth: float,
                               latency_ms: float) -> float:
        """Figure 4's metric: (T_M - T_L) / T_M * 100."""
        point = self.speedup_at(app, variant, bandwidth, latency_ms)
        base = self.baseline_runtime(app, variant)
        return max(0.0, 100.0 * (point.runtime - base) / point.runtime)
