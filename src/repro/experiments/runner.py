"""Sweep driver: relative speedups over the bandwidth x latency grid.

Relative speedup follows the paper exactly: ``T_L / T_M * 100%`` where
``T_L`` is the run time on the all-Myrinet single cluster with the same
number of processors and ``T_M`` the run time on the multi-cluster.
Baseline runs are cached per (app, variant, scale, ranks, seed).

Three orthogonal accelerators (all off by default):

``predict=True`` (equivalently ``backend="predict"``)
    Record the application's communication DAG once (see
    :mod:`repro.whatif`), validate predictions against full simulations
    at the grid corners, then fill the rest of the grid analytically —
    orders of magnitude faster than simulating every point.  Apps whose
    recordings are timing-sensitive (TSP's work stealing, Awari's
    arrival-order MARK protocol) or whose validation error exceeds
    ``tolerance_pp`` fall back to full simulation automatically.

``backend="replay"``
    Compile the recorded DAG into a flat vectorized event program (see
    :mod:`repro.replay`) and price the whole grid in one numpy pass —
    another order of magnitude over the predict path.  The fallback
    ladder is automatic, one rung per failure mode: DAGs whose frozen
    contention orders drift at the grid corners (the probe) try the
    **vectorized-adaptive** rung first — a fixed-point engine that
    re-sorts every contended queue per grid point (see
    :mod:`repro.replay.adaptive`) and keeps the grid batched when its
    corner convergence check passes (fft); programs whose iteration
    does not converge (water's deep value feedback) downgrade to the
    per-point predict evaluator, and individual unconverged points of
    an otherwise-adaptive grid downgrade the same way, point by point;
    timing-sensitive recordings, active fault plans, and
    corner-validation failures fall all the way back to full
    simulation.  The four grid-corner points of a replayed grid are
    always the *simulated* ground truth (they were computed for
    validation anyway), so spot-checking a replayed grid against a full
    sweep at the corners compares identical floats.

``workers=N``
    Run ground-truth grid simulations in a
    :class:`concurrent.futures.ProcessPoolExecutor` with ``N`` workers.
    Results are merged in the serial iteration order, so the produced
    grid is identical to a serial run.  (Per-run reporter records are
    not emitted for pool-side runs.)

``cache=SimCache(...)``
    Memoize every ground-truth runtime on disk; see
    :mod:`repro.experiments.cache`.

``faults=FaultPlan(...)``
    Inject the plan's WAN faults into every *multi-cluster* run (the
    all-Myrinet baseline stays clean — relative speedups then read as
    "degraded WAN vs. ideal LAN", mirroring the paper's T_L / T_M).  A
    fault-bearing sweep disables all three accelerators for the faulty
    runs: the what-if predictor falls back (recorded DAGs do not model
    loss or retransmission), the on-disk cache is bypassed (its key does
    not include the plan), and grid points run serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import default_config, run_app
from ..network.topology import Topology
from ..obs.report import RunReporter, run_record
from ..runtime.run import RunResult
from . import grids
from .cache import SimCache


@dataclass
class GridPoint:
    bandwidth_mbyte_s: float
    latency_ms: float
    runtime: float
    relative_speedup_pct: float


@dataclass
class SpeedupGrid:
    """Relative-speedup surface for one application variant."""

    app: str
    variant: str
    baseline_runtime: float
    points: Dict[Tuple[float, float], GridPoint] = field(default_factory=dict)
    #: True when the points were produced by the what-if evaluator
    #: rather than full simulation.
    predicted: bool = False
    #: the :class:`repro.whatif.validate.ValidationReport` backing a
    #: predicted grid (or explaining why prediction fell back), if any.
    validation: Optional[object] = None
    #: the rung of the backend ladder that actually produced the points:
    #: "simulate", "predict", "vectorized-adaptive", or "replay".
    backend: str = "simulate"
    #: the :class:`repro.replay.backend.ProbeReport` measured while
    #: deciding a ``backend="replay"`` sweep, if one was run.
    replay: Optional[object] = None
    #: the :class:`repro.replay.backend.ConvergenceReport` measured for
    #: a probe-unstable program, if the adaptive rung was tried.
    convergence: Optional[object] = None
    #: (bw, lat) points of a "vectorized-adaptive" grid that did not
    #: converge and were re-priced by the interpreted evaluator.
    downgraded_points: List[Tuple[float, float]] = field(default_factory=list)

    def series(self, latency_ms: float) -> List[GridPoint]:
        """One Figure-3 curve: points of a latency series, by bandwidth."""
        if not self.points:
            raise KeyError(
                f"speedup grid for {self.app}/{self.variant} has no points "
                f"yet — populate it with Sweeper.speedup_grid() before "
                f"calling series()")
        bws = sorted({bw for bw, lat in self.points if lat == latency_ms})
        if not bws:
            available = ", ".join(
                f"{lat:g}" for lat in sorted({lat for _, lat in self.points}))
            raise KeyError(
                f"speedup grid for {self.app}/{self.variant} has no "
                f"latency={latency_ms:g} ms series; available latencies: "
                f"{available} ms")
        return [self.points[(bw, latency_ms)] for bw in bws]


@dataclass
class _ReplayDecision:
    """Memoized outcome of the replay fallback ladder for one app.

    ``mode`` is the rung that will produce the grid ("replay",
    "vectorized-adaptive", "predict", or "simulate"); ``backend`` the
    :class:`~repro.replay.backend.ReplayBackend` (None when faults
    short-circuited before recording); ``predict_fn`` the per-point
    evaluator closure — the grid producer on the "predict" rung, the
    per-point downgrade target for unconverged points on the
    "vectorized-adaptive" rung; ``report`` the ground-truth
    :class:`~repro.whatif.validate.ValidationReport`; ``probe`` the
    frozen-order :class:`~repro.replay.backend.ProbeReport` when one
    was measured; ``convergence`` the adaptive-rung
    :class:`~repro.replay.backend.ConvergenceReport` when one was run.
    """

    mode: str
    backend: Optional[object]
    predict_fn: Optional[object]
    report: Optional[object]
    probe: Optional[object]
    convergence: Optional[object] = None


def point_key(app: str, variant: str, scale: str, seed: int,
              bandwidth_mbyte_s: float, latency_ms: float,
              clusters: int = grids.NUM_CLUSTERS,
              cluster_size: int = grids.CLUSTER_SIZE,
              wan_shape: str = "full") -> str:
    """Content-addressed :class:`SimCache` key for one clean grid point.

    This is *the* per-point identity the sweep machinery and
    :mod:`repro.serve` share: two processes (or two users' job
    submissions) that name the same ``(app, variant, scale, seed,
    grid-point, cluster shape)`` compute the same key and therefore
    dedup against the same on-disk entry.  The key is a pure function of
    its arguments — no process state, no dict iteration order — backed
    by :meth:`~repro.network.topology.Topology.fingerprint`.
    """
    topo = grids.multi_cluster(bandwidth_mbyte_s, latency_ms, clusters,
                               cluster_size, wan_shape)
    return SimCache.key(app, variant, scale, seed, topo)


def baseline_key(app: str, variant: str, scale: str, seed: int,
                 num_ranks: int = grids.NUM_RANKS) -> str:
    """:class:`SimCache` key for the all-Myrinet baseline run."""
    return SimCache.key(app, variant, scale, seed, grids.baseline(num_ranks))


def _simulate_point(payload: tuple) -> Tuple[float, float, float]:
    """Worker-process task: one ground-truth grid simulation.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; returns
    ``(bandwidth, latency_ms, runtime)``.
    """
    (app, variant, scale, seed, bw, lat, clusters, cluster_size,
     wan_shape) = payload
    topo = grids.multi_cluster(bw, lat, clusters, cluster_size, wan_shape)
    config = default_config(app, scale)
    result = run_app(app, variant, topo, config=config, seed=seed)
    return (bw, lat, result.runtime)


class Sweeper:
    """Runs applications over grids with baseline caching.

    Pass ``reporter=`` (a :class:`~repro.obs.report.RunReporter`) to get
    one machine-readable JSON-lines record per simulated run — config,
    seed, topology, sim/wall time, and the full traffic summary — the raw
    material sharded/async sweep drivers resume from.
    """

    def __init__(self, scale: str = "bench", seed: int = 0,
                 reporter: Optional[RunReporter] = None,
                 predict: bool = False,
                 workers: Optional[int] = None,
                 cache: Optional[SimCache] = None,
                 tolerance_pp: float = 5.0,
                 faults=None,
                 backend: Optional[str] = None) -> None:
        if backend is None:
            backend = "predict" if predict else "simulate"
        if backend not in ("simulate", "predict", "replay"):
            raise ValueError(
                f"unknown sweep backend {backend!r}: expected 'simulate', "
                f"'predict', or 'replay'")
        self.scale = scale
        self.seed = seed
        self.reporter = reporter
        self.backend = backend
        self.predict = backend == "predict"
        self.workers = workers
        self.cache = cache
        self.tolerance_pp = tolerance_pp
        self.faults = faults
        self._baseline_cache: Dict[Tuple[str, str, int], float] = {}
        #: (app, variant, clusters, cluster_size, wan_shape) ->
        #: (predictor-or-None, ValidationReport-or-None)
        self._predictors: Dict[tuple, tuple] = {}
        #: same key -> memoized :class:`_ReplayDecision`
        self._replays: Dict[tuple, _ReplayDecision] = {}

    @property
    def _active_faults(self):
        """The sweep's :class:`FaultPlan` when it changes runs, else None."""
        plan = self.faults
        if plan is not None and plan.active:
            return plan
        return None

    # ------------------------------------------------------------------
    def run_on(self, app: str, variant: str, topo: Topology,
               faults=None) -> RunResult:
        config = default_config(app, self.scale)
        result = run_app(app, variant, topo, config=config, seed=self.seed,
                         faults=faults)
        if self.reporter is not None:
            self.reporter.emit(run_record(
                result.machine, result.runtime, result.wall_time,
                meta={"app": app, "variant": variant, "scale": self.scale,
                      "harness": "sweeper"}))
        return result

    def _sim_runtime(self, app: str, variant: str, topo: Topology,
                     faults=None) -> float:
        """Ground-truth runtime for one point, via the on-disk cache.

        Fault-bearing runs bypass the cache entirely — its key does not
        encode the plan, so a hit from (or a store into) a clean sweep
        would silently mix clean and degraded runtimes.
        """
        if faults is None and self.cache is not None:
            hit = self.cache.get(app, variant, self.scale, self.seed, topo)
            if hit is not None:
                return hit
        runtime = self.run_on(app, variant, topo, faults=faults).runtime
        if faults is None and self.cache is not None:
            self.cache.put(app, variant, self.scale, self.seed, topo, runtime)
        return runtime

    def baseline_runtime(self, app: str, variant: str,
                         num_ranks: int = grids.NUM_RANKS) -> float:
        key = (app, variant, num_ranks)
        if key not in self._baseline_cache:
            self._baseline_cache[key] = self._sim_runtime(
                app, variant, grids.baseline(num_ranks))
        return self._baseline_cache[key]

    # ------------------------------------------------------------------
    # What-if prediction machinery
    # ------------------------------------------------------------------
    def _predictor(self, app: str, variant: str,
                   clusters: int = grids.NUM_CLUSTERS,
                   cluster_size: int = grids.CLUSTER_SIZE,
                   wan_shape: str = "full"):
        """Record-once predictor for (app, variant), or None on fallback.

        Returns ``(predict_fn, report)``: ``predict_fn(bw, lat) ->
        runtime`` backed by a validated :class:`~repro.whatif.evaluate.
        Evaluator`, or ``None`` when the app must be fully simulated
        (timing-sensitive recording or validation error above
        ``tolerance_pp``).  The decision is memoized per shape.
        """
        from ..whatif.evaluate import Evaluator
        from ..whatif.record import record_app
        from ..whatif.validate import ValidationReport, corner_points, validate

        memo_key = (app, variant, clusters, cluster_size, wan_shape)
        if memo_key in self._predictors:
            return self._predictors[memo_key]

        if self._active_faults is not None:
            report = ValidationReport(
                app=app, variant=variant, tolerance_pp=self.tolerance_pp,
                fallback=True,
                reason="fault injection active: recorded DAGs do not model "
                       "loss, outages, or retransmission; simulating every "
                       "grid point")
            self._predictors[memo_key] = (None, report)
            return self._predictors[memo_key]

        def topology_for(bw: float, lat: float) -> Topology:
            return grids.multi_cluster(bw, lat, clusters, cluster_size,
                                       wan_shape)

        recording = record_app(app, variant, scale=self.scale, seed=self.seed)
        if recording.timing_sensitive:
            report = validate(recording, 1.0, lambda bw, lat: 1.0, [],
                              tolerance_pp=self.tolerance_pp)
            self._predictors[memo_key] = (None, report)
            return self._predictors[memo_key]

        evaluator = Evaluator(recording.dag)
        baseline = self.baseline_runtime(app, variant,
                                         clusters * cluster_size)
        report = validate(
            recording,
            baseline_runtime=baseline,
            simulate=lambda bw, lat: self._sim_runtime(
                app, variant, topology_for(bw, lat)),
            points=corner_points(grids.BANDWIDTHS_MBYTE_S, grids.LATENCIES_MS),
            tolerance_pp=self.tolerance_pp,
            evaluator=evaluator,
            topology_for=topology_for,
        )
        if report.fallback:
            self._predictors[memo_key] = (None, report)
        else:
            self._predictors[memo_key] = (
                lambda bw, lat: evaluator.evaluate(topology_for(bw, lat)),
                report)
        return self._predictors[memo_key]

    # ------------------------------------------------------------------
    # Replay machinery (vectorized compiled-DAG pricing)
    # ------------------------------------------------------------------
    def _replay(self, app: str, variant: str,
                clusters: int = grids.NUM_CLUSTERS,
                cluster_size: int = grids.CLUSTER_SIZE,
                wan_shape: str = "full") -> _ReplayDecision:
        """Walk the replay fallback ladder once per (app, variant, shape).

        Raises :class:`~repro.replay.ReplayUnavailable` when numpy is
        missing — asking for the vectorized backend without its one
        dependency is a setup error, not a fallback condition.
        """
        from ..replay.backend import (ReplayBackend, _AdaptiveEvaluator,
                                      _ProgramEvaluator)
        from ..replay.compile import CompileError
        from ..whatif.validate import ValidationReport, corner_points, validate

        memo_key = (app, variant, clusters, cluster_size, wan_shape)
        if memo_key in self._replays:
            return self._replays[memo_key]

        def decide(decision: _ReplayDecision) -> _ReplayDecision:
            self._replays[memo_key] = decision
            self._emit_replay_record(app, variant, decision)
            return decision

        if self._active_faults is not None:
            report = ValidationReport(
                app=app, variant=variant, tolerance_pp=self.tolerance_pp,
                fallback=True,
                reason="fault injection active: compiled replay programs "
                       "model loss only as an expected-value delay, not the "
                       "plan's seeded faults; simulating every grid point")
            return decide(_ReplayDecision("simulate", None, None, report, None))

        def topology_for(bw: float, lat: float) -> Topology:
            return grids.multi_cluster(bw, lat, clusters, cluster_size,
                                       wan_shape)

        backend = ReplayBackend.for_app(app, variant, scale=self.scale,
                                        seed=self.seed, cache=self.cache)
        recording = backend.recording
        if recording.timing_sensitive:
            report = validate(recording, 1.0, lambda bw, lat: 1.0, [],
                              tolerance_pp=self.tolerance_pp)
            return decide(
                _ReplayDecision("simulate", backend, None, report, None))

        try:
            backend.prepare()
        except CompileError as err:
            report = ValidationReport(
                app=app, variant=variant, tolerance_pp=self.tolerance_pp,
                fallback=True,
                reason=f"replay compilation failed: {err}")
            return decide(
                _ReplayDecision("simulate", backend, None, report, None))

        probe = backend.probe()
        baseline = self.baseline_runtime(app, variant,
                                         clusters * cluster_size)
        corners = corner_points(grids.BANDWIDTHS_MBYTE_S, grids.LATENCIES_MS)

        def sim(bw: float, lat: float) -> float:
            return self._sim_runtime(app, variant, topology_for(bw, lat))

        if probe.stable:
            # Ground-truth corner validation of the *program* itself,
            # sharing validate() verbatim with the predict path.
            report = validate(
                recording, baseline_runtime=baseline, simulate=sim,
                points=corners, tolerance_pp=self.tolerance_pp,
                evaluator=_ProgramEvaluator(backend.program),
                topology_for=topology_for)
            mode = "simulate" if report.fallback else "replay"
            return decide(_ReplayDecision(mode, backend, None, report, probe))

        # Order-unstable program: try the vectorized-adaptive rung
        # before giving up the batched grid — the fixed-point engine
        # re-sorts every contended queue per grid point and proves
        # itself at the corners first.
        evaluator = backend.evaluator
        predict_fn = lambda bw, lat: evaluator.evaluate(topology_for(bw, lat))
        convergence = backend.convergence_check()
        if convergence.converged:
            # Ground-truth corner validation of the *adaptive engine*
            # itself, sharing validate() verbatim with the other rungs.
            report = validate(
                recording, baseline_runtime=baseline, simulate=sim,
                points=corners, tolerance_pp=self.tolerance_pp,
                evaluator=_AdaptiveEvaluator(backend.prepare_adaptive()),
                topology_for=topology_for)
            # A converged engine that fails ground truth means the
            # recording itself is wrong at the corners — the evaluator
            # prices the same schedule, so the predict rung would fail
            # identically; go straight to simulation.
            mode = "simulate" if report.fallback else "vectorized-adaptive"
            return decide(_ReplayDecision(
                mode, backend, None if report.fallback else predict_fn,
                report, probe, convergence))

        # Unconverged at the corners (deep value feedback like water's
        # daemon scheduling): downgrade to the interpreted per-point
        # evaluator, which re-resolves contention at every grid point.
        report = validate(
            recording, baseline_runtime=baseline, simulate=sim,
            points=corners, tolerance_pp=self.tolerance_pp,
            evaluator=evaluator, topology_for=topology_for)
        if report.fallback:
            return decide(_ReplayDecision("simulate", backend, None, report,
                                          probe, convergence))
        return decide(_ReplayDecision("predict", backend, predict_fn,
                                      report, probe, convergence))

    def _emit_replay_record(self, app: str, variant: str,
                            decision: _ReplayDecision) -> None:
        if self.reporter is None:
            return
        from ..replay.backend import replay_record

        backend = decision.backend
        program = getattr(backend, "program", None)
        self.reporter.emit(replay_record(
            app=app, variant=variant, scale=self.scale, seed=self.seed,
            mode=decision.mode,
            program_stats=program.stats() if program is not None else None,
            timings=backend.timings if backend is not None else None,
            from_cache=backend.from_cache if backend is not None else False,
            probe_summary=(decision.probe.summary()
                           if decision.probe is not None else None),
            validation_summary=(decision.report.summary()
                                if decision.report is not None else None),
            static_hint=(backend.static_hint
                         if backend is not None else None),
            convergence_summary=(decision.convergence.summary()
                                 if decision.convergence is not None
                                 else None),
            meta={"harness": "sweeper"}))

    # ------------------------------------------------------------------
    def speedup_at(self, app: str, variant: str, bandwidth: float,
                   latency_ms: float, clusters: int = grids.NUM_CLUSTERS,
                   cluster_size: int = grids.CLUSTER_SIZE,
                   wan_shape: str = "full") -> GridPoint:
        base = self.baseline_runtime(app, variant, clusters * cluster_size)
        runtime = None
        if self.backend == "replay":
            decision = self._replay(app, variant, clusters, cluster_size,
                                    wan_shape)
            if decision.mode == "replay":
                runtime = decision.backend.price(bandwidth, latency_ms)
            elif decision.mode == "vectorized-adaptive":
                topo = grids.multi_cluster(bandwidth, latency_ms, clusters,
                                           cluster_size, wan_shape)
                rt, converged, _iters = \
                    decision.backend.prepare_adaptive().price_adaptive(topo)
                # An unconverged point downgrades to the interpreted
                # evaluator — never a silently-wrong adaptive price.
                runtime = rt if converged else \
                    decision.predict_fn(bandwidth, latency_ms)
            elif decision.mode == "predict":
                runtime = decision.predict_fn(bandwidth, latency_ms)
        elif self.predict:
            predict_fn, _report = self._predictor(app, variant, clusters,
                                                  cluster_size, wan_shape)
            if predict_fn is not None:
                runtime = predict_fn(bandwidth, latency_ms)
        if runtime is None:
            topo = grids.multi_cluster(bandwidth, latency_ms, clusters,
                                       cluster_size, wan_shape)
            runtime = self._sim_runtime(app, variant, topo,
                                        faults=self._active_faults)
        return GridPoint(
            bandwidth_mbyte_s=bandwidth,
            latency_ms=latency_ms,
            runtime=runtime,
            relative_speedup_pct=100.0 * base / runtime,
        )

    def _simulate_grid(self, app: str, variant: str,
                       points: Sequence[Tuple[float, float]]
                       ) -> Dict[Tuple[float, float], float]:
        """Ground-truth runtimes for ``points``, serial or pooled.

        The parallel path checks the on-disk cache up front, fans the
        misses out to a process pool, and merges in the serial iteration
        order — the resulting dict is identical to a serial sweep's.
        Fault-bearing sweeps always run serially (the pool payload does
        not carry the plan) and never touch the cache.
        """
        faults = self._active_faults
        runtimes: Dict[Tuple[float, float], Optional[float]] = {}
        if self.workers and self.workers > 1 and faults is None:
            from concurrent.futures import ProcessPoolExecutor

            misses: List[Tuple[float, float]] = []
            for bw, lat in points:
                hit = None
                if self.cache is not None:
                    entry = self.cache.lookup(
                        point_key(app, variant, self.scale, self.seed, bw, lat))
                    if entry is not None and "runtime" in entry:
                        hit = float(entry["runtime"])
                runtimes[(bw, lat)] = hit
                if hit is None:
                    misses.append((bw, lat))
            if misses:
                payloads = [(app, variant, self.scale, self.seed, bw, lat,
                             grids.NUM_CLUSTERS, grids.CLUSTER_SIZE, "full")
                            for bw, lat in misses]
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    for bw, lat, runtime in pool.map(_simulate_point, payloads):
                        runtimes[(bw, lat)] = runtime
                        if self.cache is not None:
                            self.cache.put(app, variant, self.scale, self.seed,
                                           grids.multi_cluster(bw, lat),
                                           runtime)
        else:
            for bw, lat in points:
                runtimes[(bw, lat)] = self._sim_runtime(
                    app, variant, grids.multi_cluster(bw, lat), faults=faults)
        return runtimes

    def speedup_grid(self, app: str, variant: str,
                     bandwidths=grids.BANDWIDTHS_MBYTE_S,
                     latencies=grids.LATENCIES_MS) -> SpeedupGrid:
        """The full Figure-3 panel for one application variant."""
        base = self.baseline_runtime(app, variant)
        grid = SpeedupGrid(app=app, variant=variant, baseline_runtime=base)

        if self.backend == "replay":
            decision = self._replay(app, variant)
            grid.validation = decision.report
            grid.backend = decision.mode
            grid.replay = decision.probe
            grid.convergence = decision.convergence
            if decision.mode in ("replay", "vectorized-adaptive", "predict"):
                grid.predicted = True
                if decision.mode == "replay":
                    priced = decision.backend.price_grid(bandwidths, latencies)
                    runtime_at = lambda i, j: float(priced[i][j])
                elif decision.mode == "vectorized-adaptive":
                    result = decision.backend.price_grid_adaptive(
                        bandwidths, latencies)

                    def runtime_at(i, j, _r=result):
                        # Per-point downgrade: a point the iteration
                        # could not fix is re-priced by the interpreted
                        # evaluator instead of trusting a capped value.
                        if bool(_r.converged[i][j]):
                            return float(_r.runtimes[i][j])
                        grid.downgraded_points.append(
                            (bandwidths[j], latencies[i]))
                        return decision.predict_fn(bandwidths[j],
                                                   latencies[i])
                else:
                    runtime_at = lambda i, j: decision.predict_fn(
                        bandwidths[j], latencies[i])
                for i, lat in enumerate(latencies):
                    for j, bw in enumerate(bandwidths):
                        runtime = runtime_at(i, j)
                        grid.points[(bw, lat)] = GridPoint(
                            bandwidth_mbyte_s=bw, latency_ms=lat,
                            runtime=runtime,
                            relative_speedup_pct=100.0 * base / runtime)
                # The validation corners were simulated anyway — splice
                # the ground truth in so analytic grids agree with full
                # sweeps bit-for-bit at the spot-check points.
                for vp in decision.report.points:
                    key = (vp.bandwidth_mbyte_s, vp.latency_ms)
                    if key in grid.points:
                        grid.points[key] = GridPoint(
                            bandwidth_mbyte_s=vp.bandwidth_mbyte_s,
                            latency_ms=vp.latency_ms,
                            runtime=vp.simulated_runtime,
                            relative_speedup_pct=(
                                100.0 * base / vp.simulated_runtime))
                return grid
            # fall through: full simulation for timing-dependent apps

        elif self.predict:
            predict_fn, report = self._predictor(app, variant)
            grid.validation = report
            if predict_fn is not None:
                grid.predicted = True
                grid.backend = "predict"
                for lat in latencies:
                    for bw in bandwidths:
                        runtime = predict_fn(bw, lat)
                        grid.points[(bw, lat)] = GridPoint(
                            bandwidth_mbyte_s=bw, latency_ms=lat,
                            runtime=runtime,
                            relative_speedup_pct=100.0 * base / runtime)
                return grid
            # fall through: ground truth for timing-dependent apps

        ordered = [(bw, lat) for lat in latencies for bw in bandwidths]
        runtimes = self._simulate_grid(app, variant, ordered)
        for bw, lat in ordered:
            runtime = runtimes[(bw, lat)]
            grid.points[(bw, lat)] = GridPoint(
                bandwidth_mbyte_s=bw, latency_ms=lat, runtime=runtime,
                relative_speedup_pct=100.0 * base / runtime)
        return grid

    # ------------------------------------------------------------------
    def communication_time_pct(self, app: str, variant: str, bandwidth: float,
                               latency_ms: float) -> float:
        """Figure 4's metric: (T_M - T_L) / T_M * 100."""
        point = self.speedup_at(app, variant, bandwidth, latency_ms)
        base = self.baseline_runtime(app, variant)
        return max(0.0, 100.0 * (point.runtime - base) / point.runtime)
