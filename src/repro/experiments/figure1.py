"""Figure 1: inter-cluster communication volume vs. message rate.

Unoptimized applications on 4 clusters of 8 with 6 MByte/s / 0.5 ms WAN
links, reporting MByte/s per cluster against messages/s per cluster —
the scatter the paper uses to place the applications in communication
space (TSP bottom-left, Awari far right, Barnes-Hut/FFT top).

Run: ``python -m repro.experiments.figure1 [--scale paper|bench]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional

from ..apps import default_config, run_app
from . import grids
from .report import render_table

#: Qualitative positions read off the paper's Figure 1 (per cluster).
PAPER_FIGURE1_NOTES = {
    "asp": "modest volume (<2 MByte/s), <1000 msgs/s",
    "awari": "small volume, >4000 msgs/s (tiny messages)",
    "fft": "high volume (~7 MByte/s)",
    "barnes": "high volume (~7 MByte/s)",
    "tsp": "lowest volume (~0.1 MByte/s)",
    "water": "modest volume (<2 MByte/s), <1000 msgs/s",
}


@dataclass
class Figure1Point:
    app: str
    mbyte_s_per_cluster: float
    messages_s_per_cluster: float


def measure(app: str, scale: str = "paper", seed: int = 0) -> Figure1Point:
    topo = grids.multi_cluster(grids.FIGURE1_BANDWIDTH, grids.FIGURE1_LATENCY_MS)
    result = run_app(app, "unoptimized", topo,
                     config=default_config(app, scale), seed=seed)
    stats = result.stats
    return Figure1Point(
        app=app,
        mbyte_s_per_cluster=stats.inter_mbyte_per_s_per_cluster(),
        messages_s_per_cluster=stats.inter_messages_per_s_per_cluster(),
    )


def measure_all(scale: str = "paper") -> Dict[str, Figure1Point]:
    return {app: measure(app, scale) for app in grids.APPS}


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper", choices=["paper", "bench"])
    args = parser.parse_args(argv)

    rows = []
    for app in grids.APPS:
        point = measure(app, args.scale)
        rows.append([
            app,
            f"{point.mbyte_s_per_cluster:7.2f}",
            f"{point.messages_s_per_cluster:8.0f}",
            PAPER_FIGURE1_NOTES[app],
        ])
    print(render_table(
        ["Program", "MByte/s/cluster", "msgs/s/cluster", "paper's Figure 1 position"],
        rows,
        title=(f"Figure 1 — inter-cluster traffic of unoptimized apps "
               f"(4x8, {grids.FIGURE1_BANDWIDTH} MByte/s, "
               f"{grids.FIGURE1_LATENCY_MS} ms, scale={args.scale})"),
    ))


if __name__ == "__main__":
    main()
