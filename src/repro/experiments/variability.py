"""Further-work study: the impact of WAN latency/bandwidth *variations*.

The paper (Section 1) explicitly defers this: "Further research should
study the impact of variations in latency and bandwidth, which often
occur on wide area links."  This experiment runs the optimized
applications at the 10 ms / 1 MByte/s operating point while sweeping the
coefficient of variation of (a) per-message latency jitter and (b)
epoch-scale bandwidth fluctuation, reporting the relative-speedup
degradation versus fixed links.

Findings (see benchmarks/test_variability.py for the asserted shape):
synchronous, latency-bound patterns (TSP's queue RPCs, ASP's ordered
rows) degrade the most under latency jitter — each round trip waits for
its own unlucky draws — while bandwidth fluctuation mostly hurts the
volume-bound applications.

Run: ``python -m repro.experiments.variability``
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from ..apps import default_config, run_app
from ..network import Variability, das_topology
from . import grids
from .report import render_table

OPERATING_POINT = dict(wan_latency_ms=10.0, wan_bandwidth_mbyte_s=1.0)
CVS = (0.0, 0.5, 1.0, 2.0)


def relative_speedup_with(app: str, variant: str, variability, scale: str,
                          seed: int = 0) -> float:
    config = default_config(app, scale)
    base = run_app(app, variant, grids.baseline(), config=config, seed=seed)
    topo = das_topology(clusters=grids.NUM_CLUSTERS,
                        cluster_size=grids.CLUSTER_SIZE,
                        wan_variability=variability, **OPERATING_POINT)
    multi = run_app(app, variant, topo, config=config, seed=seed)
    return 100.0 * base.runtime / multi.runtime


def sweep(app: str, kind: str, scale: str = "bench",
          seed: int = 0) -> List[float]:
    """Relative speedup across CVS for jitter ``kind`` ('latency'/'bandwidth')."""
    variant = "optimized" if app != "fft" else "unoptimized"
    out = []
    for cv in CVS:
        if cv == 0.0:
            var = None
        elif kind == "latency":
            var = Variability(latency_cv=cv)
        else:
            var = Variability(bandwidth_cv=cv)
        out.append(relative_speedup_with(app, variant, var, scale, seed))
    return out


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="*",
                        default=["water", "tsp", "asp", "awari"])
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    for kind in ("latency", "bandwidth"):
        rows = []
        for app in args.apps:
            values = sweep(app, kind, args.scale, args.seed)
            rows.append([app] + [f"{v:5.1f}%" for v in values])
        print(render_table(
            [f"app \\ {kind} cv"] + [f"{cv:g}" for cv in CVS],
            rows,
            title=(f"Relative speedup under WAN {kind} variability "
                   f"(optimized apps, 10 ms / 1 MByte/s)"),
        ))
        print()


if __name__ == "__main__":
    main()
