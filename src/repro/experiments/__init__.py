"""Experiment harnesses regenerating every table and figure of the paper.

Each module is runnable (``python -m repro.experiments.<name>``):

- ``table1``       — Table 1 single-cluster speedups/traffic/runtimes
- ``table2``       — Table 2 patterns/optimizations + WAN message cuts
- ``figure1``      — Figure 1 inter-cluster traffic scatter
- ``figure3``      — Figure 3 relative-speedup panels (all 12)
- ``figure4``      — Figure 4 communication-time percentages
- ``clusters``     — Section 5.1's 8x4 vs 4x8 cluster-structure result
  (with ``--wan-shape star|ring`` for the topology prediction)
- ``magpie_bench`` — Section 6's MagPIe vs MPICH collective comparison

Extensions beyond the paper:

- ``variability``  — WAN latency/bandwidth jitter (the paper's further work)
- ``ablations``    — each optimization decomposed into its ingredients
- ``breakdown``    — per-rank compute/blocked/overhead shares
- ``algselect``    — collective algorithm tuning table across the gap
- ``export``       — CSV/JSON datasets for external plotting
"""

from . import grids
from .runner import GridPoint, SpeedupGrid, Sweeper

__all__ = ["grids", "GridPoint", "SpeedupGrid", "Sweeper"]
