"""Figure 4: inter-cluster communication time percentages.

Left panel: communication time vs. WAN bandwidth at 3.3 ms latency.
Right panel: communication time vs. WAN latency at 0.9 MByte/s.
The metric is the paper's ``(T_M - T_L) / T_M * 100`` — the fraction of
the multi-cluster run time attributable to the slow interconnect.
Optimized variants are used (FFT has none), as in the paper's analysis.

Run: ``python -m repro.experiments.figure4 [--scale bench|paper]``
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from . import grids
from .report import render_series_chart, render_table
from .runner import Sweeper


def bandwidth_panel(sweeper: Sweeper) -> Dict[str, List[float]]:
    """Communication-time % per app over the bandwidth grid at 3.3 ms."""
    panel: Dict[str, List[float]] = {}
    for app in grids.APPS:
        variant = "optimized" if app != "fft" else "unoptimized"
        panel[app] = [
            sweeper.communication_time_pct(app, variant, bw, grids.FIGURE4_LATENCY_MS)
            for bw in sorted(grids.BANDWIDTHS_MBYTE_S, reverse=True)
        ]
    return panel


def latency_panel(sweeper: Sweeper) -> Dict[str, List[float]]:
    """Communication-time % per app over the latency grid at 0.9 MByte/s."""
    panel: Dict[str, List[float]] = {}
    for app in grids.APPS:
        variant = "optimized" if app != "fft" else "unoptimized"
        panel[app] = [
            sweeper.communication_time_pct(app, variant, grids.FIGURE4_BANDWIDTH, lat)
            for lat in grids.LATENCIES_MS
        ]
    return panel


def _print_panel(panel: Dict[str, List[float]], x_labels: List[str],
                 title: str, x_name: str) -> None:
    headers = [f"app \\ {x_name}"] + x_labels
    rows = [[app] + [f"{v:5.1f}%" for v in values] for app, values in panel.items()]
    print(render_table(headers, rows, title=title))
    print()
    print(render_series_chart(panel, x_labels, title))
    print()


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--predict", action="store_true",
                        help="predict grid points from recorded communication "
                             "DAGs where validated (see docs/whatif.md)")
    parser.add_argument("--replay", action="store_true",
                        help="price grid points from compiled replay programs "
                             "(vectorized; needs numpy; see docs/replay.md)")
    args = parser.parse_args(argv)

    backend = "replay" if args.replay else None
    sweeper = Sweeper(scale=args.scale, seed=args.seed, predict=args.predict,
                      backend=backend)
    bw_labels = [f"{bw:g}" for bw in sorted(grids.BANDWIDTHS_MBYTE_S, reverse=True)]
    _print_panel(
        bandwidth_panel(sweeper), bw_labels,
        f"Figure 4 (left) — communication time vs bandwidth at "
        f"{grids.FIGURE4_LATENCY_MS} ms", "bw MByte/s")
    lat_labels = [f"{lat:g}" for lat in grids.LATENCIES_MS]
    _print_panel(
        latency_panel(sweeper), lat_labels,
        f"Figure 4 (right) — communication time vs latency at "
        f"{grids.FIGURE4_BANDWIDTH} MByte/s", "latency ms")


if __name__ == "__main__":
    main()
