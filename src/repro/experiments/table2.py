"""Table 2: communication patterns and their multi-cluster optimizations.

The table itself is a design inventory; to make it verifiable we also
print a measured fingerprint of each pattern — the WAN message reduction
the optimization achieves at the Figure-1 reference point.

Run: ``python -m repro.experiments.table2``
"""

from __future__ import annotations

import argparse
from typing import Optional

from ..apps import default_config, run_app
from . import grids
from .report import render_table

#: The paper's Table 2 rows (pattern, optimization).
PATTERNS = {
    "water": ("All to Half", "Cluster Cache, Reduction Tree"),
    "barnes": ("BSP/Personalized All to All", "BSP message combining per node/cluster"),
    "tsp": ("Centralized Work Queue", "Work queue per cluster + work stealing"),
    "asp": ("Totally Ordered Broadcast", "Sequencer migration"),
    "awari": ("Asynchronous Unordered Messages", "Message combining per cluster"),
    "fft": ("Personalized All to All", "— (none found)"),
}


def wan_messages(app: str, variant: str, scale: str = "bench") -> int:
    topo = grids.multi_cluster(grids.FIGURE1_BANDWIDTH, grids.FIGURE1_LATENCY_MS)
    result = run_app(app, variant, topo, config=default_config(app, scale))
    return result.stats.inter.messages


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    args = parser.parse_args(argv)

    rows = []
    for app in grids.APPS:
        pattern, optimization = PATTERNS[app]
        unopt = wan_messages(app, "unoptimized", args.scale)
        opt = wan_messages(app, "optimized", args.scale)
        ratio = f"{unopt / opt:4.1f}x" if opt else "-"
        rows.append([app, pattern, optimization, unopt, opt, ratio])
    print(render_table(
        ["Program", "Communication", "Optimization",
         "WAN msgs (unopt)", "WAN msgs (opt)", "reduction"],
        rows,
        title="Table 2 — patterns, optimizations, and measured WAN message cuts",
    ))


if __name__ == "__main__":
    main()
