"""Persistent on-disk cache of ground-truth simulation runtimes.

Full simulations are the expensive half of every sweep — and they are
pure functions of ``(app, variant, scale, ranks, seed, topology)``.  The
:class:`SimCache` memoizes their runtimes as small JSON files under
``results/cache/`` so repeated sweeps, what-if validations and CI runs
never pay for the same grid point twice.  The topology component of the
key is :meth:`repro.network.topology.Topology.fingerprint`, a stable
hash of every timing-relevant parameter.

Manage the cache from the command line::

    python -m repro cache ls       # what is cached, per app/variant
    python -m repro cache clear    # drop every entry
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..network.topology import Topology

#: Default cache directory, relative to the working directory.
DEFAULT_ROOT = os.path.join("results", "cache")


class SimCache:
    """File-per-entry JSON cache of simulated runtimes.

    One entry is one file, so concurrent writers (parallel sweeps) never
    corrupt each other; writes go through a temp file + ``os.replace``
    so readers never observe a partial entry.
    """

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(self, app: str, variant: str, scale: str, seed: int,
            topology: Topology) -> str:
        """Filename-safe cache key for one simulation."""
        return (f"{app}-{variant}-{scale}-r{topology.num_ranks}"
                f"-s{seed}-{topology.fingerprint()}")

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    # ------------------------------------------------------------------
    def get(self, app: str, variant: str, scale: str, seed: int,
            topology: Topology) -> Optional[float]:
        """Cached runtime for this simulation, or None."""
        path = self._path(self.key(app, variant, scale, seed, topology))
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return float(entry["runtime"])

    def put(self, app: str, variant: str, scale: str, seed: int,
            topology: Topology, runtime: float) -> None:
        """Store one simulated runtime (atomic, last writer wins)."""
        key = self.key(app, variant, scale, seed, topology)
        os.makedirs(self.root, exist_ok=True)
        entry = {
            "app": app,
            "variant": variant,
            "scale": scale,
            "seed": seed,
            "ranks": topology.num_ranks,
            "fingerprint": topology.fingerprint(),
            "topology": topology.describe(),
            "runtime": runtime,
        }
        path = self._path(key)
        tmp = path + f".tmp{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(entry, fh, sort_keys=True)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def entries(self) -> List[dict]:
        """All readable cache entries (unreadable files are skipped)."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.root, name)) as fh:
                    out.append(json.load(fh))
            except (OSError, ValueError):
                continue
        return out

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for name in os.listdir(self.root):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    continue
        return removed

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))


def main(argv: Optional[list] = None) -> None:
    """``python -m repro cache {ls,clear}``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or clear the on-disk simulation result cache.")
    parser.add_argument("action", choices=["ls", "clear"])
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help=f"cache directory (default: {DEFAULT_ROOT})")
    args = parser.parse_args(argv)

    cache = SimCache(args.root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached simulation(s) from {cache.root}")
        return

    entries = cache.entries()
    if not entries:
        print(f"cache {cache.root} is empty")
        return
    by_app: Dict[Tuple[str, str], List[dict]] = {}
    for entry in entries:
        by_app.setdefault((entry.get("app", "?"), entry.get("variant", "?")),
                          []).append(entry)
    print(f"{len(entries)} cached simulation(s) in {cache.root}:")
    for (app, variant), group in sorted(by_app.items()):
        print(f"  {app}/{variant}: {len(group)} point(s)")
        for entry in group:
            print(f"    scale={entry.get('scale')} seed={entry.get('seed')} "
                  f"{entry.get('topology')} -> {entry.get('runtime'):.6f}s")


if __name__ == "__main__":
    main()
