"""Persistent on-disk cache of ground-truth simulation runtimes.

Full simulations are the expensive half of every sweep — and they are
pure functions of ``(app, variant, scale, ranks, seed, topology)``.  The
:class:`SimCache` memoizes their runtimes as small JSON files under
``results/cache/`` so repeated sweeps, what-if validations and CI runs
never pay for the same grid point twice.  The topology component of the
key is :meth:`repro.network.topology.Topology.fingerprint`, a stable
hash of every timing-relevant parameter.

Two access levels:

- the typed :meth:`SimCache.get` / :meth:`SimCache.put` used by
  :class:`~repro.experiments.runner.Sweeper` (one runtime per clean
  grid-point simulation), and
- the generic :meth:`SimCache.lookup` / :meth:`SimCache.store` keyed by
  an arbitrary content-hash string, which :mod:`repro.serve` uses to
  dedup fault-bearing, predicted, and profile results whose identity
  includes more than the topology (FaultPlan hash, job kind, engine
  version), and :mod:`repro.replay` uses for compiled event programs.

Entries carry an optional ``kind`` field (absent for plain runtime
memos); :meth:`SimCache.stats` attributes entries and bytes per kind,
and :meth:`SimCache.clear` can drop a single kind — compiled replay
programs are two orders of magnitude larger than runtime memos, so
"free the big entries, keep the sim results" is a real operation.

Manage the cache from the command line::

    python -m repro cache ls                   # per app/variant + per-kind stats
    python -m repro cache clear                # drop every entry
    python -m repro cache clear --kind replay  # drop only compiled programs
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..network.topology import Topology

#: Default cache directory, relative to the working directory.
DEFAULT_ROOT = os.path.join("results", "cache")


class SimCache:
    """File-per-entry JSON cache of simulated runtimes.

    One entry is one file, so concurrent writers (parallel sweeps, serve
    workers) never corrupt each other; writes go through a temp file +
    ``os.replace`` so readers never observe a partial entry.
    """

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(app: str, variant: str, scale: str, seed: int,
            topology: Topology) -> str:
        """Filename-safe cache key for one clean simulation."""
        return (f"{app}-{variant}-{scale}-r{topology.num_ranks}"
                f"-s{seed}-{topology.fingerprint()}")

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    # ------------------------------------------------------------------
    # Generic content-addressed access (used by repro.serve)
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Full record stored under ``key``, or None; counts hit/miss."""
        try:
            with open(self._path(key)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key: str, record: Dict[str, Any]) -> None:
        """Store one JSON-able record (atomic, last writer wins)."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        tmp = path + f".tmp{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(record, fh, sort_keys=True)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def get(self, app: str, variant: str, scale: str, seed: int,
            topology: Topology) -> Optional[float]:
        """Cached runtime for this simulation, or None."""
        entry = self.lookup(self.key(app, variant, scale, seed, topology))
        if entry is None or "runtime" not in entry:
            return None
        return float(entry["runtime"])

    def put(self, app: str, variant: str, scale: str, seed: int,
            topology: Topology, runtime: float) -> None:
        """Store one simulated runtime (atomic, last writer wins)."""
        self.store(self.key(app, variant, scale, seed, topology), {
            "app": app,
            "variant": variant,
            "scale": scale,
            "seed": seed,
            "ranks": topology.num_ranks,
            "fingerprint": topology.fingerprint(),
            "topology": topology.describe(),
            "runtime": runtime,
        })

    # ------------------------------------------------------------------
    def entries(self) -> List[dict]:
        """All readable cache entries (unreadable files are skipped)."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.root, name)) as fh:
                    out.append(json.load(fh))
            except (OSError, ValueError):
                continue
        return out

    @staticmethod
    def entry_kind(entry: Dict[str, Any]) -> str:
        """An entry's ``kind``; plain runtime memos predate the field."""
        return entry.get("kind", "runtime")

    def _entry_kind_of(self, path: str) -> Optional[str]:
        """The ``kind`` of the entry file at ``path``, or None if
        unreadable (being written, or not a cache entry at all)."""
        try:
            with open(path) as fh:
                return self.entry_kind(json.load(fh))
        except (OSError, ValueError):
            return None

    def stats(self) -> Dict[str, Any]:
        """On-disk footprint plus this instance's hit/miss counters.

        ``entries``/``bytes`` are measured from the cache directory (so
        they see entries written by other processes); ``kinds`` breaks
        both down per entry kind — compiled replay programs dominate the
        bytes while runtime memos dominate the count, and conflating
        them hides both facts.  ``hits``/``misses`` count only this
        instance's lookups.
        """
        entries = 0
        size = 0
        kinds: Dict[str, Dict[str, int]] = {}
        if os.path.isdir(self.root):
            for name in os.listdir(self.root):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.root, name)
                try:
                    file_size = os.path.getsize(path)
                except OSError:
                    continue
                entries += 1
                size += file_size
                kind = self._entry_kind_of(path) or "?"
                bucket = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
                bucket["entries"] += 1
                bucket["bytes"] += file_size
        total = self.hits + self.misses
        return {
            "root": self.root,
            "entries": entries,
            "bytes": size,
            "kinds": kinds,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete cache entries; returns how many were removed.

        With ``kind``, only entries of that kind are dropped (plain
        runtime memos are kind ``"runtime"``).  The bytes freed are
        available from :meth:`stats` *before* the clear (the CLI
        reports both).
        """
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for name in os.listdir(self.root):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            if kind is not None and self._entry_kind_of(path) != kind:
                continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        return removed

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))


def _format_bytes(size: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{size} B"
        size /= 1024.0
    return f"{size} B"


def main(argv: Optional[list] = None) -> None:
    """``python -m repro cache {ls,clear}``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or clear the on-disk simulation result cache.")
    parser.add_argument("action", choices=["ls", "clear"])
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help=f"cache directory (default: {DEFAULT_ROOT})")
    parser.add_argument("--kind", default=None,
                        help="restrict to one entry kind (plain runtime "
                             "memos are 'runtime'; compiled programs are "
                             "'replay')")
    args = parser.parse_args(argv)

    cache = SimCache(args.root)
    if args.action == "clear":
        stats = cache.stats()
        removed = cache.clear(kind=args.kind)
        freed = stats["kinds"].get(args.kind, {"bytes": 0})["bytes"] \
            if args.kind else stats["bytes"]
        what = (f"{args.kind} entr(ies)" if args.kind
                else "cached simulation(s)")
        print(f"removed {removed} {what} "
              f"({_format_bytes(freed)}) from {cache.root}")
        return

    stats = cache.stats()
    entries = cache.entries()
    if args.kind:
        entries = [e for e in entries
                   if SimCache.entry_kind(e) == args.kind]
    if not entries:
        print(f"cache {cache.root} is empty"
              + (f" (no {args.kind!r} entries)" if args.kind else ""))
        return
    by_app: Dict[Tuple[str, str], List[dict]] = {}
    for entry in entries:
        by_app.setdefault((entry.get("app", "?"), entry.get("variant", "?")),
                          []).append(entry)
    kind_parts = ", ".join(
        f"{k}: {v['entries']} / {_format_bytes(v['bytes'])}"
        for k, v in sorted(stats["kinds"].items()))
    print(f"{stats['entries']} cached simulation(s), "
          f"{_format_bytes(stats['bytes'])} in {cache.root}"
          + (f" ({kind_parts})" if kind_parts else "") + ":")
    for (app, variant), group in sorted(by_app.items()):
        print(f"  {app}/{variant}: {len(group)} point(s)")
        for entry in group:
            kind = entry.get("kind")
            suffix = f" [{kind}]" if kind else ""
            if kind == "replay" and "program" in entry:
                prog = entry.get("stats", {})
                shown = (f"program {prog.get('nodes', '?')} nodes / "
                         f"{prog.get('levels', '?')} levels")
                where = f"ref fp={str(entry.get('fingerprint'))[:12]}"
            else:
                runtime = entry.get("runtime")
                shown = f"{runtime:.6f}s" \
                    if isinstance(runtime, (int, float)) else str(runtime)
                where = entry.get("topology")
                if where is None:    # serve entries carry the point instead
                    bw = entry.get("bandwidth_mbyte_s")
                    lat = entry.get("latency_ms")
                    if isinstance(bw, (int, float)) and \
                            isinstance(lat, (int, float)):
                        where = f"wan {bw:g} MB/s / {lat:g} ms"
                    else:
                        where = "baseline"
            print(f"    scale={entry.get('scale')} seed={entry.get('seed')} "
                  f"{where} -> {shown}{suffix}")


if __name__ == "__main__":
    main()
