"""Degraded-WAN sweep: Figure 3 re-run under fixed packet-loss rates.

The paper's grid assumes a lossless (if slow) wide-area layer.  This
harness asks how the central result shifts when the WAN also *drops*
packets: for each requested loss rate it re-runs the relative-speedup
sweep with :class:`~repro.faults.plan.FaultPlan` loss injection and the
reliable transport enabled, so applications pay for every drop with a
timeout plus retransmission instead of deadlocking.  The all-Myrinet
baseline stays clean — curves still read "% of ideal single-cluster
speedup".

A per-app overhead table compares the clean and degraded runtimes at a
reference grid point and counts retransmissions, so the cost of loss is
visible even where the panels look similar.

Run:
    python -m repro.experiments.degraded                   # 1% loss, all apps
    python -m repro.experiments.degraded --loss 0.01 0.05 --apps water asp
    python -m repro.experiments.degraded --skip-panels     # overhead table only
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..apps import default_config, run_app
from ..faults.plan import FaultPlan
from . import grids
from .figure3 import render_panel
from .report import render_table
from .runner import Sweeper

#: Reference grid point for the overhead table (mid-grid, like Figure 4).
REFERENCE_BANDWIDTH = 0.95
REFERENCE_LATENCY_MS = 10.0


def overhead_rows(apps: List[str], variant: str, loss_rates: List[float],
                  scale: str, seed: int,
                  blame: bool = False) -> List[List[str]]:
    """Clean vs. degraded runtime (plus retransmit counts) per app.

    With ``blame=True`` each runtime cell is annotated with the run's
    dominant attribution bucket from a profiled re-run (see
    :mod:`repro.critpath`) — e.g. ``[retry]`` when loss recovery, not
    raw WAN latency, is what the degraded run waits on.
    """
    topo = grids.multi_cluster(REFERENCE_BANDWIDTH, REFERENCE_LATENCY_MS)
    if blame:
        from ..critpath.blame import dominant_bucket_at

    def bucket_note(faults) -> str:
        if not blame:
            return ""
        bucket = dominant_bucket_at(
            app, variant, REFERENCE_BANDWIDTH, REFERENCE_LATENCY_MS,
            scale=scale, seed=seed, faults=faults)
        return f" [{bucket}]"

    rows = []
    for app in apps:
        config = default_config(app, scale)
        clean = run_app(app, variant, topo, config=config, seed=seed)
        row = [app, f"{clean.runtime:.4f}s{bucket_note(None)}"]
        for rate in loss_rates:
            plan = FaultPlan.wan_loss(rate)
            lossy = run_app(app, variant, topo, config=config, seed=seed,
                            faults=plan)
            overhead = 100.0 * (lossy.runtime / clean.runtime - 1.0)
            stats = lossy.stats
            row.append(f"{lossy.runtime:.4f}s (+{overhead:.1f}%, "
                       f"{stats.fault_drops} lost, "
                       f"{stats.retransmits} resent)"
                       f"{bucket_note(FaultPlan.wan_loss(rate))}")
        rows.append(row)
    return rows


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="*", default=list(grids.APPS))
    parser.add_argument("--variant", default="unoptimized",
                        choices=["unoptimized", "optimized"])
    parser.add_argument("--loss", nargs="*", type=float, default=[0.01],
                        help="WAN packet-loss rates to sweep")
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-panels", action="store_true",
                        help="only print the overhead table (much faster)")
    parser.add_argument("--blame", action="store_true",
                        help="annotate overhead cells with the dominant "
                             "attribution bucket from a profiled re-run")
    args = parser.parse_args(argv)

    if not args.skip_panels:
        for rate in args.loss:
            sweeper = Sweeper(scale=args.scale, seed=args.seed,
                              faults=FaultPlan.wan_loss(rate))
            for app in args.apps:
                grid = sweeper.speedup_grid(app, args.variant)
                print(f"=== {100.0 * rate:g}% WAN loss ===")
                print(render_panel(grid))
                print()

    headers = ["app", "clean"] + [f"loss {100.0 * r:g}%" for r in args.loss]
    print(render_table(
        headers,
        overhead_rows(args.apps, args.variant, args.loss, args.scale,
                      args.seed, blame=args.blame),
        title=(f"Runtime overhead of WAN loss at {REFERENCE_BANDWIDTH:g} "
               f"MByte/s, {REFERENCE_LATENCY_MS:g} ms ({args.variant})")))


if __name__ == "__main__":
    main()
