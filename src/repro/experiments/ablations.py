"""Ablation studies of the design choices behind each optimization.

Four sweeps, each isolating one knob the paper's analysis hinges on:

- ``awari-combining``  — per-destination and relay combining thresholds.
  Reproduces the paper's observation that combining masks per-message
  overhead *but* "too much message combining results in load imbalance"
  (the relay curve turns over once batches are held until stage end).
- ``barnes-decompose`` — splits the Barnes-Hut optimization into its two
  ingredients (per-cluster combining via gateways; relaxed barriers) and
  measures each alone.
- ``tsp-stealing``     — steal fraction and initial job placement: with
  all jobs born in one cluster, stealing is what rescues the speedup.
- ``water-coordinator``— coordinator placement: spreading the per-owner
  coordinator role across cluster members versus concentrating it on the
  leader rank.

Run: ``python -m repro.experiments.ablations [which ...]``
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import List, Optional

from ..apps import default_config, run_app
from . import grids
from .report import render_table

POINT = dict(bandwidth=6.3, latency_ms=3.3)


def _relative(app: str, variant: str, config, bandwidth: float,
              latency_ms: float, seed: int = 0) -> float:
    base = run_app(app, variant, grids.baseline(), config=config, seed=seed)
    topo = grids.multi_cluster(bandwidth, latency_ms)
    multi = run_app(app, variant, topo, config=config, seed=seed)
    return 100.0 * base.runtime / multi.runtime


# ----------------------------------------------------------------------
def awari_combining(scale: str = "bench") -> List[List[str]]:
    cfg0 = default_config("awari", scale)
    rows = []
    for cc in (1, 4, 8, 32, 128):
        cfg = dataclasses.replace(cfg0, combine_count=cc)
        rel = _relative("awari", "unoptimized", cfg, **POINT)
        rows.append(["per-destination", str(cc), f"{rel:5.1f}%"])
    for rc in (8, 64, 256, 1024, 8192):
        cfg = dataclasses.replace(cfg0, relay_combine_count=rc)
        rel = _relative("awari", "optimized", cfg, **POINT)
        rows.append(["relay (jumbo)", str(rc), f"{rel:5.1f}%"])
    return rows


def barnes_decompose(scale: str = "bench") -> List[List[str]]:
    cfg0 = default_config("barnes", scale)
    settings = [
        ("neither (original)", "unoptimized", dict()),
        ("relaxed barriers only", "unoptimized", dict(strict_barriers=False)),
        ("cluster combining only", "optimized", dict(strict_barriers=True)),
        ("both (optimized)", "optimized", dict()),
    ]
    rows = []
    for label, variant, overrides in settings:
        cfg = dataclasses.replace(cfg0, **overrides)
        # Show both a latency-bound and a bandwidth-bound operating point.
        at_lat = _relative("barnes", variant, cfg, 6.3, 100.0)
        at_bw = _relative("barnes", variant, cfg, 0.95, 0.5)
        rows.append([label, f"{at_lat:5.1f}%", f"{at_bw:5.1f}%"])
    return rows


def tsp_stealing(scale: str = "bench") -> List[List[str]]:
    """All jobs born in cluster 0: without stealing, 3 of 4 clusters idle."""
    cfg0 = default_config("tsp", scale)
    rows = []
    for label, overrides in (
        ("balanced start, stealing", dict()),
        ("imbalanced start, no stealing",
         dict(imbalanced_start=True, steal_fraction=0.0)),
        ("imbalanced start, steal 1/4", dict(imbalanced_start=True,
                                             steal_fraction=0.25)),
        ("imbalanced start, steal 1/2", dict(imbalanced_start=True,
                                             steal_fraction=0.5)),
    ):
        cfg = dataclasses.replace(cfg0, **overrides)
        rel = _relative("tsp", "optimized", cfg, 6.3, 3.3)
        rows.append([label, f"{rel:5.1f}%"])
    return rows


def water_coordinator(scale: str = "bench") -> List[List[str]]:
    import repro.apps.water.parallel as wp

    cfg = default_config("water", scale)
    rows = []
    original = wp._coordinator_for

    def leader_only(ctx, q, cluster):
        return ctx.topology.cluster_leader(cluster)

    for label, fn in (("spread over members", original),
                      ("all on cluster leader", leader_only)):
        wp._coordinator_for = fn
        try:
            rel = _relative("water", "optimized", cfg, 0.3, 3.3)
        finally:
            wp._coordinator_for = original
        rows.append([label, f"{rel:5.1f}%"])
    return rows


ABLATIONS = {
    "awari-combining": (awari_combining, ["layer", "threshold", "rel speedup"]),
    "barnes-decompose": (barnes_decompose,
                         ["configuration", "@100ms/6.3MBs", "@0.5ms/0.95MBs"]),
    "tsp-stealing": (tsp_stealing, ["setting", "rel speedup @3.3ms"]),
    "water-coordinator": (water_coordinator, ["placement", "rel speedup"]),
}


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("which", nargs="*", default=list(ABLATIONS))
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    args = parser.parse_args(argv)
    for name in args.which:
        fn, headers = ABLATIONS[name]
        print(render_table(headers, fn(args.scale), title=f"Ablation: {name}"))
        print()


if __name__ == "__main__":
    main()
