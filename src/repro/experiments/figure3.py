"""Figure 3: relative speedup vs. WAN bandwidth, one curve per latency.

Reproduces all twelve panels (six applications, unoptimized and
optimized) of the paper's central figure: speedup relative to the
all-Myrinet 32-processor cluster over the {6.3 .. 0.03} MByte/s x
{0.5 .. 300} ms grid on 4 clusters of 8.

Run:
    python -m repro.experiments.figure3                # all panels, bench scale
    python -m repro.experiments.figure3 --apps water asp --variant optimized
    python -m repro.experiments.figure3 --scale paper  # full step counts (slow)
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from . import grids
from .report import render_series_chart, render_table
from .runner import SpeedupGrid, Sweeper


def render_panel(grid: SpeedupGrid) -> str:
    """One Figure-3 panel as a table plus an ASCII chart."""
    bandwidths = sorted(grids.BANDWIDTHS_MBYTE_S, reverse=True)
    headers = ["latency \\ bw MByte/s"] + [f"{bw:g}" for bw in bandwidths]
    rows = []
    series: Dict[str, List[float]] = {}
    for lat in grids.LATENCIES_MS:
        curve = {p.bandwidth_mbyte_s: p.relative_speedup_pct
                 for p in grid.series(lat)}
        rows.append([f"{lat:g} ms"] + [f"{curve[bw]:5.1f}%" for bw in bandwidths])
        series[f"{lat:g}ms"] = [curve[bw] for bw in bandwidths]
    title = (f"{grid.app.upper()} {grid.variant} — relative speedup "
             f"(100% = all-Myrinet 32p, T_L={grid.baseline_runtime:.3f}s)")
    table = render_table(headers, rows, title=title)
    chart = render_series_chart(
        series, [f"{bw:g}" for bw in bandwidths],
        f"{grid.app} {grid.variant}: % of single-cluster speedup vs bandwidth",
    )
    return table + "\n\n" + chart


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="*", default=list(grids.APPS))
    parser.add_argument("--variant", default=None,
                        choices=[None, "unoptimized", "optimized"])
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--predict", action="store_true",
                        help="fill grids from a recorded communication DAG "
                             "(validated; falls back to simulation per app)")
    parser.add_argument("--replay", action="store_true",
                        help="price grids from compiled replay programs "
                             "(vectorized; needs numpy; falls back to the "
                             "predict path or simulation per app — see "
                             "docs/replay.md)")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulate ground-truth grid points in N "
                             "parallel processes")
    parser.add_argument("--blame", action="store_true",
                        help="also print each panel's dominant-bottleneck "
                             "letter grid (profiles every grid point; see "
                             "repro.critpath)")
    args = parser.parse_args(argv)

    backend = "replay" if args.replay else None
    sweeper = Sweeper(scale=args.scale, seed=args.seed, predict=args.predict,
                      workers=args.workers, backend=backend)
    for app in args.apps:
        variants = [args.variant] if args.variant else ["unoptimized", "optimized"]
        if app == "fft":
            variants = ["unoptimized"]  # the paper found no optimization
        for variant in variants:
            grid = sweeper.speedup_grid(app, variant)
            print(render_panel(grid))
            if args.predict and grid.validation is not None:
                print(f"[whatif] {grid.validation.summary()}")
            if args.replay:
                print(f"[replay] backend={grid.backend}")
                if grid.replay is not None:
                    print(f"[replay] {grid.replay.summary()}")
                if grid.validation is not None:
                    print(f"[replay] {grid.validation.summary()}")
            if args.blame:
                from ..critpath.blame import blame_grid, render_blame_panel

                letters = blame_grid(app, variant, scale=args.scale,
                                     seed=args.seed)
                print()
                print(render_blame_panel(app, variant, letters))
            print()


if __name__ == "__main__":
    main()
