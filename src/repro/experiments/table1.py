"""Table 1: single-cluster speedups, traffic and runtime at paper scale.

Run: ``python -m repro.experiments.table1 [--scale paper|bench]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional

from ..apps import default_config, run_app
from ..network.topology import single_cluster
from . import grids
from .report import render_table

#: The paper's Table 1, for side-by-side comparison.
PAPER_TABLE1 = {
    "water": {"sp32": 31.2, "sp8": 7.8, "traffic": 3.8, "runtime": 9.1},
    "barnes": {"sp32": 28.4, "sp8": 7.1, "traffic": 17.8, "runtime": 1.8},
    "tsp": {"sp32": 29.2, "sp8": 7.7, "traffic": 0.52, "runtime": 4.7},
    "asp": {"sp32": 31.3, "sp8": 7.8, "traffic": 0.75, "runtime": 6.0},
    "awari": {"sp32": 7.8, "sp8": 4.6, "traffic": 4.1, "runtime": 2.3},
    "fft": {"sp32": 32.9, "sp8": 5.3, "traffic": 128.0, "runtime": 0.26},
}


@dataclass
class Table1Row:
    app: str
    speedup_32: float
    speedup_8: float
    traffic_mbyte_s: float
    runtime_32: float


def measure_app(app: str, scale: str = "paper", seed: int = 0) -> Table1Row:
    """Reproduce one Table 1 row on simulated single clusters."""
    config = default_config(app, scale)
    r1 = run_app(app, "unoptimized", single_cluster(1), config=config, seed=seed)
    r8 = run_app(app, "unoptimized", single_cluster(8), config=config, seed=seed)
    r32 = run_app(app, "unoptimized", single_cluster(32), config=config, seed=seed)
    return Table1Row(
        app=app,
        speedup_32=r1.runtime / r32.runtime,
        speedup_8=r1.runtime / r8.runtime,
        traffic_mbyte_s=r32.stats.total_bytes / 1e6 / r32.runtime,
        runtime_32=r32.runtime,
    )


def measure_all(scale: str = "paper", seed: int = 0) -> Dict[str, Table1Row]:
    return {app: measure_app(app, scale, seed) for app in grids.APPS}


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper", choices=["paper", "bench"])
    args = parser.parse_args(argv)

    rows = []
    for app in grids.APPS:
        measured = measure_app(app, args.scale)
        paper = PAPER_TABLE1[app]
        rows.append([
            app,
            f"{measured.speedup_32:5.1f} ({paper['sp32']:5.1f})",
            f"{measured.speedup_8:5.2f} ({paper['sp8']:5.2f})",
            f"{measured.traffic_mbyte_s:6.2f} ({paper['traffic']:6.2f})",
            f"{measured.runtime_32:5.2f} ({paper['runtime']:5.2f})",
        ])
    print(render_table(
        ["Program", "Speedup 32p", "Speedup 8p",
         "Traffic 32p MByte/s", "Runtime 32p s"],
        rows,
        title=f"Table 1 — measured (paper) at scale={args.scale}",
    ))


if __name__ == "__main__":
    main()
