"""Collective algorithm selection across the NUMA gap.

Real MPI implementations switch collective algorithms by message size
and machine; on a two-layer interconnect the choice also depends on the
gap.  This experiment times every implemented algorithm family for
broadcast, allgather and allreduce at three operating points (flat fast
network, moderate WAN, harsh WAN) and prints the winner per cell — the
tuning table a MagPIe-style library would ship.

Run: ``python -m repro.experiments.algselect [--size 8192]``
"""

from __future__ import annotations

import argparse
import operator
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..magpie import algorithms as alg
from ..magpie import flat, hier
from ..network.topology import Topology, das_topology, single_cluster
from ..runtime.machine import Machine
from .report import render_table

OPERATING_POINTS: Dict[str, Topology] = {
    "single cluster": single_cluster(32),
    "WAN 3.3ms/6MBs": das_topology(clusters=4, cluster_size=8,
                                   wan_latency_ms=3.3, wan_bandwidth_mbyte_s=6.0),
    "WAN 30ms/0.5MBs": das_topology(clusters=4, cluster_size=8,
                                    wan_latency_ms=30.0, wan_bandwidth_mbyte_s=0.5),
}


def _time(topo: Topology, body_factory: Callable, repeats: int = 3) -> float:
    machine = Machine(topo)

    def main(ctx):
        for i in range(repeats):
            yield from body_factory(ctx, i)

    for r in topo.ranks():
        machine.spawn(r, main)
    machine.run()
    return machine.runtime() / repeats


def bcast_candidates(size: int) -> Dict[str, Callable]:
    def binomial(ctx, i):
        yield from flat.bcast(ctx, ("b", i), 0, size,
                              "x" if ctx.rank == 0 else None)

    def van_de_geijn(ctx, i):
        yield from alg.scatter_allgather_bcast(ctx, ("v", i), 0, size,
                                               "x" if ctx.rank == 0 else None)

    def magpie(ctx, i):
        yield from hier.bcast(ctx, ("m", i), 0, size,
                              "x" if ctx.rank == 0 else None)

    return {"binomial": binomial, "van de Geijn": van_de_geijn,
            "MagPIe": magpie}


def allgather_candidates(size: int) -> Dict[str, Callable]:
    def gather_bcast(ctx, i):
        yield from flat.allgather(ctx, ("g", i), size, ctx.rank)

    def ring(ctx, i):
        yield from alg.ring_allgather(ctx, ("r", i), size, ctx.rank)

    def magpie(ctx, i):
        yield from hier.allgather(ctx, ("m", i), size, ctx.rank)

    return {"gather+bcast": gather_bcast, "ring": ring, "MagPIe": magpie}


def allreduce_candidates(size: int) -> Dict[str, Callable]:
    def binomial_bcast(ctx, i):
        yield from flat.allreduce(ctx, ("f", i), size, 1.0, operator.add)

    def recursive_doubling(ctx, i):
        yield from alg.recursive_doubling_allreduce(ctx, ("rd", i), size, 1.0,
                                                    operator.add)

    def rabenseifner(ctx, i):
        p = ctx.num_ranks
        yield from alg.rabenseifner_allreduce(
            ctx, ("rb", i), max(1, size // p), [1.0] * p, operator.add)

    def magpie(ctx, i):
        yield from hier.allreduce(ctx, ("m", i), size, 1.0, operator.add)

    return {"reduce+bcast": binomial_bcast,
            "recursive doubling": recursive_doubling,
            "Rabenseifner": rabenseifner, "MagPIe": magpie}


OPERATIONS = {
    "bcast": bcast_candidates,
    "allgather": allgather_candidates,
    "allreduce": allreduce_candidates,
}


def selection_table(size: int) -> List[List[str]]:
    rows = []
    for op_name, factory in OPERATIONS.items():
        candidates = factory(size)
        for cand_name, body in candidates.items():
            row = [f"{op_name}: {cand_name}"]
            for point_name, topo in OPERATING_POINTS.items():
                row.append(f"{_time(topo, body) * 1e3:9.2f}")
            rows.append(row)
        rows.append(["-" * 4] + ["-" * 9] * len(OPERATING_POINTS))
    return rows[:-1]


def winners(size: int) -> Dict[Tuple[str, str], str]:
    """(operation, operating point) -> fastest algorithm name."""
    out: Dict[Tuple[str, str], str] = {}
    for op_name, factory in OPERATIONS.items():
        candidates = factory(size)
        for point_name, topo in OPERATING_POINTS.items():
            times = {name: _time(topo, body)
                     for name, body in candidates.items()}
            out[(op_name, point_name)] = min(times, key=times.get)
    return out


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=8192)
    args = parser.parse_args(argv)

    print(render_table(
        ["algorithm \\ machine (ms)"] + list(OPERATING_POINTS),
        selection_table(args.size),
        title=f"Collective algorithm selection, payload {args.size} bytes",
    ))
    print()
    best = winners(args.size)
    rows = [[op, *(best[(op, pt)] for pt in OPERATING_POINTS)]
            for op in OPERATIONS]
    print(render_table(["operation"] + list(OPERATING_POINTS), rows,
                       title="Winner per cell"))


if __name__ == "__main__":
    main()
