"""Section 6: MagPIe's wide-area collectives vs. a flat MPICH-like MPI.

Times all fourteen collective operations on 4 clusters of 8 at the
paper's operating point (10 ms one-way latency, 1 MByte/s per link) and
reports the flat/MagPIe completion-time ratio, plus a latency sweep
showing how the absolute advantage grows.

Run: ``python -m repro.experiments.magpie_bench``
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Tuple

from ..magpie import COLLECTIVE_NAMES, get_impl, invoke
from ..network.topology import Topology
from ..runtime.machine import Machine
from . import grids
from .report import render_table

OPERATING_POINT = dict(wan_latency_ms=10.0, wan_bandwidth_mbyte_s=1.0)


def time_collective(impl_name: str, name: str, topo: Topology,
                    size: int = 1024, repeats: int = 4, seed: int = 0) -> float:
    """Completion time of ``repeats`` back-to-back collectives."""
    machine = Machine(topo, seed=seed)
    impl = get_impl(impl_name)

    def body(ctx):
        for i in range(repeats):
            yield from invoke(ctx, impl, name, op_id=(name, i), size=size)

    for r in topo.ranks():
        machine.spawn(r, body)
    machine.run()
    return machine.runtime() / repeats


def compare_all(size: int = 1024, seed: int = 0) -> List[Tuple[str, float, float, float]]:
    topo = grids.multi_cluster(OPERATING_POINT["wan_bandwidth_mbyte_s"],
                               OPERATING_POINT["wan_latency_ms"])
    rows = []
    for name in COLLECTIVE_NAMES:
        t_flat = time_collective("flat", name, topo, size, seed=seed)
        t_mag = time_collective("magpie", name, topo, size, seed=seed)
        rows.append((name, t_flat, t_mag, t_flat / t_mag))
    return rows


def latency_sweep(name: str = "bcast", size: int = 1024) -> List[Tuple[float, float, float]]:
    out = []
    for lat in grids.LATENCIES_MS:
        topo = grids.multi_cluster(1.0, lat)
        t_flat = time_collective("flat", name, topo, size)
        t_mag = time_collective("magpie", name, topo, size)
        out.append((lat, t_flat, t_mag))
    return out


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1024,
                        help="per-item payload bytes")
    args = parser.parse_args(argv)

    rows = [[name, f"{tf * 1e3:8.2f}", f"{tm * 1e3:8.2f}", f"{ratio:5.2f}x"]
            for name, tf, tm, ratio in compare_all(size=args.size)]
    print(render_table(
        ["collective", "flat ms", "magpie ms", "speedup"],
        rows,
        title=("Section 6 — MagPIe vs MPICH-like collectives "
               "(4x8, 10 ms, 1 MByte/s; paper: 'up to 10 times faster')"),
    ))
    print()

    sweep = [[f"{lat:g} ms", f"{tf * 1e3:8.2f}", f"{tm * 1e3:8.2f}",
              f"{(tf - tm) * 1e3:8.2f}"]
             for lat, tf, tm in latency_sweep()]
    print(render_table(
        ["WAN latency", "flat bcast ms", "magpie bcast ms", "saved ms"],
        sweep,
        title="Broadcast latency sweep — the absolute advantage grows with latency",
    ))


if __name__ == "__main__":
    main()
