"""Per-rank time breakdown: where does the multi-cluster run spend time?

Complements Figure 4's black-box communication percentage with the
simulator's internal accounting: average per-rank shares of compute,
receive-blocked time, and messaging overhead, plus load imbalance (the
spread of per-rank compute), for each application at a chosen grid point.

Run: ``python -m repro.experiments.breakdown [--bw 0.95] [--lat 10]``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..apps import default_config, run_app
from . import grids
from .report import render_table


@dataclass
class Breakdown:
    app: str
    variant: str
    runtime: float
    compute_pct: float
    blocked_pct: float
    overhead_pct: float
    imbalance: float  # max/mean per-rank compute


def measure(app: str, variant: str, bandwidth: float, latency_ms: float,
            scale: str = "bench", seed: int = 0) -> Breakdown:
    topo = grids.multi_cluster(bandwidth, latency_ms)
    result = run_app(app, variant, topo,
                     config=default_config(app, scale), seed=seed)
    stats = result.rank_stats
    n = len(stats)
    runtime = result.runtime
    compute = sum(s.compute_time for s in stats) / n
    blocked = sum(s.recv_blocked_time for s in stats) / n
    overhead = sum(s.send_overhead_time + s.recv_overhead_time
                   for s in stats) / n
    per_rank = [s.compute_time for s in stats]
    mean = sum(per_rank) / n
    return Breakdown(
        app=app,
        variant=variant,
        runtime=runtime,
        compute_pct=100 * compute / runtime,
        blocked_pct=100 * blocked / runtime,
        overhead_pct=100 * overhead / runtime,
        imbalance=(max(per_rank) / mean) if mean else 1.0,
    )


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bw", type=float, default=0.95)
    parser.add_argument("--lat", type=float, default=10.0)
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    args = parser.parse_args(argv)

    rows = []
    for app in grids.APPS:
        for variant in (["unoptimized"] if app == "fft"
                        else ["unoptimized", "optimized"]):
            b = measure(app, variant, args.bw, args.lat, args.scale)
            rows.append([
                f"{app} {variant[:5]}",
                f"{b.runtime:7.3f}s",
                f"{b.compute_pct:5.1f}%",
                f"{b.blocked_pct:5.1f}%",
                f"{b.overhead_pct:5.1f}%",
                f"{b.imbalance:4.2f}x",
            ])
    print(render_table(
        ["app/variant", "runtime", "compute", "recv-blocked",
         "msg overhead", "imbalance"],
        rows,
        title=(f"Per-rank time breakdown at {args.bw} MByte/s, "
               f"{args.lat} ms (4x8, mean over ranks)"),
    ))


if __name__ == "__main__":
    main()
