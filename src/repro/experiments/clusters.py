"""Section 5.1's cluster-structure experiment: 8x4 versus 4x8.

"Performance increases as there are more, smaller, clusters: a setup of
8 clusters of 4 processors outperforms 4 clusters of 8 processors" —
because the fully-connected WAN's bisection bandwidth grows with the
cluster count (7 outgoing links per cluster instead of 3), and
performance is limited by wide-area bandwidth.

Run: ``python -m repro.experiments.clusters [--scale bench|paper]``
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Tuple

from ..apps import default_config, run_app
from . import grids
from .report import render_table
from .runner import Sweeper

#: Cluster shapes compared (always 32 processors).
SHAPES: Tuple[Tuple[int, int], ...] = ((2, 16), (4, 8), (8, 4))

#: A bandwidth-limited operating point where the effect is visible.
BANDWIDTH = 0.3
LATENCY_MS = 3.3


def measure(app: str, variant: str, scale: str = "bench",
            seed: int = 0, wan_shape: str = "full") -> List[Tuple[str, float, float]]:
    """Relative speedup of each shape (vs. all-Myrinet 32p)."""
    sweeper = Sweeper(scale=scale, seed=seed)
    rows = []
    for clusters, size in SHAPES:
        point = sweeper.speedup_at(app, variant, BANDWIDTH, LATENCY_MS,
                                   clusters=clusters, cluster_size=size,
                                   wan_shape=wan_shape)
        rows.append((f"{clusters}x{size}", point.runtime,
                     point.relative_speedup_pct))
    return rows


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="*", default=["water", "asp", "barnes"])
    parser.add_argument("--variant", default="optimized")
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--wan-shape", default="full",
                        choices=["full", "star", "ring"])
    args = parser.parse_args(argv)

    for app in args.apps:
        variant = args.variant if app != "fft" else "unoptimized"
        rows = [[shape, f"{runtime:7.3f}", f"{pct:5.1f}%"]
                for shape, runtime, pct in measure(app, variant, args.scale,
                                                   wan_shape=args.wan_shape)]
        print(render_table(
            ["shape", "runtime s", "relative speedup"],
            rows,
            title=(f"{app} {variant} — cluster structure at "
                   f"{BANDWIDTH} MByte/s, {LATENCY_MS} ms, "
                   f"{args.wan_shape} WAN (the paper: more, smaller "
                   f"clusters win on the full shape; the effect should "
                   f"diminish or vanish on star/ring)"),
        ))
        print()


if __name__ == "__main__":
    main()
