"""``python -m repro replay <app>`` — vectorized compiled-DAG pricing.

Records one instrumented run of the app at the mid-grid reference
point, compiles the communication DAG into a flat vectorized event
program, probes its frozen contention orders against the interpreted
evaluator at the grid corners, validates against full simulation there,
and prints the complete Figure-3 panel priced in one numpy pass — plus
the probe/validation verdicts and a stage-by-stage timing summary.
Order-unstable DAGs try the vectorized-adaptive rung first: the
fixed-point engine re-sorts every contended queue per grid point and
keeps the grid batched when its corner convergence check passes (fft);
programs whose iteration does not converge (water) downgrade to the
per-point predict path, and timing-dependent apps (tsp, awari) report
their fallback and run the full simulation.  With ``--loss``, reprices
the panel under a uniform WAN packet-loss rate — an axis only the
compiled programs offer analytically.
"""

from __future__ import annotations

import argparse
import time
from typing import Optional

from ..experiments import grids
from ..experiments.cache import SimCache
from ..experiments.figure3 import render_panel
from ..experiments.report import render_table
from ..experiments.runner import GridPoint, Sweeper


def _loss_panel(sweeper: Sweeper, app: str, variant: str,
                loss_rate: float) -> Optional[str]:
    """The Figure-3 panel re-priced under a uniform WAN loss rate."""
    decision = sweeper._replay(app, variant)
    if decision.mode not in ("replay", "vectorized-adaptive"):
        print(f"[replay] --loss needs a vectorized program; {app}/{variant} "
              f"runs in {decision.mode!r} mode — skipping the loss panel")
        return None
    base = sweeper.baseline_runtime(app, variant)
    if decision.mode == "replay":
        runtimes = decision.backend.price_grid(loss_rates=[loss_rate])[0]
    else:
        result = decision.backend.price_grid_adaptive(loss_rates=[loss_rate])
        if not result.all_converged:
            # The interpreted evaluator has no loss axis, so there is no
            # per-point downgrade target under loss — skip honestly.
            print(f"[replay] --loss skipped: {result.num_unconverged} "
                  f"points did not converge at p={loss_rate:g} and no "
                  f"analytic downgrade exists on the loss axis")
            return None
        runtimes = result.runtimes[0]
    from ..experiments.runner import SpeedupGrid

    grid = SpeedupGrid(app=app, variant=variant, baseline_runtime=base,
                       predicted=True, backend=decision.mode)
    for i, lat in enumerate(grids.LATENCIES_MS):
        for j, bw in enumerate(grids.BANDWIDTHS_MBYTE_S):
            runtime = float(runtimes[i][j])
            grid.points[(bw, lat)] = GridPoint(
                bandwidth_mbyte_s=bw, latency_ms=lat, runtime=runtime,
                relative_speedup_pct=100.0 * base / runtime)
    return render_panel(grid)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro replay", description=__doc__)
    parser.add_argument("app", choices=list(grids.APPS))
    parser.add_argument("--variant", default="optimized",
                        choices=["unoptimized", "optimized"])
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tolerance-pp", type=float, default=5.0,
                        help="max |program - simulated| relative speedup "
                             "(percentage points) at the validation corners "
                             "before falling back")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="SimCache directory: reuse/store the compiled "
                             "program and the corner simulations")
    parser.add_argument("--loss", type=float, default=None, metavar="P",
                        help="also print the panel re-priced under a uniform "
                             "WAN packet-loss rate P (0 <= P < 0.5)")
    args = parser.parse_args(argv)

    variant = args.variant
    if args.app == "fft" and variant == "optimized":
        variant = "unoptimized"  # the paper found no optimization for FFT
        print("note: fft has no optimized variant; using unoptimized\n")

    cache = SimCache(args.cache) if args.cache else None
    sweeper = Sweeper(scale=args.scale, seed=args.seed, backend="replay",
                      tolerance_pp=args.tolerance_pp, cache=cache)
    wall_start = time.perf_counter()  # lint: ignore[wall-clock]
    grid = sweeper.speedup_grid(args.app, variant)
    wall = time.perf_counter() - wall_start  # lint: ignore[wall-clock]

    print(render_panel(grid))
    print()
    print(f"[replay] backend={grid.backend} "
          f"({len(grid.points)}-point grid in {wall:.2f}s total)")
    if grid.replay is not None:
        print(f"[replay] probe: {grid.replay.summary()}")
    if grid.convergence is not None:
        print(f"[replay] convergence: {grid.convergence.summary()}")
    if grid.downgraded_points:
        pts = ", ".join(f"({bw:g} MB/s, {lat:g} ms)"
                        for bw, lat in grid.downgraded_points)
        print(f"[replay] {len(grid.downgraded_points)} unconverged "
              f"points re-priced by the evaluator: {pts}")
    if grid.validation is not None:
        print(f"[replay] validation: {grid.validation.summary()}")

    decision = sweeper._replay(args.app, variant)
    backend = decision.backend
    if backend is not None and backend.program is not None:
        stats = backend.program.stats()
        print(f"[replay] program: {stats['nodes']} nodes in "
              f"{stats['levels']} levels, {stats['joins_reduced']} joins "
              f"folded at compile time"
              + (" (loaded from cache)" if backend.from_cache else ""))
    if backend is not None and backend.adaptive_program is not None:
        stats = backend.adaptive_program.stats()
        print(f"[replay] adaptive program: {stats['nodes']} nodes in "
              f"{stats['levels']} levels, {stats['adaptive_group_ops']} "
              f"queue ops across {stats['adaptive_groups']} groups"
              + (" (loaded from cache)"
                 if backend.adaptive_from_cache else ""))
    if backend is not None and backend.timings:
        stages = ", ".join(f"{name[:-2]} {secs * 1e3:.1f}ms"
                           for name, secs in sorted(backend.timings.items()))
        print(f"[replay] stages: {stages}")

    if args.loss is not None and grid.backend in ("replay",
                                                  "vectorized-adaptive"):
        panel = _loss_panel(sweeper, args.app, variant, args.loss)
        if panel is not None:
            print()
            print(f"--- re-priced at WAN loss rate p={args.loss:g} ---")
            print(panel)
    elif args.loss is not None:
        print(f"[replay] --loss skipped: grid was produced by "
              f"{grid.backend!r}, not the vectorized program")
    return 0


if __name__ == "__main__":
    main()
