"""Compiled vectorized replay: re-price a recorded DAG across a grid.

:mod:`repro.whatif` proved the record-once pattern: one instrumented run
captures an application's communication DAG, and an analytic evaluator
re-prices it per grid point ~10x faster than simulating.  This package
takes the next order of magnitude by *not stepping events at all*: the
DAG is compiled once into a flat array-of-structs **event program** —
numpy arrays of dependency indices and affine cost coefficients, no
generators, no per-event Python dispatch — and the whole
(latency x bandwidth x loss-rate) grid is re-priced in **one vectorized
pass** (grid dimensions broadcast over the program arrays, contention
resolved by a topologically-ordered sweep of the dependency arrays).

The pipeline::

    record_app(...)            # repro.whatif: one instrumented run
      -> compile_dag(dag)      # repro.replay.compile: max-plus program
      -> ReplayProgram.price_grid(bandwidths, latencies[, loss_rates])

Fallback policy is the whatif policy, verbatim: a timing-sensitive
recording (tsp's work stealing, awari's MARK protocol), a fault-bearing
sweep (the :class:`~repro.whatif.validate.ValidationReport` a lossy plan
produces), or a corner-validation error above tolerance each send the
caller back to full simulation.  :class:`~repro.experiments.runner.
Sweeper` wires this in as ``backend="replay"``.

numpy is required only here: every pure-simulation path in the package
stays stdlib-only, and requesting the replay backend without numpy
raises a single clear :class:`ReplayUnavailable` error.
"""

from __future__ import annotations


class ReplayUnavailable(RuntimeError):
    """The replay backend was requested but numpy is not importable."""


def require_numpy():
    """Import and return numpy, or raise :class:`ReplayUnavailable`.

    Centralized so the error message is identical everywhere the backend
    can be reached (Sweeper, CLI, serve worker, cache loading).
    """
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise ReplayUnavailable(
            "the replay backend needs numpy (the vectorized grid sweep is "
            "built on it); install it with `pip install numpy` or use the "
            "stdlib-only paths: Sweeper(predict=True) / --predict, or full "
            "simulation") from exc
    return numpy


# The heavy re-exports resolve lazily (PEP 562): compile/backend pull in
# the whatif stack and the numpy-backed app kernels, but a no-numpy
# environment must still be able to ``import repro.replay`` and reach
# ReplayUnavailable / require_numpy for the clear error above.
_LAZY = {
    "CompileError": "compile",
    "compile_dag": "compile",
    "compile_recording": "compile",
    "ReplayProgram": "program",
    "ReplayBackend": "backend",
    "replay_record": "backend",
    "ADAPTIVE_FORMAT": "adaptive",
    "AdaptiveProgram": "adaptive",
    "AdaptiveResult": "adaptive",
    "ConvergencePoint": "backend",
    "ConvergenceReport": "backend",
}


def __getattr__(name: str):
    if name in _LAZY:
        from importlib import import_module
        module = import_module(f".{_LAZY[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ADAPTIVE_FORMAT",
    "AdaptiveProgram",
    "AdaptiveResult",
    "CompileError",
    "ConvergencePoint",
    "ConvergenceReport",
    "ReplayBackend",
    "ReplayProgram",
    "ReplayUnavailable",
    "compile_dag",
    "compile_recording",
    "replay_record",
    "require_numpy",
]
