"""Order-adaptive replay: vectorized fixed-point re-pricing.

The frozen :class:`~repro.replay.program.ReplayProgram` is exact only
while every contention order it captured at the reference point still
holds; fft's pipelined transpose rounds and water's daemon scheduling
reorder at the grid extremes, which is why PR 8 downgraded them to the
~20x-slower interpreted predict path.  An :class:`AdaptiveProgram`
keeps the levelized array representation but carries the compiler's
**queue groups** (:func:`~repro.replay.compile.compile_dag` with
``adaptive=True``): per contended resource, the arrival edge, service
cost row, and join node of every booking, in reference order.

Per grid point (batched across the whole grid in numpy) the engine
iterates to a fixed point:

1. price each queue op's **arrival** from the previous iterate's node
   values (``T[arr_pred] + arr_edge @ params``),
2. stable-argsort every queue by arrival (ties keep reference order —
   the evaluator's pop-sequence tiebreak; arrivals within
   ``order_tol`` of each other relative to the point's runtime count
   as ties, which stops order flapping between near-equivalent
   schedules),
3. **re-serve** each queue in the new order with a vectorized
   busy-period scan: with sorted arrivals ``a`` and an exclusive cost
   prefix sum ``S``, ``start_i = max(seed, max_{j<=i}(a_j - S_j)) +
   S_i`` — the classic ``start_i = max(a_i, end_{i-1})`` recurrence
   without a sequential loop.  Serving each queue *atomically* from
   the previous iterate keeps the update monotone-safe: a wrong order
   guess can never feed a cyclic precedence back into the values,
4. re-run the level sweep with the served starts overriding the queue
   nodes (non-queue nodes stay exact max-plus over them),
5. repeat until, per point, **no queue changed order and no node value
   changed** — a bitwise fixed point of the iteration map, at which the
   values satisfy the serve-in-arrival-order semantics exactly.

The per-resource order-change count is the convergence signal; points
still unconverged at the iteration cap are flagged so the caller
(:class:`~repro.experiments.runner.Sweeper`) can downgrade *those
points* — and only those — to the interpreted evaluator instead of
returning silently-wrong prices.  Order flapping (a cycle of serve
orders, each invalidating the other's arrival times) is exactly the
regime where a fixed dependency graph is the wrong model, so the
downgrade is the honest answer there.

Because the engine overrides every queue node by scatter anyway, the
adaptive compile emits **chainless** queue joins (both dependency
columns point at the arrival), which collapses the level count by an
order of magnitude (fft 1183 -> 101 levels) and keeps the sweep to a
few milliseconds for the whole Figure-3 grid.  The sweep kernel is
call-overhead bound (levels are sequential, grid points broadcast), so
the plan pre-stacks each level's two dependency gathers into one
``np.take``, pre-builds every per-level view, and splices served
starts in with a single scatter per level.  Measured on the Figure-3
grid: fft converges bitwise-exactly (<= 1e-13 vs. the interpreted
evaluator) within 30 iterations; water's value feedback is hundreds of
queue-crossings deep, so it never converges within any sensible cap
and every point downgrades — which is the honest outcome for a
recording whose schedule is that sensitive to the operating point.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..network.linkspec import MBYTE, MS
from ..network.topology import Topology
from . import require_numpy
from .program import (PROGRAM_FORMAT, ReplayProgram, _decode, _encode,
                      _levelize)

#: Bump when the group-array layout or the iteration semantics change;
#: part of the adaptive cache key (alongside the base PROGRAM_FORMAT).
ADAPTIVE_FORMAT = 2

#: Default iteration cap.  Measured fft grids converge exactly within
#: 30 iterations (orders fix early, then value corrections drain
#: through roughly one queue boundary per iteration); the cap bounds
#: deep-feedback programs like water, whose correction depth exceeds
#: any sensible cap and whose points downgrade honestly instead.
DEFAULT_MAX_ITERS = 40

#: Default order hysteresis: arrivals closer than this fraction of the
#: point's current runtime sort as ties (reference order wins).  Queues
#: whose near-simultaneous arrivals permute under float jitter would
#: otherwise flap between equivalent schedules forever.
DEFAULT_ORDER_TOL = 1e-9


@dataclass
class AdaptiveResult:
    """Per-point outcome of one adaptive pricing pass.

    ``runtimes``, ``converged`` and ``iterations`` share a shape (flat
    for point lists, ``(n_lat, n_bw)`` or ``(n_loss, n_lat, n_bw)`` for
    grids).  ``iterations`` counts re-serve iterations actually run per
    point (0 when the program has no re-sortable queues at all);
    unconverged points hold the cap and must not be trusted —
    :meth:`runtime_at` refuses to read them.
    """

    runtimes: Any
    converged: Any
    iterations: Any
    #: queue-kind -> number of (point, iteration) order changes observed.
    order_changes: Dict[str, int] = field(default_factory=dict)
    max_iters: int = DEFAULT_MAX_ITERS

    @property
    def num_points(self) -> int:
        return int(self.converged.size)

    @property
    def num_unconverged(self) -> int:
        return int(self.num_points - self.converged.sum())

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    @property
    def max_iterations(self) -> int:
        return int(self.iterations.max()) if self.num_points else 0

    def runtime_at(self, *index) -> float:
        """The runtime at one index — raises on an unconverged point
        (callers must downgrade those, never read them)."""
        if not bool(self.converged[index]):
            raise ValueError(
                f"point {index} did not converge within {self.max_iters} "
                f"iterations; downgrade it to the interpreted evaluator")
        return float(self.runtimes[index])

    def summary(self) -> str:
        flips = sum(self.order_changes.values())
        state = ("converged" if self.all_converged
                 else f"{self.num_unconverged} unconverged")
        return (f"{self.num_points} points {state}, max "
                f"{self.max_iterations} iterations, {flips} queue "
                f"order changes")


class _Plan:
    """Preallocated buffers and per-level views for one point count.

    Everything here is storage layout, not values: the same plan is
    reused across price calls (edge costs are re-priced into the same
    buffers with ``out=``), which keeps the per-level python overhead
    to a tuple unpack and three-or-four numpy kernel calls.
    """

    __slots__ = ("P", "t", "t_prev", "cost_ab", "base_levels",
                 "served_lv", "arr_costg", "costg", "seed_cost",
                 "arrg", "served", "s_prev", "s_new", "flat_perm",
                 "a_s", "c_s", "s_excl", "ok_rows")


class AdaptiveProgram(ReplayProgram):
    """A frozen program plus re-sortable queue groups.

    The base arrays *are* the frozen program (iteration 0 of the
    engine), so all inherited pricing still works; the adaptive entry
    points (:meth:`price_grid_adaptive` & co.) run the re-sorting
    iteration on top.
    """

    def __init__(self, pred_a, pred_b, edge_a, edge_b, level_starts,
                 fin_node, fin_edge, meta: Dict[str, Any],
                 grp_kinds: List[str], grp_starts, grp_seed_node,
                 grp_seed_edge, op_arr_pred, op_arr_edge, op_cost,
                 op_node) -> None:
        super().__init__(pred_a, pred_b, edge_a, edge_b, level_starts,
                         fin_node, fin_edge, meta)
        self.grp_kinds = grp_kinds        # K kind strings
        self.grp_starts = grp_starts      # (K+1,) int32 op ranges
        self.grp_seed_node = grp_seed_node  # (K,) int32
        self.grp_seed_edge = grp_seed_edge  # (K, 4) float64
        self.op_arr_pred = op_arr_pred    # (M,) int32 arrival pred node
        self.op_arr_edge = op_arr_edge    # (M, 4) float64 arrival row
        self.op_cost = op_cost            # (M, 4) float64 service cost row
        self.op_node = op_node            # (M,) int32 queue join node
        self._static: Optional[dict] = None  # layout shared by all plans
        self._plan: Optional[_Plan] = None   # buffers for one point count
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit_groups(cls, pa, pb, ea, eb, finish,
                            meta: Dict[str, Any],
                            glist: List[tuple]) -> "AdaptiveProgram":
        """Pack circuit lists plus queue groups (level-remapped).

        ``glist`` rows are ``(kind, seed_stamp, ops)`` with ops
        ``(arrival_stamp, cost_row, node_id)`` in reference service
        order — the order that seeds the iteration and breaks ties.
        """
        np = require_numpy()
        n = len(pa)
        order, remap, starts = _levelize(pa, pb)
        n_levels = len(starts) - 1

        pred_a = np.fromiter((remap[pa[old]] for old in order),
                             dtype=np.int32, count=n)
        pred_b = np.fromiter((remap[pb[old]] for old in order),
                             dtype=np.int32, count=n)
        edge_a = np.array([ea[old] for old in order], dtype=np.float64)
        edge_b = np.array([eb[old] for old in order], dtype=np.float64)
        fin_node = np.array([remap[f[0]] for f in finish], dtype=np.int32)
        fin_edge = np.array([f[1:] for f in finish], dtype=np.float64)

        kinds: List[str] = []
        g_starts = [0]
        seed_nodes: List[int] = []
        seed_edges: List[tuple] = []
        arr_pred: List[int] = []
        arr_edge: List[tuple] = []
        cost: List[tuple] = []
        nodes: List[int] = []
        for kind, seed, ops in glist:
            kinds.append(kind)
            seed_nodes.append(remap[seed[0]])
            seed_edges.append((seed[1], seed[2], seed[3], seed[4]))
            for at, crow, nid in ops:
                arr_pred.append(remap[at[0]])
                arr_edge.append((at[1], at[2], at[3], at[4]))
                cost.append(crow)
                nodes.append(remap[nid])
            g_starts.append(len(nodes))

        meta = dict(meta)
        meta["format"] = PROGRAM_FORMAT
        meta["adaptive_format"] = ADAPTIVE_FORMAT
        meta["num_nodes"] = n
        meta["num_levels"] = n_levels
        return cls(
            pred_a, pred_b, edge_a, edge_b,
            np.array(starts, dtype=np.int32), fin_node, fin_edge, meta,
            kinds, np.array(g_starts, dtype=np.int32),
            np.array(seed_nodes, dtype=np.int32),
            np.array(seed_edges, dtype=np.float64).reshape(len(kinds), 4),
            np.array(arr_pred, dtype=np.int32),
            np.array(arr_edge, dtype=np.float64).reshape(len(nodes), 4),
            np.array(cost, dtype=np.float64).reshape(len(nodes), 4),
            np.array(nodes, dtype=np.int32))

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self.grp_kinds)

    @property
    def num_group_ops(self) -> int:
        return int(self.op_node.shape[0])

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["adaptive_groups"] = self.num_groups
        stats["adaptive_group_ops"] = self.num_group_ops
        stats["adaptive_rigid_groups"] = self.meta.get(
            "adaptive_rigid_groups", 0)
        return stats

    # ------------------------------------------------------------------
    def _static_layout(self, np) -> dict:
        """Point-count-independent index layout, built once.

        Stacks each level's two dependency columns (``pred_a`` rows then
        ``pred_b`` rows) so the base update is one gather, one add and
        one maximum, and groups the queue ops by the level of their
        node so served starts splice in with one scatter per level.
        """
        if self._static is not None:
            return self._static
        ls = self.level_starts
        n_levels = self.num_levels
        N = self.num_nodes

        idx_ab = np.empty(2 * N, dtype=np.int32)
        edge_ab = np.empty((2 * N, 4), dtype=np.float64)
        base_slices = []           # (lo, hi, slo, shi) per level
        pos = 0
        for lv in range(n_levels):
            lo, hi = int(ls[lv]), int(ls[lv + 1])
            m = hi - lo
            idx_ab[pos:pos + m] = self.pred_a[lo:hi]
            idx_ab[pos + m:pos + 2 * m] = self.pred_b[lo:hi]
            edge_ab[pos:pos + m] = self.edge_a[lo:hi]
            edge_ab[pos + m:pos + 2 * m] = self.edge_b[lo:hi]
            base_slices.append((lo, hi, pos, pos + 2 * m))
            pos += 2 * m

        # Queue ops sorted by node (= level order, since each op has its
        # own join node); per level, the contiguous run of its ops.
        ov_order = np.argsort(self.op_node, kind="stable").astype(np.int32)
        ov_nodes = self.op_node[ov_order]
        ov_bounds = np.searchsorted(ov_nodes, ls).astype(np.int64)
        ov_slices = {}             # level -> (o0, o1, node ids)
        for lv in range(n_levels):
            o0, o1 = int(ov_bounds[lv]), int(ov_bounds[lv + 1])
            if o0 < o1:
                ov_slices[lv] = (o0, o1, ov_nodes[o0:o1])

        # Flat segmented-serve layout: group offset per op slot (local
        # permutation -> global row), each op's group-start row, and
        # the group-first rows (where the sticky sortedness check and
        # the seed both anchor).
        M = self.num_group_ops
        gs = self.grp_starts
        grp_of = np.repeat(np.arange(self.num_groups, dtype=np.int32),
                           np.diff(gs))
        grp_off = gs[:-1][grp_of].astype(np.int32)[:, None]   # (M, 1)
        first_rows = gs[:-1].astype(np.int64)                  # (K,)
        kind_groups = {}
        for k, kind in enumerate(self.grp_kinds):
            kind_groups.setdefault(kind, []).append(k)
        kind_groups = {kind: np.array(ix) for kind, ix in
                       kind_groups.items()}

        self._static = {
            "idx_ab": idx_ab, "edge_ab": edge_ab,
            "base_slices": base_slices,
            "ov_order": ov_order, "ov_slices": ov_slices,
            "grp_off": grp_off, "first_rows": first_rows,
            "local_slot": np.arange(M, dtype=np.int32)[:, None] - grp_off,
            "kind_groups": kind_groups,
        }
        return self._static

    def _build_plan(self, np, P: int, cache: bool = True) -> _Plan:
        """Buffers + per-level views for ``P`` simultaneous points.

        Transient plans (``cache=False``) serve the compaction path —
        once most grid points converge, iteration continues on a plan
        sized for the survivors without evicting the full-grid plan.
        """
        if cache and self._plan is not None and self._plan.P == P:
            return self._plan
        st = self._static_layout(np)
        N, M, K = self.num_nodes, self.num_group_ops, self.num_groups

        plan = _Plan()
        plan.P = P
        plan.t = np.empty((N, P), dtype=np.float64)
        plan.t_prev = np.empty((N, P), dtype=np.float64)
        plan.cost_ab = np.empty((2 * N, P), dtype=np.float64)

        # Per-level base tuples: gather index, cost view, scratch halves,
        # and the output view into t.  Scratch is one arena reused by
        # every level (levels run sequentially).
        max_m = max((hi - lo) for lo, hi, _, _ in st["base_slices"][1:]) \
            if len(st["base_slices"]) > 1 else 1
        arena = np.empty((2 * max_m, P), dtype=np.float64)
        base_levels = []
        for lv, (lo, hi, slo, shi) in enumerate(st["base_slices"][1:],
                                                start=1):
            m = hi - lo
            buf = arena[:2 * m]
            base_levels.append((st["idx_ab"][slo:shi],
                                plan.cost_ab[slo:shi],
                                buf, buf[:m], buf[m:],
                                plan.t[lo:hi],
                                st["ov_slices"].get(lv)))
        plan.base_levels = base_levels

        plan.served_lv = np.empty((M, P), dtype=np.float64)
        plan.arr_costg = np.empty((M, P), dtype=np.float64)
        plan.costg = np.empty((M, P), dtype=np.float64)
        plan.seed_cost = np.empty((K, P), dtype=np.float64)
        plan.arrg = np.empty((M, P), dtype=np.float64)
        plan.served = np.empty((M, P), dtype=np.float64)
        plan.s_prev = np.empty((M, P), dtype=np.int32)
        plan.s_new = np.empty((M, P), dtype=np.int32)
        plan.flat_perm = np.empty((M, P), dtype=np.int32)
        plan.a_s = np.empty((M, P), dtype=np.float64)
        plan.c_s = np.empty((M, P), dtype=np.float64)
        plan.s_excl = np.empty((M, P), dtype=np.float64)
        plan.ok_rows = np.empty((M, P), dtype=bool)
        if cache:
            self._plan = plan
        return plan

    # ------------------------------------------------------------------
    def _sweep_fast(self, np, plan: _Plan, served_lv) -> None:
        """One level sweep over ``plan.t``; when ``served_lv`` is given
        (queue ops in level order), its rows override the queue nodes."""
        t = plan.t
        ls = self.level_starts
        t[:int(ls[1])] = 0.0
        maximum, add, take = np.maximum, np.add, np.take
        if served_lv is None:
            for idx, cost, buf, half_a, half_b, out, _ in plan.base_levels:
                take(t, idx, axis=0, out=buf, mode="clip")
                add(buf, cost, out=buf)
                maximum(half_a, half_b, out=out)
        else:
            for idx, cost, buf, half_a, half_b, out, ov in plan.base_levels:
                take(t, idx, axis=0, out=buf, mode="clip")
                add(buf, cost, out=buf)
                maximum(half_a, half_b, out=out)
                if ov is not None:
                    o0, o1, onodes = ov
                    t[onodes] = served_lv[o0:o1]

    def _serve(self, np, plan: _Plan, order_tol: float, scale) -> None:
        """Re-sort and re-serve every queue from the current iterate.

        Fills ``plan.arrg`` (arrivals), ``plan.s_new`` (per-queue serve
        permutations) and ``plan.served`` (start-of-service per op, slot
        order).  Orders are *sticky*: a queue keeps its previous
        permutation while its arrivals stay sorted under it to within
        ``order_tol`` of the point's runtime ``scale`` — re-sorting on
        every sub-tolerance jitter would let near-simultaneous arrivals
        flap between equivalent schedules forever (a classic two-cycle
        of this kind of fixed-point iteration).  With ``order_tol=0``
        only bitwise-sorted previous orders are kept, so the converged
        order is exactly the arrival order.
        """
        st = self._static
        t = plan.t
        gs = self.grp_starts
        M = self.num_group_ops
        np.take(t, self.op_arr_pred, axis=0, out=plan.arrg)
        plan.arrg += plan.arr_costg
        tol = scale * order_tol if order_tol > 0.0 else 0.0

        # Sticky check, all groups at once: gather arrivals in the
        # previous serve order (global rows = group offset + local
        # permutation) and test sortedness within each segment.
        np.add(plan.s_prev, st["grp_off"], out=plan.flat_perm)
        a_s = plan.a_s
        a_s[:] = np.take_along_axis(plan.arrg, plan.flat_perm, axis=0)
        plan.ok_rows[1:] = a_s[:-1] <= a_s[1:] + tol
        plan.ok_rows[st["first_rows"]] = True
        keep = np.logical_and.reduceat(plan.ok_rows, gs[:-1], axis=0)

        np.copyto(plan.s_new, plan.s_prev)
        resort = ~keep.all(axis=1)
        for k in np.nonzero(resort)[0]:
            lo, hi = int(gs[k]), int(gs[k + 1])
            p = np.argsort(plan.arrg[lo:hi], axis=0, kind="stable")
            np.copyto(p, plan.s_prev[lo:hi], where=keep[k][None, :])
            plan.s_new[lo:hi] = p
        if resort.any():
            np.add(plan.s_new, st["grp_off"], out=plan.flat_perm)
            a_s[:] = np.take_along_axis(plan.arrg, plan.flat_perm, axis=0)

        # Busy-period scan, segmented: exclusive cost prefix within each
        # group via a global cumsum rebased at the group-first rows
        # (rounding of the rebase is deterministic, which is all the
        # bitwise convergence check needs), then a per-group running max
        # of ``arrival - prefix``.
        c_s = plan.c_s
        c_s[:] = np.take_along_axis(plan.costg, plan.flat_perm, axis=0)
        s_excl = plan.s_excl
        s_excl[0] = 0.0
        np.cumsum(c_s[:-1], axis=0, out=s_excl[1:])
        base = s_excl[st["grp_off"][:, 0]]
        s_excl -= base
        z = a_s
        z -= s_excl
        first = st["first_rows"]
        seedv = t[self.grp_seed_node] + plan.seed_cost
        z[first] = np.maximum(z[first], seedv)
        for k in range(self.num_groups):
            lo, hi = int(gs[k]), int(gs[k + 1])
            np.maximum.accumulate(z[lo:hi], axis=0, out=z[lo:hi])
        z += s_excl
        np.put_along_axis(plan.served, plan.flat_perm, z, axis=0)

    # ------------------------------------------------------------------
    def _iterate(self, np, params, max_iters: int, order_tol: float):
        """The fixed-point loop; returns flat per-point result arrays.

        ``params`` is the ``(4, P)`` parameter matrix of
        :meth:`ReplayProgram._sweep`.
        """
        P = params.shape[1]
        fin_cost = self.fin_edge @ params
        if self.num_group_ops == 0 or max_iters < 1:
            cost_a = self.edge_a @ params
            cost_b = self.edge_b @ params
            T = self._sweep_values(np, cost_a, cost_b)
            runtimes = (T[self.fin_node] + fin_cost).max(axis=0)
            # With queues present, the base sweep alone prices a
            # chainless (no-waiting) relaxation — never trustworthy.
            ok = self.num_group_ops == 0
            return (runtimes, np.full(P, ok, dtype=bool),
                    np.zeros(P, dtype=np.int32), {})
        with self._lock:
            return self._iterate_locked(np, params, max_iters, order_tol,
                                        fin_cost)

    def _iterate_locked(self, np, params, max_iters: int,
                        order_tol: float, fin_cost):
        P0 = params.shape[1]
        st = self._static_layout(np)
        gs = self.grp_starts
        ov_order = st["ov_order"]

        out_rt = np.empty(P0, dtype=np.float64)
        out_conv = np.zeros(P0, dtype=bool)
        out_iters = np.zeros(P0, dtype=np.int32)
        order_changes: Dict[str, int] = {}

        def price(plan, params) -> None:
            np.matmul(st["edge_ab"], params, out=plan.cost_ab)
            np.matmul(self.op_arr_edge, params, out=plan.arr_costg)
            np.matmul(self.op_cost, params, out=plan.costg)
            np.matmul(self.grp_seed_edge, params, out=plan.seed_cost)

        plan = self._build_plan(np, P0)
        price(plan, params)
        live = np.arange(P0)           # global column of each plan column
        active = np.ones(P0, dtype=bool)

        # Iteration 0: the chainless relaxation (queues serve with no
        # waiting) seeds the arrivals; serve orders seed from the
        # compiler's reference order.
        self._sweep_fast(np, plan, None)
        plan.s_prev[:] = st["local_slot"]
        scale = (plan.t[self.fin_node] + fin_cost).max(axis=0)

        it = 0
        while it < max_iters:
            it += 1
            self._serve(np, plan, order_tol, scale)
            gflips = np.logical_or.reduceat(plan.s_new != plan.s_prev,
                                            gs[:-1], axis=0)
            changed = gflips.any(axis=0)
            if changed.any():
                gact = gflips & active[None, :]
                for kind, ix in st["kind_groups"].items():
                    n = int(gact[ix].sum())
                    if n:
                        order_changes[kind] = \
                            order_changes.get(kind, 0) + n
            np.copyto(plan.t_prev, plan.t)
            np.take(plan.served, ov_order, axis=0, out=plan.served_lv)
            self._sweep_fast(np, plan, plan.served_lv)
            scale = (plan.t[self.fin_node] + fin_cost).max(axis=0)
            same = (plan.t == plan.t_prev).all(axis=0)
            newly = same & ~changed & active
            if newly.any():
                done = live[newly]
                out_rt[done] = scale[newly]
                out_conv[done] = True
                out_iters[done] = it
                active &= ~newly
            nlive = int(active.sum())
            if nlive == 0:
                break
            plan.s_prev, plan.s_new = plan.s_new, plan.s_prev
            if nlive <= plan.P // 2:
                # Compact to the unconverged columns: iteration cost
                # tracks the surviving points, not the original grid.
                cols = np.nonzero(active)[0]
                live = live[cols]
                params = np.ascontiguousarray(params[:, cols])
                fin_cost = np.ascontiguousarray(fin_cost[:, cols])
                t_keep = plan.t[:, cols].copy()
                s_keep = plan.s_prev[:, cols].copy()
                scale = scale[cols].copy()
                plan = self._build_plan(np, nlive, cache=False)
                price(plan, params)
                plan.t[:] = t_keep
                plan.s_prev[:] = s_keep
                active = np.ones(nlive, dtype=bool)

        if int(active.sum()):
            rest = live[active]
            out_rt[rest] = scale[active]
            out_iters[rest] = it
        return out_rt, out_conv, out_iters, order_changes

    def _adaptive(self, np, inv_bw, wlat, eloss, max_iters: int,
                  order_tol: float) -> AdaptiveResult:
        params = np.stack([np.ones_like(inv_bw), inv_bw, wlat, eloss])
        runtimes, converged, iters, flips = self._iterate(
            np, params, max_iters, order_tol)
        return AdaptiveResult(runtimes=runtimes, converged=converged,
                              iterations=iters, order_changes=flips,
                              max_iters=max_iters)

    # ------------------------------------------------------------------
    def price_grid_adaptive(self, bandwidths_mbyte_s: Sequence[float],
                            latencies_ms: Sequence[float],
                            loss_rates: Optional[Sequence[float]] = None,
                            max_iters: int = DEFAULT_MAX_ITERS,
                            order_tol: float = DEFAULT_ORDER_TOL
                            ) -> AdaptiveResult:
        """Adaptive runtimes for the full cartesian grid; shapes match
        :meth:`ReplayProgram.price_grid`."""
        np = require_numpy()
        bws = np.asarray(bandwidths_mbyte_s, dtype=np.float64) * MBYTE
        lats = np.asarray(latencies_ms, dtype=np.float64) * MS
        losses = (np.zeros(1) if loss_rates is None
                  else np.asarray(loss_rates, dtype=np.float64))
        grid = np.meshgrid(losses, lats, 1.0 / bws, indexing="ij")
        loss, wlat, inv_bw = (g.ravel() for g in grid)
        inv_bw_eff, eloss = self._loss_terms(np, inv_bw, wlat, loss)
        result = self._adaptive(np, inv_bw_eff, wlat, eloss, max_iters,
                                order_tol)
        shape = (len(losses), len(lats), len(bws))
        for name in ("runtimes", "converged", "iterations"):
            arr = getattr(result, name).reshape(shape)
            setattr(result, name, arr if loss_rates is not None else arr[0])
        return result

    def price_points_adaptive(self, points: Sequence[Tuple[float, float]],
                              loss_rate: float = 0.0,
                              max_iters: int = DEFAULT_MAX_ITERS,
                              order_tol: float = DEFAULT_ORDER_TOL
                              ) -> AdaptiveResult:
        """Adaptive runtimes for arbitrary ``(bw_mbyte_s, lat_ms)``
        pairs, flat."""
        np = require_numpy()
        inv_bw = 1.0 / (np.array([p[0] for p in points]) * MBYTE)
        wlat = np.array([p[1] for p in points]) * MS
        loss = np.full_like(inv_bw, float(loss_rate))
        inv_bw_eff, eloss = self._loss_terms(np, inv_bw, wlat, loss)
        return self._adaptive(np, inv_bw_eff, wlat, eloss, max_iters,
                              order_tol)

    def price_adaptive(self, topology: Topology, loss_rate: float = 0.0,
                       max_iters: int = DEFAULT_MAX_ITERS,
                       order_tol: float = DEFAULT_ORDER_TOL
                       ) -> Tuple[float, bool, int]:
        """One shape-checked point: ``(runtime, converged, iterations)``.

        The runtime is returned even when unconverged — the *caller*
        owns the downgrade decision and the ``converged`` flag is the
        contract (:class:`~repro.experiments.runner.Sweeper` swaps in
        the interpreted evaluator).
        """
        np = require_numpy()
        self.check_topology(topology)
        inv_bw = np.array([1.0 / topology.wide.bandwidth])
        wlat = np.array([topology.wide.latency])
        loss = np.array([float(loss_rate)])
        inv_bw_eff, eloss = self._loss_terms(np, inv_bw, wlat, loss)
        result = self._adaptive(np, inv_bw_eff, wlat, eloss, max_iters,
                                order_tol)
        return (float(result.runtimes[0]), bool(result.converged[0]),
                int(result.iterations[0]))

    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        record = super().to_record()
        record["adaptive_format"] = ADAPTIVE_FORMAT
        record["grp_kinds"] = list(self.grp_kinds)
        for name in ("grp_starts", "grp_seed_node", "grp_seed_edge",
                     "op_arr_pred", "op_arr_edge", "op_cost", "op_node"):
            record[name] = _encode(getattr(self, name))
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "AdaptiveProgram":
        np = require_numpy()
        if record.get("format") != PROGRAM_FORMAT or \
                record.get("adaptive_format") != ADAPTIVE_FORMAT:
            raise ValueError(
                f"adaptive program format "
                f"{record.get('format')!r}/{record.get('adaptive_format')!r}"
                f" != {PROGRAM_FORMAT}/{ADAPTIVE_FORMAT}")
        return cls(
            _decode(np, record["pred_a"]), _decode(np, record["pred_b"]),
            _decode(np, record["edge_a"]), _decode(np, record["edge_b"]),
            _decode(np, record["level_starts"]),
            _decode(np, record["fin_node"]), _decode(np, record["fin_edge"]),
            dict(record["meta"]), list(record["grp_kinds"]),
            _decode(np, record["grp_starts"]),
            _decode(np, record["grp_seed_node"]),
            _decode(np, record["grp_seed_edge"]),
            _decode(np, record["op_arr_pred"]),
            _decode(np, record["op_arr_edge"]),
            _decode(np, record["op_cost"]),
            _decode(np, record["op_node"]))
