"""Flat array-of-structs event program, priced by vectorized numpy sweeps.

A :class:`ReplayProgram` is the output of :func:`~repro.replay.compile.
compile_dag`: a (max, +) circuit over the swept WAN parameters, stored as
parallel arrays —

- ``pred_a`` / ``pred_b`` (int32): the two dependency indices of each
  join node, and
- ``edge_a`` / ``edge_b`` (float64, shape ``(N, 4)``): each edge's affine
  cost row ``(c0, bytes, hops, traversals)``, priced per grid point as
  ``c0 + bytes/wide_bw + hops*wide_lat + traversals*E_loss``.

Nodes are stored in level order (level = longest dependency chain below),
so :meth:`price_grid` is a topologically-ordered sweep: one fused
``maximum(T[pred_a] + cost_a, T[pred_b] + cost_b)`` per level, with the
grid dimension broadcast across the whole level — no per-event Python
dispatch, a handful of numpy kernel calls per dependency level.

The loss-rate axis is an expected-value model of the reliable transport
(:mod:`repro.runtime.transport`): each WAN traversal of a lossy link
pays the expected geometric-backoff retransmission delay

    E(p) = RTO * (b*p/(1-b*p) - p/(1-p)) / (b-1)

with backoff ``b`` and ``RTO = rto_factor * uncontended_RTT`` (clamped at
``min_rto``), and the effective wire bandwidth shrinks by ``(1-p)`` to
account for retransmitted bytes.  This prices the *expectation*, not a
seeded sample — sweeps carrying an actual seeded
:class:`~repro.faults.plan.FaultPlan` fall back to full simulation (see
:class:`~repro.replay.backend.ReplayBackend`).

Programs serialize to JSON (arrays as base64) so :class:`~repro.
experiments.cache.SimCache` can content-address them: a serve cold start
deserializes and prices in milliseconds instead of re-recording.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..network.linkspec import MBYTE, MS
from ..network.topology import Topology
from . import require_numpy

#: Bump when the array layout or cost semantics change: the version is
#: part of every cache key, so stale cached programs miss instead of
#: mispricing.
PROGRAM_FORMAT = 1

# Reliable-transport constants mirrored from repro.runtime.transport's
# TransportConfig defaults (the loss model prices their expectation).
_RTO_FACTOR = 3.0
_MIN_RTO = 1e-3
_BACKOFF = 2.0
_ACK_BYTES = 64.0


def _levelize(pa: List[int], pb: List[int]):
    """Longest-chain levels for the compiler's append-order node lists.

    Returns ``(order, remap, starts)``: the level-major node order, the
    old-id -> new-id map, and the per-level start offsets (length
    ``n_levels + 1``).  Shared by :meth:`ReplayProgram.from_circuit` and
    the adaptive packer, which must remap its group arrays with the
    same ``remap``.
    """
    n = len(pa)
    level = [0] * n
    for i in range(1, n):
        la = level[pa[i]]
        lb = level[pb[i]]
        level[i] = (la if la >= lb else lb) + 1
    order = sorted(range(n), key=lambda i: (level[i], i))
    remap = [0] * n
    for new, old in enumerate(order):
        remap[old] = new
    n_levels = level[order[-1]] + 1 if n else 1
    starts = [0] * (n_levels + 1)
    for lv in (level[old] for old in order):
        starts[lv + 1] += 1
    for lv in range(n_levels):
        starts[lv + 1] += starts[lv]
    return order, remap, starts


def _encode(arr) -> Dict[str, Any]:
    return {"shape": list(arr.shape), "dtype": str(arr.dtype),
            "data": base64.b64encode(arr.tobytes()).decode("ascii")}


def _decode(np, obj: Dict[str, Any]):
    arr = np.frombuffer(base64.b64decode(obj["data"]),
                        dtype=np.dtype(obj["dtype"]))
    return arr.reshape(obj["shape"]).copy()


class ReplayProgram:
    """A compiled DAG, re-priceable across a whole grid in one pass."""

    def __init__(self, pred_a, pred_b, edge_a, edge_b, level_starts,
                 fin_node, fin_edge, meta: Dict[str, Any]) -> None:
        self.pred_a = pred_a          # (N,) int32, level-ordered
        self.pred_b = pred_b          # (N,) int32
        self.edge_a = edge_a          # (N, 4) float64
        self.edge_b = edge_b          # (N, 4) float64
        self.level_starts = level_starts  # (L+1,) int32; level l = [s[l], s[l+1])
        self.fin_node = fin_node      # (F,) int32
        self.fin_edge = fin_edge      # (F, 4) float64
        self.meta = meta

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, pa: List[int], pb: List[int], ea: List[tuple],
                     eb: List[tuple], finish: List[tuple],
                     meta: Dict[str, Any]) -> "ReplayProgram":
        """Levelize, renumber, and pack the compiler's circuit lists.

        ``finish`` rows are ``(node, c0, bytes, hops, traversals)`` finish
        stamps.  The compiler appends join nodes in a valid topological
        order (operands always exist first), so levels are one forward
        pass.
        """
        np = require_numpy()
        n = len(pa)
        order, remap, starts = _levelize(pa, pb)
        n_levels = len(starts) - 1

        pred_a = np.fromiter((remap[pa[old]] for old in order),
                             dtype=np.int32, count=n)
        pred_b = np.fromiter((remap[pb[old]] for old in order),
                             dtype=np.int32, count=n)
        edge_a = np.array([ea[old] for old in order], dtype=np.float64)
        edge_b = np.array([eb[old] for old in order], dtype=np.float64)
        fin_node = np.array([remap[f[0]] for f in finish], dtype=np.int32)
        fin_edge = np.array([f[1:] for f in finish], dtype=np.float64)
        meta = dict(meta)
        meta["format"] = PROGRAM_FORMAT
        meta["num_nodes"] = n
        meta["num_levels"] = n_levels
        return cls(pred_a, pred_b, edge_a, edge_b,
                   np.array(starts, dtype=np.int32), fin_node, fin_edge,
                   meta)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.pred_a.shape[0])

    @property
    def num_levels(self) -> int:
        return int(self.level_starts.shape[0]) - 1

    def stats(self) -> Dict[str, Any]:
        """Program-shape summary for reports and metrics."""
        return {
            "nodes": self.num_nodes,
            "levels": self.num_levels,
            "finish_stamps": int(self.fin_node.shape[0]),
            "joins_reduced": self.meta.get("joins_reduced", 0),
            "num_ops": self.meta.get("num_ops", 0),
            "num_messages": self.meta.get("num_messages", 0),
            "wan_traversals": self.meta.get("wan_traversals", 0),
        }

    # ------------------------------------------------------------------
    def _loss_terms(self, np, inv_bw, wlat, loss):
        """Per-point (inv_bw_effective, expected retransmission delay)."""
        if not np.any(loss):
            return inv_bw, np.zeros_like(inv_bw)
        if np.any(loss < 0.0) or np.any(loss * _BACKOFF >= 1.0):
            raise ValueError(
                f"loss rates must be in [0, {1.0 / _BACKOFF:g}) for the "
                f"expected-value model (geometric backoff x{_BACKOFF:g} "
                f"diverges beyond it); simulate heavier loss with a "
                f"FaultPlan instead")
        meta = self.meta
        travs = meta.get("wan_traversals", 0)
        mean_bytes = (meta["wan_bytes"] / travs) if travs else 0.0
        local_lat, _, send_ov, recv_ov = meta["local_spec"]
        gw = meta["gateway_overhead_s"]
        # First-order uncontended RTT of a representative data message
        # plus its 64-byte ack: WAN wire + propagation both ways, the
        # gateway handling on each side, and the local legs.
        fixed = 2.0 * (2.0 * local_lat + 2.0 * gw + send_ov + recv_ov)
        rtt = 2.0 * wlat + (mean_bytes + _ACK_BYTES) * inv_bw + fixed
        rto = np.maximum(_MIN_RTO, _RTO_FACTOR * rtt)
        b = _BACKOFF
        expected = rto * (b * loss / (1.0 - b * loss)
                          - loss / (1.0 - loss)) / (b - 1.0)
        return inv_bw / (1.0 - loss), expected

    def _sweep_values(self, np, cost_a, cost_b):
        """All node values for pre-priced edge costs (both ``(N, G)``)."""
        t = np.empty_like(cost_a)
        starts = self.level_starts
        t[starts[0]:starts[1]] = 0.0         # level 0: the root
        pa, pb = self.pred_a, self.pred_b
        for lv in range(1, self.num_levels):
            lo, hi = int(starts[lv]), int(starts[lv + 1])
            np.maximum(t[pa[lo:hi]] + cost_a[lo:hi],
                       t[pb[lo:hi]] + cost_b[lo:hi],
                       out=t[lo:hi])
        return t

    def _sweep(self, np, inv_bw, wlat, eloss):
        """Runtime at each of G grid points (all args shape ``(G,)``)."""
        # Price every edge at every point with one matmul: rows of the
        # parameter matrix are (1, 1/wide_bw, wide_lat, E_loss).
        params = np.stack([np.ones_like(inv_bw), inv_bw, wlat, eloss])
        cost_a = self.edge_a @ params        # (N, G)
        cost_b = self.edge_b @ params
        t = self._sweep_values(np, cost_a, cost_b)
        finals = t[self.fin_node] + self.fin_edge @ params
        return finals.max(axis=0)

    # ------------------------------------------------------------------
    def price_grid(self, bandwidths_mbyte_s: Sequence[float],
                   latencies_ms: Sequence[float],
                   loss_rates: Optional[Sequence[float]] = None):
        """Runtimes for the full cartesian grid, in one vectorized pass.

        Returns a float64 array of shape ``(len(latencies_ms),
        len(bandwidths_mbyte_s))``, row-major like the Figure-3 panels —
        or, when ``loss_rates`` is given, ``(len(loss_rates), n_lat,
        n_bw)``.
        """
        np = require_numpy()
        bws = np.asarray(bandwidths_mbyte_s, dtype=np.float64) * MBYTE
        lats = np.asarray(latencies_ms, dtype=np.float64) * MS
        losses = (np.zeros(1) if loss_rates is None
                  else np.asarray(loss_rates, dtype=np.float64))
        grid = np.meshgrid(losses, lats, 1.0 / bws, indexing="ij")
        loss, wlat, inv_bw = (g.ravel() for g in grid)
        inv_bw_eff, eloss = self._loss_terms(np, inv_bw, wlat, loss)
        runtimes = self._sweep(np, inv_bw_eff, wlat, eloss)
        shape = (len(losses), len(lats), len(bws))
        out = runtimes.reshape(shape)
        return out[0] if loss_rates is None else out

    def price_points(self, points: Sequence[Tuple[float, float]],
                     loss_rate: float = 0.0):
        """Runtimes for arbitrary ``(bandwidth_mbyte_s, latency_ms)``
        pairs (not necessarily a cartesian grid) in one sweep."""
        np = require_numpy()
        inv_bw = 1.0 / (np.array([p[0] for p in points]) * MBYTE)
        wlat = np.array([p[1] for p in points]) * MS
        loss = np.full_like(inv_bw, float(loss_rate))
        inv_bw_eff, eloss = self._loss_terms(np, inv_bw, wlat, loss)
        return self._sweep(np, inv_bw_eff, wlat, eloss)

    def price(self, topology: Topology, loss_rate: float = 0.0) -> float:
        """Runtime at a single topology (shape-checked single point)."""
        np = require_numpy()
        self.check_topology(topology)
        inv_bw = np.array([1.0 / topology.wide.bandwidth])
        wlat = np.array([topology.wide.latency])
        loss = np.array([float(loss_rate)])
        inv_bw_eff, eloss = self._loss_terms(np, inv_bw, wlat, loss)
        return float(self._sweep(np, inv_bw_eff, wlat, eloss)[0])

    def check_topology(self, topology: Topology) -> None:
        """Raise ValueError unless ``topology`` differs from the compiled
        base only in the swept WAN latency/bandwidth."""
        meta = self.meta
        if list(topology.cluster_sizes) != meta["cluster_sizes"]:
            raise ValueError(
                f"topology shape {topology.cluster_sizes} does not match "
                f"the compiled shape {tuple(meta['cluster_sizes'])}")
        if topology.wan_shape != meta["wan_shape"] or \
                topology.wan_hub != meta["wan_hub"]:
            raise ValueError("WAN shape differs from the compiled program")
        local = [topology.local.latency, topology.local.bandwidth,
                 topology.local.send_overhead, topology.local.recv_overhead]
        wide_ov = [topology.wide.send_overhead, topology.wide.recv_overhead]
        if local != meta["local_spec"] or wide_ov != meta["wide_overheads"] \
                or topology.gateway_overhead != meta["gateway_overhead_s"]:
            raise ValueError(
                "local-layer constants differ from the compiled program "
                "(only WAN latency/bandwidth are swept); recompile")
        if topology.wan_variability is not None:
            raise ValueError("cannot price under WAN variability")

    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """JSON-able form (arrays as base64) for SimCache storage."""
        return {
            "format": PROGRAM_FORMAT,
            "meta": self.meta,
            "pred_a": _encode(self.pred_a),
            "pred_b": _encode(self.pred_b),
            "edge_a": _encode(self.edge_a),
            "edge_b": _encode(self.edge_b),
            "level_starts": _encode(self.level_starts),
            "fin_node": _encode(self.fin_node),
            "fin_edge": _encode(self.fin_edge),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ReplayProgram":
        """Inverse of :meth:`to_record`; raises ValueError on a stale or
        foreign format."""
        np = require_numpy()
        if record.get("format") != PROGRAM_FORMAT:
            raise ValueError(
                f"replay program format {record.get('format')!r} != "
                f"{PROGRAM_FORMAT}")
        return cls(
            _decode(np, record["pred_a"]), _decode(np, record["pred_b"]),
            _decode(np, record["edge_a"]), _decode(np, record["edge_b"]),
            _decode(np, record["level_starts"]),
            _decode(np, record["fin_node"]), _decode(np, record["fin_edge"]),
            dict(record["meta"]))
