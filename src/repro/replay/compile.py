"""Compile a recorded :class:`~repro.whatif.record.CommDag` to a max-plus
event program.

The :class:`~repro.whatif.evaluate.Evaluator` replays a DAG with plain
float arithmetic: every timestamp is built from ``max`` (a process waits
for a message, a message waits for a busy resource) and ``+`` (compute
intervals, overheads, wire terms).  Crucially, each ``+`` term is an
*affine* function of the swept WAN parameters::

    cost(theta) = c0  +  bytes / wide_bw  +  n_hops * wide_lat
                      +  n_traversals * E_loss(theta)

(local-network terms are constants of the recorded cluster shape — the
Figure-3 grid sweeps only the WAN).  That makes one full replay a
**(max, +) circuit** over those four coefficients.  This module runs the
evaluator's algorithm exactly once, at the recording's reference
parameters, with symbolic *stamps* instead of floats: a stamp is a node
of the circuit plus an accumulated affine offset.  ``+`` extends the
offset (free); ``max`` materializes a binary **join node** with the two
operand stamps as dependency edges.  The result is a flat program —
``pred_a``/``pred_b`` index arrays and per-edge coefficient rows — that
:class:`~repro.replay.program.ReplayProgram` re-prices for an entire
grid in one vectorized numpy pass, no per-event dispatch.

What is frozen at compile time is the *orders*: the order contended
resources (NIC, gateway CPU, WAN wire, egress) serve their messages and
the order daemons serve their handler blocks, both resolved at the
reference point.  Re-pricing under parameters that would flip one of
those orders is a first-order approximation — exactly the regime the
corner validation in :class:`~repro.replay.backend.ReplayBackend`
exists to catch (and LLAMP's fixed-dependency-graph analysis shares).
Pure dependency chains (receive pins, compute, spawns) carry over
exactly: a parked-vs-delivered receive is ``max(t, delivery)`` on both
paths, so only contention order is approximated.

``compile_dag(..., adaptive=True)`` removes even that approximation's
*representation*: queue joins are emitted chainless (no frozen
served-order edges, which collapses the level count) and every
contended resource's service ops are recorded as a **queue group** —
arrival stamp plus cost row per op — so
:class:`~repro.replay.adaptive.AdaptiveProgram` can re-sort and
re-price the orders per grid point until they converge.  Rigid groups
whose order is data-independent keep their chain edges and stay out of
the iteration.

Join reduction keeps the program small: a ``max`` of two stamps on the
same node collapses when one offset dominates componentwise, and a
``max`` against the never-positive root stamp (an idle resource clock)
is dropped.  What remains is one node per *genuine* synchronization.

**Adaptive mode** (``compile_dag(..., adaptive=True)``) targets the
order-unstable DAGs the frozen programs cannot price: every
resource-booking ``max`` is materialized unconditionally and recorded in
a per-resource **queue group** — (arrival stamp, service-cost row,
join node) per booking, in reference service order — so
:class:`~repro.replay.adaptive.AdaptiveProgram` can re-sort each queue
from a previous iterate's arrival times and re-serve it per grid point,
instead of trusting the frozen order.  Daemon handler queues become
groups too (the block's service cost is the recv overhead plus its body
duration); a daemon block whose body is not affine over the block start
(a shared-CPU compute chain) marks its group *rigid* — kept frozen —
while shared CPUs gain their own re-sortable ``cpu`` groups.  One
deliberate approximation: a started daemon's wake-time join
(``t = max(t, now)``) is dropped — it is subsumed by the per-block
arrival maxes except for a LIFO pop quirk the convergence check
arbitrates.  Adaptive programs therefore are not bit-identical to the
frozen compile even at the anchor; the default (non-adaptive) output is
unchanged byte for byte.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..network.topology import Topology
from ..whatif.evaluate import Evaluator
from ..whatif.record import (OP_COMPUTE, OP_MCAST, OP_SEND, CommDag,
                             Recording)

# Heap event kinds, mirroring the evaluator's.
_EV_SEND = 0
_EV_MCAST = 1
_EV_GW = 2
_EV_ARRIVE = 3

#: A stamp: (node, c0, c_bytes, c_lat, c_loss, ref_time).  ``node`` is a
#: circuit node id; the c's are the affine offset on top of it; ``ref``
#: is the concrete time at the reference parameters (heap/service order).
_ZERO = (0, 0.0, 0.0, 0.0, 0.0, 0.0)


class CompileError(RuntimeError):
    """The DAG could not be compiled (timing-sensitive or inconsistent)."""


class _Circuit:
    """Append-only join-node store: parallel edge arrays."""

    __slots__ = ("pa", "pb", "ea", "eb", "joins_reduced")

    def __init__(self) -> None:
        # Node 0 is the root (time zero); give it a self-edge so the
        # arrays stay aligned with node ids.
        self.pa: List[int] = [0]
        self.pb: List[int] = [0]
        self.ea: List[Tuple[float, float, float, float]] = [(0.0,) * 4]
        self.eb: List[Tuple[float, float, float, float]] = [(0.0,) * 4]
        self.joins_reduced = 0

    def join(self, x: tuple, y: tuple) -> tuple:
        """max(x, y) — reduced where provably one-sided, else a node."""
        if x[0] == y[0]:
            if x[1] >= y[1] and x[2] >= y[2] and x[3] >= y[3] and x[4] >= y[4]:
                self.joins_reduced += 1
                return x
            if y[1] >= x[1] and y[2] >= x[2] and y[3] >= x[3] and y[4] >= x[4]:
                self.joins_reduced += 1
                return y
        # The root stamp with no offset is time zero, and every cost
        # coefficient is non-negative, so max(x, 0) == x.
        elif x[0] == 0 and x[1] == 0.0 and x[2] == 0.0 and x[3] == 0.0 \
                and x[4] == 0.0:
            self.joins_reduced += 1
            return y
        elif y[0] == 0 and y[1] == 0.0 and y[2] == 0.0 and y[3] == 0.0 \
                and y[4] == 0.0:
            self.joins_reduced += 1
            return x
        nid = len(self.pa)
        self.pa.append(x[0])
        self.pb.append(y[0])
        self.ea.append((x[1], x[2], x[3], x[4]))
        self.eb.append((y[1], y[2], y[3], y[4]))
        ref = x[5] if x[5] >= y[5] else y[5]
        return (nid, 0.0, 0.0, 0.0, 0.0, ref)


class _Group:
    """One contended resource's service queue, in reference order.

    ``ops`` rows are ``(arrival_stamp, cost_row, node_id)``: the arrival
    stamp the booking joined against the resource clock, the affine
    service-cost row ``(c0, bytes, hops, traversals)``, and the
    materialized join node whose value is the start of service.
    ``seed`` is the resource's initial clock (the root stamp for
    hardware; a daemon's post-prologue stamp).  ``rigid`` groups keep
    their frozen order — a daemon block's body was not affine over the
    block start, so re-sorting could not re-price the chain.

    Queue joins are emitted *chainless* (both predecessor slots point
    at the arrival): the adaptive engine overrides the node with the
    served start every sweep, so a frozen edge to the previous service
    would only stretch the levelization — the intra-queue chains are
    what make fft's frozen program 1183 levels deep.  ``chain_preds``
    remembers each dropped resource-clock stamp so the frozen edge can
    be patched back in if the group later turns out rigid.
    """

    __slots__ = ("kind", "ops", "rigid", "seed", "chain_preds")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.ops: List[tuple] = []
        self.rigid = False
        self.seed = _ZERO
        self.chain_preds: List[tuple] = []


class _Proc:
    """Mutable compile-time state of one recorded process (stamp clocks)."""

    __slots__ = ("rank", "daemon", "root", "solo_cpu", "solo_send",
                 "started", "finished", "t", "pc", "segs", "prologue",
                 "blocks", "ready", "nserved")

    def __init__(self, rank, daemon, root, solo_cpu, solo_send, segs,
                 prologue, blocks) -> None:
        self.rank = rank
        self.daemon = daemon
        self.root = root
        self.solo_cpu = solo_cpu
        self.solo_send = solo_send
        self.started = root
        self.finished = False
        self.t = _ZERO
        self.pc = 0
        self.segs = segs
        self.prologue = prologue
        self.blocks = blocks
        self.ready: List[tuple] = []
        self.nserved = 0


def compile_dag(dag: CommDag, topology: Optional[Topology] = None,
                adaptive: bool = False):
    """Compile ``dag`` into a :class:`~repro.replay.program.ReplayProgram`.

    ``topology`` supplies the fixed (local network, gateway, WAN shape)
    constants and the reference WAN point the contention orders are
    resolved at; it defaults to the recording default, the mid-grid
    :data:`~repro.whatif.record.REFERENCE_POINT` on the DAG's own
    cluster shape.  Raises :class:`CompileError` for timing-sensitive
    DAGs — the caller owns the fallback to full simulation.

    With ``adaptive=True`` the result is an :class:`~repro.replay.
    adaptive.AdaptiveProgram`: resource bookings are materialized into
    re-sortable queue groups (see the module docstring) for the
    Gauss-Seidel re-pricing engine.  The default output is unchanged.
    """
    from .program import ReplayProgram

    if dag.timing_sensitive:
        raise CompileError(
            "refusing to compile a timing-sensitive DAG: "
            + "; ".join(dag.sensitive_reasons))
    if topology is None:
        from ..experiments import grids
        from ..whatif.record import REFERENCE_POINT

        topology = grids.multi_cluster(
            *REFERENCE_POINT, clusters=len(dag.cluster_sizes),
            cluster_size=dag.cluster_sizes[0])
    if topology.cluster_sizes != dag.cluster_sizes:
        raise CompileError(
            f"topology shape {topology.cluster_sizes} does not match the "
            f"recorded shape {dag.cluster_sizes}")
    if topology.wan_variability is not None:
        raise CompileError("cannot compile under WAN variability")

    # The segment/block/pin compilation is structural (no link
    # parameters); reuse the evaluator's rather than duplicating it.
    shape = Evaluator(dag)

    local_lat = topology.local.latency
    local_bw = topology.local.bandwidth
    local_send_ov = topology.local.send_overhead
    gw_service = topology.gateway_overhead
    ref_inv_bw = 1.0 / topology.wide.bandwidth
    ref_lat = topology.wide.latency

    (ch_src, ch_dst_cluster, ch_inter, ch_send_ov, ch_recv_ov,
     ch_hops) = shape._channel_tables(topology)
    n_ch = len(ch_src)

    circuit = _Circuit()
    join = circuit.join

    #: adaptive-mode queue groups, keyed by resource identity; None in
    #: the default frozen compile (all booking sites branch on this).
    groups: Optional[dict] = {} if adaptive else None

    def join_forced(x: tuple, y: tuple) -> tuple:
        """max(x, y) with the node always materialized — group nodes
        must exist even when a reduction would elide them, so the
        adaptive engine has a slot to override per iteration."""
        nid = len(circuit.pa)
        circuit.pa.append(x[0])
        circuit.pb.append(y[0])
        circuit.ea.append((x[1], x[2], x[3], x[4]))
        circuit.eb.append((y[1], y[2], y[3], y[4]))
        return (nid, 0.0, 0.0, 0.0, 0.0, x[5] if x[5] >= y[5] else y[5])

    def join_queue(g: "_Group", arrival: tuple, free: tuple) -> tuple:
        """A chainless queue join: the emitted node depends only on the
        arrival (both predecessor slots), so queue chains don't inflate
        the levelization; the reference clock still advances over the
        resource's ``free`` stamp, keeping the compile-time event order
        exact.  The dropped chain stamp is remembered for rigid
        patch-back."""
        nid = len(circuit.pa)
        circuit.pa.append(arrival[0])
        circuit.pb.append(arrival[0])
        row = (arrival[1], arrival[2], arrival[3], arrival[4])
        circuit.ea.append(row)
        circuit.eb.append(row)
        g.chain_preds.append((nid, free))
        ref = arrival[5] if arrival[5] >= free[5] else free[5]
        return (nid, 0.0, 0.0, 0.0, 0.0, ref)

    def make_rigid(g: "_Group") -> None:
        """Freeze a group: restore the chain edges its queue joins
        dropped (the adaptive engine will never override them)."""
        g.rigid = True
        for nid, free in g.chain_preds:
            circuit.pb[nid] = free[0]
            circuit.eb[nid] = (free[1], free[2], free[3], free[4])
        g.chain_preds.clear()

    def book(key: tuple, arrival: tuple, free: tuple, cost: tuple,
             ref_cost: float) -> tuple:
        """Adaptive booking: record one service in its queue group and
        return the end-of-service stamp (cost row over the join node)."""
        g = groups.get(key)
        if g is None:
            g = groups[key] = _Group(key[0])
        node = join_queue(g, arrival, free)
        g.ops.append((arrival, cost, node[0]))
        return (node[0], cost[0], cost[1], cost[2], cost[3],
                node[5] + ref_cost)

    def plus(s: tuple, c0: float) -> tuple:
        """Advance a stamp by a grid-constant cost."""
        return (s[0], s[1] + c0, s[2], s[3], s[4], s[5] + c0)

    def plus_wire(s: tuple, size: float) -> tuple:
        """Advance by one WAN wire transfer: size / wide_bw."""
        return (s[0], s[1], s[2] + size, s[3], s[4],
                s[5] + size * ref_inv_bw)

    def plus_prop(s: tuple) -> tuple:
        """Advance by one WAN propagation: wide_lat, plus one lossable
        data traversal (the loss model charges expected retransmission
        delay per WAN traversal)."""
        return (s[0], s[1], s[2], s[3] + 1.0, s[4] + 1.0, s[5] + ref_lat)

    # Resource clocks are stamps; idle clocks are the root stamp, which
    # join() elides entirely.
    n_ranks = sum(dag.cluster_sizes)
    n_clusters = topology.num_clusters
    cpu_free = [_ZERO] * n_ranks
    nic_free = [_ZERO] * n_ranks
    gw_free = [_ZERO] * n_clusters
    gwout_free = [_ZERO] * n_clusters
    wan_free = {pair: _ZERO for pair in topology.wan_pairs()}

    procs = [_Proc(*c) for c in shape._compiled]
    proc_index = {id(p): i for i, p in enumerate(procs)}
    pin_off = shape._pin_off
    ch_next = [0] * n_ch
    dlv_at: List[tuple] = [_ZERO] * shape._n_pins
    pin_waiter: List = [None] * shape._n_pins
    wan_bytes = 0.0
    wan_traversals = 0
    for proc in procs:
        if proc.daemon:
            for bi, (_cid, _k, pid, _body) in enumerate(proc.blocks):
                pin_waiter[pid] = (proc, bi)

    # Heap events: (ref_time, seq, kind, channel(s), size, hop, stamp).
    heap: List[tuple] = []
    seq = 0
    runnable: List[Tuple[_Proc, tuple]] = [(p, _ZERO) for p in procs
                                           if p.root]
    runnable_append = runnable.append
    pop = heapq.heappop
    push = heapq.heappush

    def deliver(cid: int, at: tuple) -> None:
        k = ch_next[cid]
        ch_next[cid] = k + 1
        pid = pin_off[cid] + k
        dlv_at[pid] = at
        entry = pin_waiter[pid]
        if entry is not None:
            proc, bi = entry
            if bi >= 0:
                push(proc.ready, (at[5], bi, at))
                if proc.started:
                    runnable_append((proc, at))
            else:
                t = join(proc.t, at)
                t = plus(t, ch_recv_ov[cid])
                if not proc.solo_cpu:
                    run_main(proc, t, True)
                    return
                segs = proc.segs
                i = proc.pc
                n = len(segs)
                while True:
                    fdur = segs[i][4]
                    if fdur < 0.0:
                        proc.pc = i
                        run_main(proc, t, True)
                        return
                    t = plus(t, fdur)
                    i += 1
                    if i == n:
                        proc.pc = i
                        proc.t = t
                        proc.finished = True
                        return
                    seg = segs[i]
                    scid = seg[0]
                    if seg[1] < ch_next[scid]:
                        t = join(t, dlv_at[seg[2]])
                        t = plus(t, ch_recv_ov[scid])
                    else:
                        proc.pc = i
                        proc.t = t
                        pin_waiter[seg[2]] = (proc, -1)
                        return

    def book_nic(rank: int, t: tuple, size: float) -> tuple:
        """Reserve the sender NIC: returns the transfer-end stamp."""
        if groups is None:
            end = plus(join(t, nic_free[rank]), size / local_bw)
        else:
            end = book(("nic", rank), t, nic_free[rank],
                       (size / local_bw, 0.0, 0.0, 0.0), size / local_bw)
        nic_free[rank] = end
        return end

    def emit_send(t: tuple, scid: int, size: float, rank: int,
                  solo_send: bool) -> None:
        nonlocal seq
        if solo_send:
            end = book_nic(rank, t, size)
            if ch_inter[scid]:
                arrive = plus(end, local_lat)
                push(heap, (arrive[5], seq, _EV_GW, scid, size, 0, arrive))
            else:
                deliver(scid, plus(end, local_lat))
        else:
            push(heap, (t[5], seq, _EV_SEND, scid, size, 0, t))
        seq += 1

    def emit_mcast(t: tuple, cids: tuple, size: float, rank: int,
                   solo_send: bool) -> None:
        nonlocal seq
        if solo_send:
            end = book_nic(rank, t, size)
            arrive_at = plus(end, local_lat)
            for c in cids:
                deliver(c, arrive_at)
        else:
            push(heap, (t[5], seq, _EV_MCAST, cids, size, 0, t))
        seq += 1

    def run_body(proc: _Proc, t: tuple, body) -> tuple:
        """Execute the non-receive ops of one segment/block."""
        rank = proc.rank
        for op in body:
            code = op[0]
            if code == OP_COMPUTE:
                if proc.solo_cpu:
                    t = plus(t, op[1])
                elif groups is None:
                    t = plus(join(t, cpu_free[rank]), op[1])
                    cpu_free[rank] = t
                else:
                    t = book(("cpu", rank), t, cpu_free[rank],
                             (op[1], 0.0, 0.0, 0.0), op[1])
                    cpu_free[rank] = t
            elif code == OP_SEND:
                scid = op[1]
                t = plus(t, ch_send_ov[scid])
                emit_send(t, scid, op[2], rank, proc.solo_send)
            elif code == OP_MCAST:
                t = plus(t, local_send_ov)
                emit_mcast(t, op[1], op[2], rank, proc.solo_send)
            else:  # OP_SPAWN
                child_idx = op[1]
                if child_idx >= 0:
                    child = procs[child_idx]
                    if not child.started:
                        child.started = True
                        runnable_append((child, t))
        return t

    def run_main(proc: _Proc, t: tuple, skip: bool) -> None:
        segs = proc.segs
        i = proc.pc
        n = len(segs)
        while i < n:
            cid, k, pid, body, _fdur = segs[i]
            if skip:
                skip = False
            elif cid >= 0:
                if k < ch_next[cid]:
                    t = join(t, dlv_at[pid])
                    t = plus(t, ch_recv_ov[cid])
                else:
                    proc.pc = i
                    proc.t = t
                    pin_waiter[pid] = (proc, -1)
                    return
            t = run_body(proc, t, body)
            i += 1
        proc.pc = i
        proc.t = t
        proc.finished = True

    def run_daemon(proc: _Proc, now: tuple) -> None:
        if groups is not None:
            run_daemon_adaptive(proc, now)
            return
        t = join(proc.t, now)
        ready = proc.ready
        blocks = proc.blocks
        body = proc.prologue
        at: Optional[tuple] = None
        while True:
            if body is None:
                if not ready:
                    break
                _ref, bi, at = pop(ready)
                cid, _k, _pid, body = blocks[bi]
                t = join(t, at)
                t = plus(t, ch_recv_ov[cid])
                proc.nserved += 1
            t = run_body(proc, t, body)
            body = None
        proc.prologue = None
        proc.t = t
        if proc.nserved == len(blocks):
            proc.finished = True

    def run_daemon_adaptive(proc: _Proc, now: tuple) -> None:
        """Daemon service as a queue group: each handler block is one
        op whose arrival is the delivery stamp and whose cost is the
        recv overhead plus the body duration.  The wake-time join of
        the frozen path is dropped (see the module docstring); the
        post-prologue stamp seeds the group's chain instead."""
        key = ("daemon", proc_index[id(proc)])
        g = groups.get(key)
        if g is None:
            g = groups[key] = _Group("daemon")
        if proc.prologue is not None:
            if proc.root and not proc.prologue:
                chain = _ZERO  # unconstrained: first block starts at its
                # own arrival (a root daemon with no prologue work)
            else:
                chain = run_body(proc, join(proc.t, now), proc.prologue)
            proc.prologue = None
            g.seed = chain
            proc.t = chain
        t = proc.t
        ready = proc.ready
        blocks = proc.blocks
        while ready:
            _ref, bi, at = pop(ready)
            cid, _k, _pid, body = blocks[bi]
            if g.rigid:
                node = join_forced(at, t)   # start of service
            else:
                node = join_queue(g, at, t)
            tt = plus((node[0], 0.0, 0.0, 0.0, 0.0, node[5]),
                      ch_recv_ov[cid])
            tt = run_body(proc, tt, body)
            if tt[0] != node[0] and not g.rigid:
                # The body joined a shared clock: its duration is not an
                # affine offset over the block start, so this queue
                # cannot be re-served from a cost row.  Keep the frozen
                # order (the shared clock has its own adaptive group)
                # and patch the chain edges back in.
                make_rigid(g)
            g.ops.append((at, (tt[1], tt[2], tt[3], tt[4]), node[0]))
            t = tt
            proc.nserved += 1
        proc.t = t
        if proc.nserved == len(blocks):
            proc.finished = True

    # Drain loop — identical control flow to Evaluator.evaluate.
    while runnable or heap:
        while runnable:
            proc, at = runnable.pop()
            if proc.finished:
                continue
            if proc.daemon:
                if proc.ready or proc.prologue is not None:
                    run_daemon(proc, at)
            else:
                run_main(proc, join(proc.t, at), False)
        if not heap:
            break
        _at_ref, _s, kind, cid, size, hop_idx, stamp = pop(heap)
        if kind == _EV_SEND:
            end = book_nic(ch_src[cid], stamp, size)
            if ch_inter[cid]:
                arrive = plus(end, local_lat)
                push(heap, (arrive[5], seq, _EV_GW, cid, size, 0, arrive))
                seq += 1
            else:
                deliver(cid, plus(end, local_lat))
        elif kind == _EV_GW:
            hops = ch_hops[cid]
            here, nxt = hops[hop_idx]
            if groups is None:
                ready_at = plus(join(stamp, gw_free[here]), gw_service)
                gw_free[here] = ready_at
                wend = plus_wire(join(ready_at, wan_free[(here, nxt)]), size)
            else:
                ready_at = book(("gw", here), stamp, gw_free[here],
                                (gw_service, 0.0, 0.0, 0.0), gw_service)
                gw_free[here] = ready_at
                wend = book(("wan", here, nxt), ready_at,
                            wan_free[(here, nxt)], (0.0, size, 0.0, 0.0),
                            size * ref_inv_bw)
            wan_free[(here, nxt)] = wend
            wan_bytes += size
            wan_traversals += 1
            arrive = plus_prop(wend)
            next_kind = _EV_GW if hop_idx + 1 < len(hops) else _EV_ARRIVE
            push(heap, (arrive[5], seq, next_kind, cid, size, hop_idx + 1,
                        arrive))
            seq += 1
        elif kind == _EV_ARRIVE:
            dst_cluster = ch_dst_cluster[cid]
            if groups is None:
                ready_at = plus(join(stamp, gw_free[dst_cluster]), gw_service)
                gw_free[dst_cluster] = ready_at
                oend = plus(join(ready_at, gwout_free[dst_cluster]),
                            size / local_bw)
            else:
                ready_at = book(("gw", dst_cluster), stamp,
                                gw_free[dst_cluster],
                                (gw_service, 0.0, 0.0, 0.0), gw_service)
                gw_free[dst_cluster] = ready_at
                oend = book(("gwout", dst_cluster), ready_at,
                            gwout_free[dst_cluster],
                            (size / local_bw, 0.0, 0.0, 0.0),
                            size / local_bw)
            gwout_free[dst_cluster] = oend
            deliver(cid, plus(oend, local_lat))
        else:  # _EV_MCAST
            end = book_nic(ch_src[cid[0]], stamp, size)
            arrive_at = plus(end, local_lat)
            for c in cid:
                deliver(c, arrive_at)

    unfinished = [p for p in procs
                  if p.started and not p.finished and not p.daemon]
    if unfinished:
        names = [dag.procs[procs.index(p)].name for p in unfinished[:5]]
        raise CompileError(
            f"compile replay stalled with {len(unfinished)} main processes "
            f"blocked (first: {names}); the recording is inconsistent")
    finish = [p.t for p in procs if p.root and not p.daemon]
    if not finish:
        raise CompileError("recording contains no main processes")

    meta = {
        "cluster_sizes": list(dag.cluster_sizes),
        "wan_shape": topology.wan_shape,
        "wan_hub": topology.wan_hub,
        "reference": [topology.wide.bandwidth, topology.wide.latency],
        "local_spec": [topology.local.latency, topology.local.bandwidth,
                       topology.local.send_overhead,
                       topology.local.recv_overhead],
        "wide_overheads": [topology.wide.send_overhead,
                           topology.wide.recv_overhead],
        "gateway_overhead_s": gw_service,
        "wan_bytes": wan_bytes,
        "wan_traversals": wan_traversals,
        "joins_reduced": circuit.joins_reduced,
        "num_ops": dag.num_ops,
        "num_messages": dag.num_messages,
    }
    finish_rows = [(s[0], s[1], s[2], s[3], s[4]) for s in finish]
    if groups is not None:
        from .adaptive import AdaptiveProgram

        # Rigid queues keep their frozen order by construction (their
        # chain edges were patched back).  Singleton hardware queues
        # are exact without serving (a chainless join over a root seed
        # is just the arrival), but a singleton daemon queue still
        # needs its seed constraint served in.
        glist = [(g.kind, g.seed, g.ops) for g in groups.values()
                 if not g.rigid and
                 (len(g.ops) > 1 or (g.ops and g.seed is not _ZERO))]
        meta["adaptive_groups"] = len(glist)
        meta["adaptive_group_ops"] = sum(len(ops) for _, _, ops in glist)
        meta["adaptive_rigid_groups"] = sum(
            1 for g in groups.values() if g.rigid)
        return AdaptiveProgram.from_circuit_groups(
            circuit.pa, circuit.pb, circuit.ea, circuit.eb,
            finish_rows, meta, glist)
    return ReplayProgram.from_circuit(
        circuit.pa, circuit.pb, circuit.ea, circuit.eb, finish_rows, meta)


def compile_recording(recording: Recording):
    """Compile a :class:`~repro.whatif.record.Recording` on its own
    recorded topology (the usual entry point)."""
    return compile_dag(recording.dag, recording.topology)
