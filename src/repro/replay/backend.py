"""The replay backend: record once, compile once, re-price everywhere.

:class:`ReplayBackend` packages the full pipeline for one
``(app, variant, scale, seed)``:

1. **Record** the communication DAG at the reference point
   (:func:`~repro.whatif.record.record_app`), exactly like the what-if
   predict path.
2. **Compile or load** the :class:`~repro.replay.program.ReplayProgram`.
   Compiled programs are content-addressed into
   :class:`~repro.experiments.cache.SimCache` (key includes the recorded
   topology fingerprint and the program format version), so a service
   cold start pays a millisecond JSON load instead of a recording run.
3. **Probe** the program against the reference
   :class:`~repro.whatif.evaluate.Evaluator` at the grid corners.  The
   compiled program freezes every contention order (resource queues,
   daemon service) at the reference point; the probe measures how much
   that frozen order matters at the grid extremes.  DAGs whose orders are
   stable (asp, barnes: sub-0.3%% everywhere) price vectorized; DAGs
   whose orders flip (fft's pipelined transpose rounds, water's daemon
   scheduling) are flagged *order-unstable* and the caller downgrades to
   the per-point predict path — still analytic, just interpreted.
4. **Converge** (order-unstable programs only): compile the adaptive
   variant (:func:`compile_dag` with ``adaptive=True``) and run the
   :class:`~repro.replay.adaptive.AdaptiveProgram` fixed-point engine at
   the same corners.  Programs whose re-sorted orders converge (fft)
   price vectorized-adaptively; programs whose value feedback is too
   deep to fix within the iteration cap (water) downgrade per the old
   ladder.
5. **Price** whole grids in one vectorized pass, including the
   loss-rate axis the interpreted paths do not offer.

The fallback ladder, each rung guarded by the next: vectorized replay →
(order-unstable) → vectorized-adaptive → (unconverged at the corners) →
predict path → (timing-sensitive, faults, corner validation failure) →
full simulation.  :class:`~repro.experiments.runner.Sweeper` walks the
ladder automatically for ``backend="replay"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..experiments import grids
from ..experiments.cache import SimCache
from ..network.topology import Topology
from ..whatif.evaluate import Evaluator
from ..whatif.record import Recording, record_app
from .adaptive import ADAPTIVE_FORMAT, DEFAULT_MAX_ITERS, AdaptiveProgram
from .compile import CompileError, compile_dag
from .program import PROGRAM_FORMAT, ReplayProgram

#: Default maximum |program - evaluator| / evaluator runtime disagreement
#: at a probe point before the DAG is declared order-unstable.  The gap
#: between stable and unstable DAGs is wide (<0.3% vs >10%), so the
#: exact threshold is not delicate.
PROBE_REL_TOL = 0.02


@dataclass
class ProbePoint:
    """Program vs evaluator at one grid point (both analytic)."""

    bandwidth_mbyte_s: float
    latency_ms: float
    replay_runtime: float
    evaluator_runtime: float

    @property
    def rel_error(self) -> float:
        return abs(self.replay_runtime - self.evaluator_runtime) \
            / self.evaluator_runtime


@dataclass
class ProbeReport:
    """Stability verdict for one compiled program.

    This is *not* the ground-truth validation (that stays
    :func:`repro.whatif.validate.validate`, against full simulation): it
    isolates the one error the compilation step adds on top of the
    evaluator — frozen contention order — so the backend can downgrade
    to the interpreted evaluator precisely when compilation, not
    recording, is what broke.
    """

    rel_tol: float
    points: List[ProbePoint] = field(default_factory=list)

    @property
    def max_rel_error(self) -> float:
        return max((p.rel_error for p in self.points), default=0.0)

    @property
    def stable(self) -> bool:
        return self.max_rel_error <= self.rel_tol

    def summary(self) -> str:
        if self.stable:
            return (f"order-stable: max frozen-order error "
                    f"{self.max_rel_error:.2%} over {len(self.points)} "
                    f"probe points (tolerance {self.rel_tol:.0%})")
        return (f"order-unstable: frozen-order error "
                f"{self.max_rel_error:.2%} exceeds {self.rel_tol:.0%} "
                f"at the grid corners; trying the adaptive engine")


@dataclass
class ConvergencePoint:
    """Adaptive engine vs evaluator at one grid corner."""

    bandwidth_mbyte_s: float
    latency_ms: float
    adaptive_runtime: float
    evaluator_runtime: float
    converged: bool
    iterations: int

    @property
    def rel_error(self) -> float:
        return abs(self.adaptive_runtime - self.evaluator_runtime) \
            / self.evaluator_runtime


@dataclass
class ConvergenceReport:
    """Outcome of the adaptive corner check for one compiled program.

    The probe asked "does the frozen order hold?"; this asks the next
    question down the ladder: "does the re-sorting iteration *find* the
    right order?".  At a converged point the engine's fixed point is the
    serve-in-arrival-order schedule, so its price must agree with the
    interpreted evaluator to float noise; a converged corner whose
    price still disagrees beyond ``rel_tol`` means the recording itself
    (not the iteration) is wrong there, and also fails the check.
    """

    rel_tol: float
    max_iters: int
    points: List[ConvergencePoint] = field(default_factory=list)

    @property
    def max_rel_error(self) -> float:
        return max((p.rel_error for p in self.points), default=0.0)

    @property
    def max_iterations(self) -> int:
        return max((p.iterations for p in self.points), default=0)

    @property
    def all_converged(self) -> bool:
        return all(p.converged for p in self.points)

    @property
    def converged(self) -> bool:
        """The rung verdict: every corner converged *and* agrees with
        the evaluator within tolerance."""
        return self.all_converged and self.max_rel_error <= self.rel_tol

    def summary(self) -> str:
        if self.converged:
            return (f"adaptive-converged: all {len(self.points)} corners "
                    f"fixed within {self.max_iterations} iterations, max "
                    f"error {self.max_rel_error:.2%} vs the evaluator")
        if not self.all_converged:
            bad = sum(1 for p in self.points if not p.converged)
            return (f"adaptive-unconverged: {bad}/{len(self.points)} "
                    f"corners still changing after {self.max_iters} "
                    f"iterations; downgrading to the per-point evaluator")
        return (f"adaptive-diverged: corners converged but max error "
                f"{self.max_rel_error:.2%} exceeds {self.rel_tol:.0%} "
                f"vs the evaluator; downgrading to the per-point evaluator")


class ReplayBackend:
    """Compile-and-price harness for one recorded application."""

    def __init__(self, recording: Recording,
                 cache: Optional[SimCache] = None,
                 rel_tol: float = PROBE_REL_TOL) -> None:
        self.recording = recording
        self.cache = cache
        self.rel_tol = rel_tol
        self.program: Optional[ReplayProgram] = None
        self.from_cache = False
        #: the adaptive-mode compilation, kept separate from ``program``:
        #: its base arrays are *chainless* (queue joins carry no frozen
        #: service chain), so its frozen sweep prices a no-waiting
        #: relaxation — only the iterated entry points may be used.
        self.adaptive_program: Optional[AdaptiveProgram] = None
        self.adaptive_from_cache = False
        #: host-seconds per pipeline stage, for reports and the serve
        #: job results (record_s is the recording's own wall time).
        self.timings: Dict[str, float] = {"record_s": recording.wall_time}
        self._evaluator: Optional[Evaluator] = None
        self._probe: Optional[ProbeReport] = None
        self._convergence: Optional[ConvergenceReport] = None
        self._static_hint: Optional[str] = None
        self._static_hint_known = False

    # ------------------------------------------------------------------
    @classmethod
    def for_app(cls, app: str, variant: str, scale: str = "bench",
                seed: int = 0, cache: Optional[SimCache] = None,
                rel_tol: float = PROBE_REL_TOL) -> "ReplayBackend":
        """Record ``app``/``variant`` at the reference point and wrap it."""
        recording = record_app(app, variant, scale=scale, seed=seed)
        return cls(recording, cache=cache, rel_tol=rel_tol)

    # ------------------------------------------------------------------
    @property
    def evaluator(self) -> Evaluator:
        """The interpreted evaluator for the same recording (the probe
        arbiter, and the downgrade target when orders are unstable)."""
        if self._evaluator is None:
            self._evaluator = Evaluator(self.recording.dag)
        return self._evaluator

    @property
    def static_hint(self) -> Optional[str]:
        """Order-stability label from the static protocol analyzer.

        The recording itself carries the pre-recording hint when
        :func:`~repro.whatif.record.record_app` computed one; otherwise
        it is looked up here (memoized).  Advisory only — the runtime
        probe remains the arbiter of the fallback ladder — but reports
        carry it so hint/probe disagreements are visible.
        """
        if self._static_hint_known:
            return self._static_hint
        hint = getattr(self.recording, "static_label", None)
        if hint is None:
            try:
                from ..lint.proto.report import order_stability_label
                hint = order_stability_label(self.recording.app,
                                             self.recording.variant)
            except Exception:
                hint = None
        self._static_hint = hint
        self._static_hint_known = True
        return hint

    def hint_matches_probe(self) -> Optional[bool]:
        """Did the measured probe agree with the static hint?

        ``None`` when no probe has run yet, no hint is available, or
        the hint is ``timing-sensitive`` (the ladder short-circuits to
        simulation before probing those).

        The hint forecasts the *ladder rung*, not the fixed point: an
        ``unstable`` label predicts that the frozen order drifts and the
        program needs per-point re-sorting — exactly the
        vectorized-adaptive rung.  So when the adaptive convergence
        check has run (it only runs on probe-unstable programs) and the
        engine converged, an ``unstable`` hint is a *match*, never a
        failure — even though the converged corner prices now agree
        with the evaluator and a naive re-probe would read "stable".
        """
        hint = self.static_hint
        if hint not in ("stable", "unstable"):
            return None
        if (hint == "unstable" and self._convergence is not None
                and self._convergence.converged):
            return True
        if self._probe is None:
            return None
        return self._probe.stable == (hint == "stable")

    def topology_for(self, bandwidth_mbyte_s: float,
                     latency_ms: float) -> Topology:
        """A grid-point topology on the recorded cluster shape."""
        sizes = self.recording.dag.cluster_sizes
        return grids.multi_cluster(bandwidth_mbyte_s, latency_ms,
                                   clusters=len(sizes),
                                   cluster_size=sizes[0])

    def cache_key(self) -> str:
        """Content-addressed :class:`SimCache` key of the compiled program.

        Everything the program depends on is in the key: the recording
        identity (app, variant, scale, seed), the recorded topology
        fingerprint (shape, link constants, and the reference point the
        orders were frozen at), and the program format version.
        """
        rec = self.recording
        return (f"replay-{rec.app}-{rec.variant}-{rec.scale}"
                f"-r{rec.topology.num_ranks}-s{rec.seed}"
                f"-{rec.topology.fingerprint()}-f{PROGRAM_FORMAT}")

    def adaptive_cache_key(self) -> str:
        """Cache key of the adaptive compilation: the frozen key plus
        the adaptive format version (group-array layout + iteration
        semantics)."""
        return f"{self.cache_key()}-a{ADAPTIVE_FORMAT}"

    # ------------------------------------------------------------------
    def prepare(self) -> ReplayProgram:
        """Load the compiled program from cache, or compile and store it.

        Raises :class:`~repro.replay.compile.CompileError` for
        timing-sensitive recordings — callers decide the fallback.
        """
        if self.program is not None:
            return self.program
        key = self.cache_key()
        if self.cache is not None:
            t0 = time.perf_counter()  # lint: ignore[wall-clock]
            entry = self.cache.lookup(key)
            if entry is not None and "program" in entry:
                try:
                    self.program = ReplayProgram.from_record(entry["program"])
                except ValueError:
                    self.program = None   # stale format: recompile below
                if self.program is not None:
                    self.from_cache = True
                    self.timings["load_s"] = \
                        time.perf_counter() - t0  # lint: ignore[wall-clock]
                    return self.program
        t0 = time.perf_counter()  # lint: ignore[wall-clock]
        self.program = compile_dag(self.recording.dag, self.recording.topology)
        self.timings["compile_s"] = \
            time.perf_counter() - t0  # lint: ignore[wall-clock]
        if self.cache is not None:
            rec = self.recording
            self.cache.store(key, {
                "kind": "replay",
                "app": rec.app,
                "variant": rec.variant,
                "scale": rec.scale,
                "seed": rec.seed,
                "ranks": rec.topology.num_ranks,
                "fingerprint": rec.topology.fingerprint(),
                "stats": self.program.stats(),
                "program": self.program.to_record(),
            })
        return self.program

    def prepare_adaptive(self) -> AdaptiveProgram:
        """Load or compile the adaptive (queue-group) program.

        Kept separate from :meth:`prepare`'s frozen program: the
        adaptive compilation is only needed once the probe has declared
        the frozen orders unstable, and its chainless base arrays make
        it unusable for frozen pricing.
        """
        if self.adaptive_program is not None:
            return self.adaptive_program
        key = self.adaptive_cache_key()
        if self.cache is not None:
            t0 = time.perf_counter()  # lint: ignore[wall-clock]
            entry = self.cache.lookup(key)
            if entry is not None and "program" in entry:
                try:
                    self.adaptive_program = \
                        AdaptiveProgram.from_record(entry["program"])
                except ValueError:
                    self.adaptive_program = None  # stale format: recompile
                if self.adaptive_program is not None:
                    self.adaptive_from_cache = True
                    self.timings["adaptive_load_s"] = \
                        time.perf_counter() - t0  # lint: ignore[wall-clock]
                    return self.adaptive_program
        t0 = time.perf_counter()  # lint: ignore[wall-clock]
        self.adaptive_program = compile_dag(
            self.recording.dag, self.recording.topology, adaptive=True)
        self.timings["adaptive_compile_s"] = \
            time.perf_counter() - t0  # lint: ignore[wall-clock]
        if self.cache is not None:
            rec = self.recording
            self.cache.store(key, {
                "kind": "replay-adaptive",
                "app": rec.app,
                "variant": rec.variant,
                "scale": rec.scale,
                "seed": rec.seed,
                "ranks": rec.topology.num_ranks,
                "fingerprint": rec.topology.fingerprint(),
                "stats": self.adaptive_program.stats(),
                "program": self.adaptive_program.to_record(),
            })
        return self.adaptive_program

    # ------------------------------------------------------------------
    def probe(self, bandwidths: Sequence[float] = grids.BANDWIDTHS_MBYTE_S,
              latencies: Sequence[float] = grids.LATENCIES_MS) -> ProbeReport:
        """Frozen-order stability check at the grid corners (memoized)."""
        if self._probe is not None:
            return self._probe
        from ..whatif.validate import corner_points

        program = self.prepare()
        t0 = time.perf_counter()  # lint: ignore[wall-clock]
        points = corner_points(bandwidths, latencies)
        priced = program.price_points(points)
        report = ProbeReport(rel_tol=self.rel_tol)
        for (bw, lat), replayed in zip(points, priced):
            evaluated = self.evaluator.evaluate(self.topology_for(bw, lat))
            report.points.append(ProbePoint(
                bandwidth_mbyte_s=bw, latency_ms=lat,
                replay_runtime=float(replayed),
                evaluator_runtime=evaluated))
        self.timings["probe_s"] = \
            time.perf_counter() - t0  # lint: ignore[wall-clock]
        self._probe = report
        return report

    def convergence_check(
            self, bandwidths: Sequence[float] = grids.BANDWIDTHS_MBYTE_S,
            latencies: Sequence[float] = grids.LATENCIES_MS,
            max_iters: int = DEFAULT_MAX_ITERS) -> ConvergenceReport:
        """Adaptive fixed-point check at the grid corners (memoized).

        This is the probe's analogue one rung down the ladder: run the
        re-sorting engine at the corners and compare its *converged*
        prices against the interpreted evaluator.  Corners are the
        natural check points — they bracket the grid's order churn, and
        a corner that converges bounds the iteration budget the full
        grid will need.
        """
        if self._convergence is not None:
            return self._convergence
        from ..whatif.validate import corner_points

        program = self.prepare_adaptive()
        t0 = time.perf_counter()  # lint: ignore[wall-clock]
        points = corner_points(bandwidths, latencies)
        result = program.price_points_adaptive(points, max_iters=max_iters)
        report = ConvergenceReport(rel_tol=self.rel_tol,
                                   max_iters=max_iters)
        for i, (bw, lat) in enumerate(points):
            evaluated = self.evaluator.evaluate(self.topology_for(bw, lat))
            report.points.append(ConvergencePoint(
                bandwidth_mbyte_s=bw, latency_ms=lat,
                adaptive_runtime=float(result.runtimes[i]),
                evaluator_runtime=evaluated,
                converged=bool(result.converged[i]),
                iterations=int(result.iterations[i])))
        self.timings["convergence_s"] = \
            time.perf_counter() - t0  # lint: ignore[wall-clock]
        self._convergence = report
        return report

    # ------------------------------------------------------------------
    def price_grid(self, bandwidths: Sequence[float] = grids.BANDWIDTHS_MBYTE_S,
                   latencies: Sequence[float] = grids.LATENCIES_MS,
                   loss_rates: Optional[Sequence[float]] = None):
        """Vectorized runtimes for a whole grid; see
        :meth:`~repro.replay.program.ReplayProgram.price_grid`."""
        program = self.prepare()
        t0 = time.perf_counter()  # lint: ignore[wall-clock]
        out = program.price_grid(bandwidths, latencies, loss_rates)
        self.timings["price_s"] = \
            time.perf_counter() - t0  # lint: ignore[wall-clock]
        return out

    def price_grid_adaptive(
            self, bandwidths: Sequence[float] = grids.BANDWIDTHS_MBYTE_S,
            latencies: Sequence[float] = grids.LATENCIES_MS,
            loss_rates: Optional[Sequence[float]] = None,
            max_iters: int = DEFAULT_MAX_ITERS):
        """Adaptive runtimes + convergence flags for a whole grid; see
        :meth:`~repro.replay.adaptive.AdaptiveProgram.
        price_grid_adaptive`."""
        program = self.prepare_adaptive()
        t0 = time.perf_counter()  # lint: ignore[wall-clock]
        out = program.price_grid_adaptive(bandwidths, latencies, loss_rates,
                                          max_iters=max_iters)
        self.timings["adaptive_price_s"] = \
            time.perf_counter() - t0  # lint: ignore[wall-clock]
        return out

    def price(self, bandwidth_mbyte_s: float, latency_ms: float,
              loss_rate: float = 0.0) -> float:
        """Runtime at one grid point."""
        return self.prepare().price(
            self.topology_for(bandwidth_mbyte_s, latency_ms), loss_rate)


class _ProgramEvaluator:
    """Adapter presenting a :class:`ReplayProgram` through the
    ``evaluate(topology)`` surface :func:`repro.whatif.validate.validate`
    expects, so ground-truth corner validation is shared verbatim with
    the predict path."""

    def __init__(self, program: ReplayProgram) -> None:
        self._program = program

    def evaluate(self, topology: Topology) -> float:
        from ..whatif.evaluate import EvaluationError

        try:
            return self._program.price(topology)
        except ValueError as err:
            raise EvaluationError(str(err)) from err


class _AdaptiveEvaluator:
    """The same adapter for the adaptive engine, so the
    vectorized-adaptive rung shares ground-truth corner validation
    verbatim too.  An unconverged point is an evaluation *failure*
    (validate() then falls back), never a silently-wrong price."""

    def __init__(self, program: AdaptiveProgram,
                 max_iters: int = DEFAULT_MAX_ITERS) -> None:
        self._program = program
        self._max_iters = max_iters

    def evaluate(self, topology: Topology) -> float:
        from ..whatif.evaluate import EvaluationError

        try:
            runtime, converged, _iters = self._program.price_adaptive(
                topology, max_iters=self._max_iters)
        except ValueError as err:
            raise EvaluationError(str(err)) from err
        if not converged:
            raise EvaluationError(
                f"adaptive engine did not converge within "
                f"{self._max_iters} iterations at this point")
        return runtime


def replay_record(app: str, variant: str, scale: str, seed: int, mode: str,
                  program_stats: Optional[Dict[str, Any]] = None,
                  timings: Optional[Dict[str, float]] = None,
                  from_cache: bool = False,
                  probe_summary: Optional[str] = None,
                  validation_summary: Optional[str] = None,
                  static_hint: Optional[str] = None,
                  convergence_summary: Optional[str] = None,
                  meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build one ``replay`` report record (JSON-lines, obs substrate).

    ``mode`` is the rung of the fallback ladder that actually produced
    the grid: ``"replay"`` (vectorized), ``"vectorized-adaptive"``
    (order-unstable but the re-sorting engine converges), ``"predict"``
    (order-unstable and unconverged), or ``"simulate"``
    (timing-sensitive/faulty/invalid).
    """
    record: Dict[str, Any] = {
        "kind": "replay",
        "meta": dict(meta or {}),
        "app": app,
        "variant": variant,
        "scale": scale,
        "seed": seed,
        "replay": {
            "mode": mode,
            "from_cache": from_cache,
            "program": dict(program_stats or {}),
            "timings": dict(timings or {}),
        },
    }
    if probe_summary is not None:
        record["replay"]["probe"] = probe_summary
    if validation_summary is not None:
        record["replay"]["validation"] = validation_summary
    if static_hint is not None:
        record["replay"]["static_hint"] = static_hint
    if convergence_summary is not None:
        record["replay"]["convergence"] = convergence_summary
    return record
