"""repro — reproduction of Plaat et al., "Sensitivity of Parallel
Applications to Large Differences in Bandwidth and Latency in Two-Layer
Interconnects" (HPCA 1999).

The package layers:

- :mod:`repro.sim` — deterministic discrete-event kernel.
- :mod:`repro.network` — the two-layer (Myrinet/ATM) interconnect model.
- :mod:`repro.runtime` — Panda/Orca-like messaging and coordination.
- :mod:`repro.magpie` — flat vs. wide-area-optimized MPI collectives.
- :mod:`repro.apps` — the six applications, unoptimized and optimized.
- :mod:`repro.faults` — deterministic WAN fault injection + reliable transport.
- :mod:`repro.experiments` — harnesses regenerating every table/figure.
"""

__version__ = "1.0.0"

from .faults import FaultPlan, TransportConfig
from .network import Topology, das_topology, myrinet, single_cluster, wan
from .obs import (MetricsCollector, MetricsRegistry, PerfettoTrace, ProbeBus,
                  RunReporter)
from .runtime import Context, Machine, RunResult, TransportError, run_spmd
from .trace import Tracer, render_timeline

__all__ = [
    "FaultPlan",
    "TransportConfig",
    "TransportError",
    "Topology",
    "das_topology",
    "myrinet",
    "single_cluster",
    "wan",
    "Context",
    "Machine",
    "RunResult",
    "run_spmd",
    "Tracer",
    "render_timeline",
    "ProbeBus",
    "MetricsRegistry",
    "MetricsCollector",
    "PerfettoTrace",
    "RunReporter",
    "__version__",
]
