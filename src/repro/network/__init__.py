"""Two-layer interconnect model: link specs, topology, routing, stats."""

from .link import Link, LinkStats
from .linkspec import (
    MBYTE,
    MS,
    US,
    LinkSpec,
    das_wan_default,
    das_wan_production,
    myrinet,
    wan,
)
from .message import Message
from .router import Router
from .stats import TrafficStats
from .variability import LinkNoise, Variability
from .topology import Topology, das_topology, single_cluster

__all__ = [
    "Link",
    "LinkStats",
    "LinkSpec",
    "MBYTE",
    "MS",
    "US",
    "Message",
    "Router",
    "TrafficStats",
    "Variability",
    "LinkNoise",
    "Topology",
    "das_topology",
    "das_wan_default",
    "das_wan_production",
    "myrinet",
    "single_cluster",
    "wan",
]
