"""Static descriptions of link classes (Myrinet, ATM WAN).

All times are seconds; all bandwidths are bytes/second.  The defaults are
the application-level figures the paper reports for the DAS:

- Myrinet: 20 us one-way latency, 50 MByte/s bandwidth.
- ATM WAN: swept over 0.4–300 ms and 0.03–6.3 MByte/s (Figure 3 grid).
"""

from __future__ import annotations

from dataclasses import dataclass

MBYTE = 1_000_000.0
MS = 1e-3
US = 1e-6


@dataclass(frozen=True)
class LinkSpec:
    """Timing parameters of one class of link.

    ``send_overhead`` / ``recv_overhead`` are host CPU costs per message
    (the LogP ``o`` parameter); ``latency`` is the one-way wire latency
    (LogP ``L``); ``bandwidth`` caps the serialization rate (LogP ``g``
    expressed per byte).
    """

    name: str
    latency: float
    bandwidth: float
    send_overhead: float = 5e-6
    recv_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"negative latency {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"non-positive bandwidth {self.bandwidth}")
        if self.send_overhead < 0 or self.recv_overhead < 0:
            raise ValueError("negative overhead")

    def transfer_time(self, size: int) -> float:
        """Pure serialization time of ``size`` bytes on this link class."""
        return size / self.bandwidth

    def one_way_time(self, size: int) -> float:
        """Uncontended one-way time for a ``size``-byte message."""
        return self.latency + self.transfer_time(size)


def myrinet(
    latency: float = 20 * US,
    bandwidth: float = 50 * MBYTE,
    send_overhead: float = 5 * US,
    recv_overhead: float = 5 * US,
) -> LinkSpec:
    """The paper's intra-cluster network (application-level figures)."""
    return LinkSpec("myrinet", latency, bandwidth, send_overhead, recv_overhead)


def wan(
    latency_ms: float,
    bandwidth_mbyte_s: float,
    send_overhead: float = 100 * US,
    recv_overhead: float = 100 * US,
) -> LinkSpec:
    """An ATM/TCP wide-area link with the paper's knob units.

    The larger per-message overheads reflect the TCP/IP stack the DAS
    gateways used (versus user-level Fast Messages on Myrinet).
    """
    return LinkSpec(
        f"wan-{latency_ms}ms-{bandwidth_mbyte_s}MBs",
        latency_ms * MS,
        bandwidth_mbyte_s * MBYTE,
        send_overhead,
        recv_overhead,
    )


def das_wan_default() -> LinkSpec:
    """The real (unthrottled local OC3) DAS wide-area link: 0.28 ms / 14 MByte/s...

    ...at TCP application level; the dedicated PVCs ran at 0.55 MByte/s with
    1.25 ms one-way latency, which is what `das_wan_production` returns.
    """
    return wan(0.28, 14.0)


def das_wan_production() -> LinkSpec:
    """The 6 Mbit/s ATM PVCs of the production DAS (0.55 MByte/s TCP)."""
    return wan(1.25, 0.55)
