"""Traffic accounting for the two-layer interconnect.

Collects the quantities the paper reports: total traffic (Table 1),
inter-cluster volume and message rate per cluster (Figure 1), and the
raw material for the communication-time percentages of Figure 4.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class LayerCounters:
    """Message/byte tally, slotted — updated once per message."""

    __slots__ = ("messages", "bytes")

    def __init__(self, messages: int = 0, bytes: int = 0) -> None:
        self.messages = messages
        self.bytes = bytes

    def record(self, size: int) -> None:
        self.messages += 1
        self.bytes += size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LayerCounters(messages={self.messages}, bytes={self.bytes})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LayerCounters):
            return NotImplemented
        return self.messages == other.messages and self.bytes == other.bytes


class TrafficStats:
    """Per-run interconnect traffic accounting.

    Subscribes to the probe bus's ``traffic_intra``/``traffic_inter``
    topics (:class:`~repro.runtime.machine.Machine` attaches its stats
    automatically); the ``record_*`` methods remain callable directly.
    """

    def __init__(self, num_clusters: int) -> None:
        self.num_clusters = num_clusters
        self.intra = LayerCounters()
        self.inter = LayerCounters()
        # Outbound inter-cluster traffic per source cluster.
        self.inter_out: List[LayerCounters] = [LayerCounters() for _ in range(num_clusters)]
        # Traffic matrix between cluster pairs (src_cluster, dst_cluster).
        self.pair: Dict[Tuple[int, int], LayerCounters] = {}
        self.start_time = 0.0
        self.end_time = 0.0
        # Fault-injection / reliable-transport counters.  Written directly
        # by the injector and transport (never on the fault-free path) so
        # attaching this object to a bus costs nothing extra; summary()
        # only reports them when nonzero, keeping clean-run summaries —
        # and the golden fingerprints built from them — byte-identical.
        self.fault_drops = 0
        self.retransmits = 0
        self.acks = 0
        self.dup_data_drops = 0

    # ------------------------------------------------------------------
    def record_intra(self, size: int) -> None:
        self.intra.record(size)

    def record_inter(self, src_cluster: int, dst_cluster: int, size: int) -> None:
        self.inter.record(size)
        self.inter_out[src_cluster].record(size)
        key = (src_cluster, dst_cluster)
        counters = self.pair.get(key)
        if counters is None:
            counters = self.pair[key] = LayerCounters()
        counters.record(size)

    # Probe-bus subscriber aliases (topics "traffic_intra"/"traffic_inter").
    on_traffic_intra = record_intra
    on_traffic_inter = record_inter

    def mark_start(self, t: float) -> None:
        """Exclude start-up phases, as the paper does."""
        self.start_time = t

    def mark_end(self, t: float) -> None:
        self.end_time = t

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return max(self.end_time - self.start_time, 0.0)

    @property
    def total_messages(self) -> int:
        return self.intra.messages + self.inter.messages

    @property
    def total_bytes(self) -> int:
        return self.intra.bytes + self.inter.bytes

    def total_mbyte_per_s(self) -> float:
        """Table 1's "Total Traffic" column (MByte/s over the whole run)."""
        if self.duration == 0:
            return 0.0
        return self.total_bytes / 1e6 / self.duration

    def inter_mbyte_per_s_per_cluster(self) -> float:
        """Figure 1's y-axis: mean inter-cluster MByte/s per source cluster."""
        if self.duration == 0 or self.num_clusters == 0:
            return 0.0
        return self.inter.bytes / 1e6 / self.duration / self.num_clusters

    def inter_messages_per_s_per_cluster(self) -> float:
        """Figure 1's x-axis: mean inter-cluster messages/s per source cluster."""
        if self.duration == 0 or self.num_clusters == 0:
            return 0.0
        return self.inter.messages / self.duration / self.num_clusters

    def pair_rows(self) -> List[Dict[str, float]]:
        """The inter-cluster traffic matrix as CSV-ready rows."""
        return [
            {
                "src_cluster": src,
                "dst_cluster": dst,
                "messages": counters.messages,
                "mbytes": counters.bytes / 1e6,
            }
            for (src, dst), counters in sorted(self.pair.items())
        ]

    def summary(self) -> Dict[str, object]:
        out = self._base_summary()
        if (self.fault_drops or self.retransmits or self.acks
                or self.dup_data_drops):
            out["faults"] = {
                "dropped_messages": self.fault_drops,
                "retransmits": self.retransmits,
                "acks": self.acks,
                "duplicates_dropped": self.dup_data_drops,
            }
        return out

    def _base_summary(self) -> Dict[str, object]:
        return {
            "duration_s": self.duration,
            "intra_messages": self.intra.messages,
            "intra_mbytes": self.intra.bytes / 1e6,
            "inter_messages": self.inter.messages,
            "inter_mbytes": self.inter.bytes / 1e6,
            "total_mbyte_per_s": self.total_mbyte_per_s(),
            "inter_mbyte_per_s_per_cluster": self.inter_mbyte_per_s_per_cluster(),
            "inter_messages_per_s_per_cluster": self.inter_messages_per_s_per_cluster(),
            "pair": {
                f"{src}->{dst}": {
                    "messages": counters.messages,
                    "mbytes": counters.bytes / 1e6,
                }
                for (src, dst), counters in sorted(self.pair.items())
            },
        }
