"""Two-layer cluster-of-clusters topology.

A :class:`Topology` is a list of cluster sizes plus the link classes of
the two layers.  Ranks are numbered cluster-major: with clusters of sizes
``[8, 8, 8, 8]``, ranks 0–7 are cluster 0, 8–15 cluster 1, and so on.

The wide-area network is fully connected (as on the DAS): every ordered
cluster pair has its own dedicated simplex channel, so a 4-cluster system
has 3 outgoing WAN links per cluster and inter-pair traffic never
contends with traffic between a different pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from typing import Optional

from .linkspec import LinkSpec, myrinet, wan
from .variability import Variability


@dataclass(frozen=True)
class Topology:
    """Static description of a two-layer machine."""

    cluster_sizes: Tuple[int, ...]
    local: LinkSpec
    wide: LinkSpec
    gateway_overhead: float = 200e-6  # per-message store-and-forward cost (TCP gateway)
    #: Optional WAN jitter model (the paper's "further work": variations
    #: in wide-area latency and bandwidth).  None = fixed links.
    wan_variability: Optional[Variability] = None
    #: Wide-area shape: "full" (the DAS: a dedicated channel per cluster
    #: pair), "star" (every cluster linked to a hub; other traffic is
    #: forwarded through the hub's gateway), or "ring" (adjacent clusters
    #: linked; traffic takes the shorter arc).  Section 5.1 predicts the
    #: more-smaller-clusters advantage disappears on star/ring shapes.
    wan_shape: str = "full"
    #: Hub cluster for the star shape.
    wan_hub: int = 0

    def __post_init__(self) -> None:
        if not self.cluster_sizes:
            raise ValueError("topology needs at least one cluster")
        if any(s <= 0 for s in self.cluster_sizes):
            raise ValueError(f"cluster sizes must be positive: {self.cluster_sizes}")
        if self.gateway_overhead < 0:
            raise ValueError("negative gateway overhead")
        if self.wan_shape not in ("full", "star", "ring"):
            raise ValueError(f"unknown wan_shape {self.wan_shape!r}")
        if self.wan_shape == "star" and not 0 <= self.wan_hub < len(self.cluster_sizes):
            raise ValueError(f"wan_hub {self.wan_hub} out of range")
        # Precompute rank -> cluster lookup once; frozen dataclass, so go
        # through object.__setattr__.
        rank_cluster: List[int] = []
        starts: List[int] = []
        base = 0
        for cid, size in enumerate(self.cluster_sizes):
            starts.append(base)
            rank_cluster.extend([cid] * size)
            base += size
        object.__setattr__(self, "_rank_cluster", tuple(rank_cluster))
        object.__setattr__(self, "_cluster_start", tuple(starts))

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return len(self._rank_cluster)

    @property
    def num_clusters(self) -> int:
        return len(self.cluster_sizes)

    def ranks(self) -> range:
        return range(self.num_ranks)

    def clusters(self) -> range:
        return range(self.num_clusters)

    # ------------------------------------------------------------------
    # Rank <-> cluster mapping
    # ------------------------------------------------------------------
    def cluster_of(self, rank: int) -> int:
        return self._rank_cluster[rank]

    def cluster_members(self, cluster: int) -> range:
        start = self._cluster_start[cluster]
        return range(start, start + self.cluster_sizes[cluster])

    def cluster_leader(self, cluster: int) -> int:
        """The conventional coordinator rank of a cluster (its first rank)."""
        return self._cluster_start[cluster]

    def local_index(self, rank: int) -> int:
        """Position of ``rank`` within its own cluster."""
        return rank - self._cluster_start[self.cluster_of(rank)]

    def same_cluster(self, a: int, b: int) -> bool:
        return self._rank_cluster[a] == self._rank_cluster[b]

    def wan_pairs(self) -> Iterator[Tuple[int, int]]:
        """Ordered cluster pairs that have a physical simplex WAN channel."""
        if self.wan_shape == "full":
            for a in self.clusters():
                for b in self.clusters():
                    if a != b:
                        yield (a, b)
        elif self.wan_shape == "star":
            for c in self.clusters():
                if c != self.wan_hub:
                    yield (c, self.wan_hub)
                    yield (self.wan_hub, c)
        else:  # ring
            n = self.num_clusters
            if n == 2:
                yield (0, 1)
                yield (1, 0)
            else:
                for c in self.clusters():
                    yield (c, (c + 1) % n)
                    yield ((c + 1) % n, c)

    def wan_route(self, src_cluster: int, dst_cluster: int) -> List[Tuple[int, int]]:
        """The sequence of WAN hops from one cluster to another.

        On "full" this is a single hop; on "star" traffic between spokes
        relays through the hub; on "ring" it takes the shorter arc (ties
        broken toward increasing cluster ids).
        """
        if src_cluster == dst_cluster:
            return []
        if self.wan_shape == "full":
            return [(src_cluster, dst_cluster)]
        if self.wan_shape == "star":
            hops = []
            if src_cluster != self.wan_hub:
                hops.append((src_cluster, self.wan_hub))
            if dst_cluster != self.wan_hub:
                hops.append((self.wan_hub, dst_cluster))
            return hops
        # ring: walk the shorter direction.
        n = self.num_clusters
        forward = (dst_cluster - src_cluster) % n
        backward = (src_cluster - dst_cluster) % n
        step = 1 if forward <= backward else -1
        hops = []
        here = src_cluster
        while here != dst_cluster:
            nxt = (here + step) % n
            hops.append((here, nxt))
            here = nxt
        return hops

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    def gap_bandwidth(self) -> float:
        """The NUMA gap in bandwidth (fast / slow)."""
        return self.local.bandwidth / self.wide.bandwidth

    def gap_latency(self) -> float:
        """The NUMA gap in latency (slow / fast)."""
        return self.wide.latency / self.local.latency

    def fingerprint(self) -> str:
        """Stable short hash of every parameter that affects timing.

        Two topologies with the same fingerprint produce identical
        simulations for the same (app, config, seed) — the key the
        on-disk result cache and the what-if validator rely on.
        """
        import hashlib

        def spec_key(spec: LinkSpec) -> str:
            return (f"{spec.latency!r}/{spec.bandwidth!r}/"
                    f"{spec.send_overhead!r}/{spec.recv_overhead!r}")

        var = self.wan_variability
        var_key = "none" if var is None or not var.enabled else repr(var)
        canon = "|".join([
            ",".join(str(s) for s in self.cluster_sizes),
            spec_key(self.local),
            spec_key(self.wide),
            repr(self.gateway_overhead),
            self.wan_shape,
            str(self.wan_hub),
            var_key,
        ])
        return hashlib.sha1(canon.encode()).hexdigest()[:16]

    def describe(self) -> str:
        shape = "x".join(str(s) for s in self.cluster_sizes)
        return (
            f"{self.num_clusters} clusters ({shape}), "
            f"local {self.local.latency*1e6:.0f}us/{self.local.bandwidth/1e6:.0f}MBs, "
            f"wan {self.wide.latency*1e3:.2f}ms/{self.wide.bandwidth/1e6:.3f}MBs"
        )


def das_topology(
    clusters: int = 4,
    cluster_size: int = 8,
    wan_latency_ms: float = 1.25,
    wan_bandwidth_mbyte_s: float = 0.55,
    local: LinkSpec = None,
    gateway_overhead: float = 200e-6,
    wan_variability: Optional[Variability] = None,
) -> Topology:
    """The paper's experimentation system: N Myrinet clusters over ATM."""
    return Topology(
        cluster_sizes=tuple([cluster_size] * clusters),
        local=local if local is not None else myrinet(),
        wide=wan(wan_latency_ms, wan_bandwidth_mbyte_s),
        gateway_overhead=gateway_overhead,
        wan_variability=wan_variability,
    )


def single_cluster(num_ranks: int, local: LinkSpec = None) -> Topology:
    """An all-Myrinet machine — the paper's speedup baseline."""
    return Topology(
        cluster_sizes=(num_ranks,),
        local=local if local is not None else myrinet(),
        # The WAN spec is never exercised with one cluster; give it the
        # local characteristics so gap computations degenerate to ~1.
        wide=local if local is not None else myrinet(),
        gateway_overhead=0.0,
    )
