"""Wide-area link variability (the paper's stated further work).

Section 1: "Further research should study the impact of variations in
latency and bandwidth, which often occur on wide area links."  This
module models both:

- **latency jitter** — each message's propagation delay is scaled by an
  independent log-normal factor with mean 1 and a chosen coefficient of
  variation (queueing noise on shared WANs);
- **bandwidth variation** — the link's attainable rate is scaled by a
  piecewise-constant log-normal factor, redrawn every ``epoch`` seconds
  (competing background traffic changes slowly compared to messages).

Both are deterministic given the run seed and the link name: bandwidth
epochs hash (seed, link, epoch-index) so that their sequence does not
depend on message order; latency factors come from a per-link stream
consumed per message (message order is itself deterministic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.rng import derive_seed, make_rng


@dataclass(frozen=True)
class Variability:
    """Coefficient-of-variation knobs for a link class."""

    latency_cv: float = 0.0
    bandwidth_cv: float = 0.0
    epoch: float = 0.25  # seconds per bandwidth regime

    def __post_init__(self) -> None:
        if self.latency_cv < 0 or self.bandwidth_cv < 0:
            raise ValueError("coefficients of variation must be >= 0")
        if self.epoch <= 0:
            raise ValueError("epoch must be positive")

    @property
    def enabled(self) -> bool:
        return self.latency_cv > 0 or self.bandwidth_cv > 0


def _lognormal_sigma(cv: float) -> float:
    """Sigma of a mean-1 log-normal with coefficient of variation ``cv``."""
    return math.sqrt(math.log(1.0 + cv * cv))


class LinkNoise:
    """Per-link sampler bound to a run seed (see module docstring)."""

    __slots__ = ("variability", "_seed", "_name", "_lat_rng", "_lat_sigma",
                 "_bw_sigma", "_bw_cache")

    def __init__(self, variability: Variability, seed: int, name: str) -> None:
        self.variability = variability
        self._seed = seed
        self._name = name
        self._lat_rng = make_rng(seed, f"latjitter:{name}")
        self._lat_sigma = _lognormal_sigma(variability.latency_cv)
        self._bw_sigma = _lognormal_sigma(variability.bandwidth_cv)
        self._bw_cache: dict = {}

    def latency_factor(self) -> float:
        """Mean-1 multiplicative jitter for one message's propagation."""
        if self._lat_sigma == 0.0:
            return 1.0
        return self._lat_rng.lognormvariate(-self._lat_sigma ** 2 / 2,
                                            self._lat_sigma)

    def bandwidth_factor(self, time: float) -> float:
        """Mean-1 multiplicative rate factor for the epoch containing ``time``."""
        if self._bw_sigma == 0.0:
            return 1.0
        window = int(time / self.variability.epoch)
        factor = self._bw_cache.get(window)
        if factor is None:
            rng = make_rng(derive_seed(self._seed, self._name),
                           f"bw-epoch:{window}")
            factor = rng.lognormvariate(-self._bw_sigma ** 2 / 2, self._bw_sigma)
            self._bw_cache[window] = factor
            if len(self._bw_cache) > 4096:  # bound memory on long runs
                self._bw_cache.pop(next(iter(self._bw_cache)))
        return factor
