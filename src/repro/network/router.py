"""Routing and timing of messages through the two-layer interconnect.

The router owns all link resources:

- one egress NIC :class:`~repro.network.link.Link` per rank (Myrinet
  serialization at the sender);
- one ingress :class:`Link` per cluster gateway (dispatch of arriving
  WAN traffic onto the local Myrinet);
- one simplex WAN :class:`Link` per ordered cluster pair (the DAS WAN is
  fully connected).

Intra-cluster messages take one NIC hop; inter-cluster messages take
NIC -> gateway (local hop), then one or more WAN hops (one on the fully
connected shape; via the hub on a star; around the shorter arc on a
ring), each with the gateway machine's per-message store-and-forward
service, and a final local hop contended on the destination gateway's
egress NIC.

Hot-path layout: :meth:`Router.route` is executed once per message, so
the per-rank/per-cluster resources are pre-resolved at construction into
flat lookup tables (rank -> cluster id, rank -> bound ``Link.transfer``,
cluster pair -> hop list) and the staged hops are scheduled as
``functools.partial`` continuations of bound methods — no per-message
closure cells are allocated.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Tuple

from ..obs.bus import ProbeBus
from ..obs.events import GatewayEvent
from ..sim.engine import Engine

from .link import Link, SerialResource
from .variability import LinkNoise
from .message import Message
from .stats import TrafficStats
from .topology import Topology


class Router:
    """Maps (src, dst, size, time) to a delivery time, with contention.

    All instrumentation flows through a :class:`~repro.obs.bus.ProbeBus`:
    traffic accounting is published on the ``traffic_*`` topics (the
    router's :class:`TrafficStats` subscribes to them), link transfers on
    ``queue``, and gateway CPU service on ``gateway``.  A
    :class:`~repro.runtime.machine.Machine` passes its own bus in; a
    stand-alone router builds a private one and wires its stats itself.
    """

    def __init__(self, topology: Topology, stats: TrafficStats = None,
                 seed: int = 0, bus: ProbeBus = None) -> None:
        self.topology = topology
        self.stats = stats if stats is not None else TrafficStats(topology.num_clusters)
        if bus is None:
            bus = ProbeBus()
            bus.attach(self.stats)
        self.bus = bus
        # Live subscriber lists for the per-message counters: iterating
        # them directly keeps the always-on traffic accounting at seed cost.
        self._traffic_intra = bus.subscribers("traffic_intra")
        self._traffic_inter = bus.subscribers("traffic_inter")
        local, wide = topology.local, topology.wide

        def wan_noise(name: str):
            var = topology.wan_variability
            if var is not None and var.enabled:
                return LinkNoise(var, seed, name)
            return None
        self._nic: Dict[int, Link] = {
            rank: Link(f"nic{rank}", local, bus=bus) for rank in topology.ranks()
        }
        self._gateway_out: Dict[int, Link] = {
            cid: Link(f"gw{cid}-egress", local, bus=bus)
            for cid in topology.clusters()
        }
        # One gateway *machine* per cluster: its TCP stack serializes every
        # WAN message of that cluster (both directions) at a fixed
        # per-message cost, so tiny-message floods saturate it.
        self._gateway_cpu: Dict[int, SerialResource] = {
            cid: SerialResource(f"gw{cid}-cpu", topology.gateway_overhead)
            for cid in topology.clusters()
        }
        self._wan: Dict[Tuple[int, int], Link] = {
            pair: Link(f"wan{pair[0]}->{pair[1]}", wide,
                       noise=wan_noise(f"wan{pair[0]}->{pair[1]}"), bus=bus)
            for pair in topology.wan_pairs()
        }
        # Flat per-rank/per-pair tables for the per-message fast path
        # (ranks are a contiguous range, so list indexing applies).
        self._cluster_of: List[int] = [topology.cluster_of(r)
                                       for r in topology.ranks()]
        self._nic_transfer: List[Callable[[float, int], float]] = [
            self._nic[r].transfer for r in topology.ranks()
        ]
        self._gateway_out_transfer: List[Callable[[float, int], float]] = [
            self._gateway_out[c].transfer for c in topology.clusters()
        ]
        self._hops: Dict[Tuple[int, int], List[Tuple[int, int]]] = {
            (a, b): topology.wan_route(a, b)
            for a in topology.clusters() for b in topology.clusters() if a != b
        }
        #: optional :class:`~repro.faults.inject.FaultInjector`; set by the
        #: injector itself, so fault-free machines keep this None and the
        #: per-hop checks below reduce to one attribute load and a branch
        self._faults = None

    # ------------------------------------------------------------------
    def route(self, msg: Message, depart_time: float, engine: "Engine",
              on_deliver: Callable[[Message], None]) -> None:
        """Carry ``msg`` injected at ``depart_time`` to its destination.

        Shared resources along the path (gateway CPUs, WAN channels) are
        reserved *when the message reaches them*, by staging the hops
        through engine events — so contention is resolved in arrival
        order, not in the order the sends were issued.  ``on_deliver`` is
        invoked (via the engine) at the delivery time.
        """
        cluster_of = self._cluster_of
        src_cluster = cluster_of[msg.src]
        dst_cluster = cluster_of[msg.dst]
        msg.send_time = depart_time
        size = msg.size

        if src_cluster == dst_cluster:
            msg.inter_cluster = False
            for record in self._traffic_intra:
                record(size)
            # The sender NIC is a per-rank resource fed in send order.
            deliver = self._nic_transfer[msg.src](depart_time, size)
            msg.deliver_time = deliver
            engine.call_at(deliver, partial(on_deliver, msg))
            return

        msg.inter_cluster = True
        for record in self._traffic_inter:
            record(src_cluster, dst_cluster, size)
        at_gateway = self._nic_transfer[msg.src](depart_time, size)
        hops = self._hops[(src_cluster, dst_cluster)]
        engine.call_at(at_gateway,
                       partial(self._traverse, msg, hops, 0, engine, on_deliver))

    def _traverse(self, msg: Message, hops: List[Tuple[int, int]],
                  hop_index: int, engine: "Engine",
                  on_deliver: Callable[[Message], None]) -> None:
        # At the gateway of hops[hop_index][0]; arrival time is `now`.
        # The gateway machine's TCP stack serves one message at a time;
        # reserving at arrival time keeps its queue causally ordered.
        here, nxt = hops[hop_index]
        faults = self._faults
        if faults is not None and faults.gateway_down(here, engine.now):
            # A crashed gateway forwards nothing: the message dies before
            # its TCP stack would have served it.
            faults.record_drop(msg, f"gw{here}", "gateway-crash", engine.now)
            return
        cpu = self._gateway_cpu[here]
        ready = cpu.reserve(engine.now)
        if self.bus.want_gateway:
            self.bus.emit("gateway", GatewayEvent(engine.now, here,
                                                  ready - cpu.service_time,
                                                  ready, msg.size))
        if faults is not None:
            # Loss/outage strike as the message enters the wire — after
            # the gateway already spent its service time on it.
            reason = faults.wan_drop(here, nxt, ready)
            if reason is not None:
                faults.record_drop(msg, f"wan{here}->{nxt}", reason, ready)
                return
        at_next = self._wan[(here, nxt)].transfer(ready, msg.size)
        if hop_index + 1 < len(hops):
            # Star/ring shapes: store-and-forward at the intermediate
            # cluster's gateway, then onward.
            engine.call_at(at_next, partial(self._traverse, msg, hops,
                                            hop_index + 1, engine, on_deliver))
        else:
            engine.call_at(at_next, partial(self._arrive, msg, engine,
                                            on_deliver))

    def _arrive(self, msg: Message, engine: "Engine",
                on_deliver: Callable[[Message], None]) -> None:
        dst_cluster = self._cluster_of[msg.dst]
        faults = self._faults
        if faults is not None and faults.gateway_down(dst_cluster, engine.now):
            faults.record_drop(msg, f"gw{dst_cluster}", "gateway-crash",
                               engine.now)
            return
        cpu = self._gateway_cpu[dst_cluster]
        ready = cpu.reserve(engine.now)
        if self.bus.want_gateway:
            self.bus.emit("gateway", GatewayEvent(engine.now, dst_cluster,
                                                  ready - cpu.service_time,
                                                  ready, msg.size))
        deliver = self._gateway_out_transfer[dst_cluster](ready, msg.size)
        msg.deliver_time = deliver
        engine.call_at(deliver, partial(on_deliver, msg))

    # ------------------------------------------------------------------
    # Introspection used by tests and reports
    # ------------------------------------------------------------------
    def wan_link(self, src_cluster: int, dst_cluster: int) -> Link:
        return self._wan[(src_cluster, dst_cluster)]

    def nic(self, rank: int) -> Link:
        return self._nic[rank]

    def gateway_egress(self, cluster: int) -> Link:
        return self._gateway_out[cluster]

    def gateway_cpu(self, cluster: int) -> SerialResource:
        return self._gateway_cpu[cluster]

    def uncontended_time(self, src: int, dst: int, size: int) -> float:
        """Analytic one-way time ignoring queueing — used for sanity checks."""
        topo = self.topology
        if topo.same_cluster(src, dst):
            return topo.local.one_way_time(size)
        return (
            topo.local.one_way_time(size)
            + topo.gateway_overhead
            + topo.wide.one_way_time(size)
            + topo.gateway_overhead
            + topo.local.one_way_time(size)
        )
