"""Message objects carried by the simulated interconnect."""

from __future__ import annotations

import itertools
from typing import Any, Optional

_msg_ids = itertools.count()


class Message:
    """A single application-level message.

    ``size`` is the on-the-wire size in bytes and is what the network
    charges for; ``payload`` is an arbitrary Python object carried for the
    receiving process (its in-memory size is irrelevant to timing, which is
    how the experiments run paper-sized transfers without materializing
    megabytes of data).

    This is a plain slotted class on the per-message hot path: one is
    allocated for every send in a run, so it carries no dataclass
    machinery and :attr:`msg_id` is assigned lazily — the global id
    counter is only consumed (and the id stored) when something actually
    asks for it, e.g. a debugger or trace consumer.
    """

    __slots__ = ("src", "dst", "tag", "size", "payload", "send_time",
                 "deliver_time", "inter_cluster", "_msg_id")

    def __init__(self, src: int, dst: int, tag: Any, size: int,
                 payload: Any = None, send_time: float = 0.0,
                 deliver_time: float = 0.0, inter_cluster: bool = False,
                 msg_id: Optional[int] = None) -> None:
        if size < 0:
            raise ValueError(f"negative message size {size}")
        self.src = src
        self.dst = dst
        self.tag = tag
        self.size = size
        self.payload = payload
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.inter_cluster = inter_cluster
        self._msg_id = msg_id

    @property
    def msg_id(self) -> int:
        mid = self._msg_id
        if mid is None:
            mid = self._msg_id = next(_msg_ids)
        return mid

    @property
    def latency(self) -> float:
        """End-to-end delivery delay experienced by this message."""
        return self.deliver_time - self.send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(src={self.src}, dst={self.dst}, tag={self.tag!r}, "
                f"size={self.size})")
