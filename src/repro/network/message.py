"""Message objects carried by the simulated interconnect."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_msg_ids = itertools.count()


@dataclass
class Message:
    """A single application-level message.

    ``size`` is the on-the-wire size in bytes and is what the network
    charges for; ``payload`` is an arbitrary Python object carried for the
    receiving process (its in-memory size is irrelevant to timing, which is
    how the experiments run paper-sized transfers without materializing
    megabytes of data).
    """

    src: int
    dst: int
    tag: Any
    size: int
    payload: Any = None
    send_time: float = 0.0
    deliver_time: float = 0.0
    inter_cluster: bool = False
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative message size {self.size}")

    @property
    def latency(self) -> float:
        """End-to-end delivery delay experienced by this message."""
        return self.deliver_time - self.send_time
