"""FIFO bandwidth-serialized link resources.

A :class:`Link` models one simplex channel: messages serialize onto the
wire in arrival order at ``size / bandwidth`` seconds each, then propagate
for ``latency`` seconds.  This is the same first-order model the paper's
delay loops implement in the DAS gateways.
"""

from __future__ import annotations

from ..obs.events import QueueEvent
from .linkspec import LinkSpec


class LinkStats:
    """Per-link transfer counters (slotted: one instance per link, five
    field updates per message on the hot path)."""

    __slots__ = ("messages", "bytes", "busy_time", "queue_time", "last_free")

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.busy_time = 0.0
        self.queue_time = 0.0  # total time messages waited for the wire
        self.last_free = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LinkStats(messages={self.messages}, bytes={self.bytes}, "
                f"busy_time={self.busy_time}, queue_time={self.queue_time}, "
                f"last_free={self.last_free})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkStats):
            return NotImplemented
        return (self.messages == other.messages and self.bytes == other.bytes
                and self.busy_time == other.busy_time
                and self.queue_time == other.queue_time
                and self.last_free == other.last_free)


class SerialResource:
    """A FIFO resource charging a fixed per-use service time.

    Models the gateway machine's per-message processing (TCP stack): uses
    queue behind each other, so a flood of tiny messages saturates the
    gateway even when the wire itself is idle.
    """

    __slots__ = ("name", "service_time", "_next_free", "uses", "busy_time")

    def __init__(self, name: str, service_time: float) -> None:
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        self.name = name
        self.service_time = service_time
        self._next_free = 0.0
        self.uses = 0
        self.busy_time = 0.0

    def reserve(self, ready_time: float) -> float:
        """Serve one request arriving at ``ready_time``; returns completion."""
        next_free = self._next_free
        start = ready_time if ready_time > next_free else next_free
        end = start + self.service_time
        self._next_free = end
        self.uses += 1
        self.busy_time += self.service_time
        return end


class Link:
    """One simplex FIFO channel with bandwidth serialization.

    ``transfer(ready_time, size)`` returns the absolute delivery time at
    the far end and advances the wire-occupancy clock.  The model is
    cut-through at message granularity: queueing (head-of-line blocking),
    serialization and propagation are modelled; per-packet pipelining is
    not, matching the message-level measurements in the paper.

    The spec's bandwidth and latency are pre-resolved at construction
    (``transfer`` runs once per message per hop).
    """

    __slots__ = ("name", "spec", "_next_free", "_bandwidth", "_latency",
                 "stats", "noise", "bus", "faults")

    def __init__(self, name: str, spec: LinkSpec, noise=None, bus=None) -> None:
        self.name = name
        self.spec = spec
        self._next_free = 0.0
        # Keep the division (not a reciprocal multiply): ``size / bandwidth``
        # must stay bit-identical to the reference model.
        self._bandwidth = spec.bandwidth
        self._latency = spec.latency
        self.stats = LinkStats()
        #: optional :class:`~repro.network.variability.LinkNoise` sampler
        self.noise = noise
        #: optional :class:`~repro.obs.bus.ProbeBus` receiving "queue"
        #: events (one per transfer, carrying the queueing delay)
        self.bus = bus
        #: optional :class:`~repro.faults.inject.LinkFaultState` applying
        #: latency-burst windows; set by the fault injector, never here
        self.faults = None

    def transfer(self, ready_time: float, size: int) -> float:
        """Occupy the wire for ``size`` bytes starting no earlier than
        ``ready_time``; return the delivery time at the receiver."""
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        next_free = self._next_free
        start = ready_time if ready_time > next_free else next_free
        duration = size / self._bandwidth
        latency = self._latency
        if self.noise is not None:
            duration /= self.noise.bandwidth_factor(start)
            latency *= self.noise.latency_factor()
        if self.faults is not None:
            latency = self.faults.adjust_latency(start, latency, size)
        end = start + duration
        self._next_free = end
        st = self.stats
        st.messages += 1
        st.bytes += size
        st.busy_time += duration
        st.queue_time += start - ready_time
        st.last_free = end
        bus = self.bus
        if bus is not None and bus.want_queue:
            bus.emit("queue", QueueEvent(ready_time, self.name,
                                         start - ready_time, duration, end, size))
        return end + latency

    def next_free_at(self) -> float:
        """Earliest time a new transfer could start serializing."""
        return self._next_free

    def utilization(self, horizon: float) -> float:
        """Fraction of [0, horizon] the wire spent serializing bytes."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, msgs={self.stats.messages}, bytes={self.stats.bytes})"
