"""Synchronization primitives for simulated processes.

``SimEvent`` is a one-shot event that processes can wait on; ``Mailbox`` is
a FIFO of items with blocking receive semantics.  Both are engine-agnostic
value holders — the actual blocking/resuming of processes is arranged by
the syscalls in :mod:`repro.sim.primitives`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional


class SimEvent:
    """A one-shot event carrying an optional value.

    Processes wait via the ``WaitEvent`` syscall; arbitrary callbacks can
    also be attached with :meth:`add_callback`.  Triggering is idempotent
    only in the sense that re-triggering raises — a one-shot event fires
    exactly once.
    """

    __slots__ = ("_value", "_triggered", "_callbacks")

    def __init__(self) -> None:
        self._value: Any = None
        self._triggered = False
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the event, waking all waiters with ``value``."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Run ``cb(value)`` when the event fires (immediately if it has)."""
        if self._triggered:
            cb(self._value)
        else:
            self._callbacks.append(cb)


class Mailbox:
    """An unbounded FIFO with blocking receive.

    ``put`` either hands the item directly to the oldest waiting receiver
    or enqueues it.  ``add_receiver`` registers a plain callback for the
    next item (invoked immediately when one is queued) — the cheapest
    receive path, used once per message by the runtime.  ``get_event``
    wraps that in a :class:`SimEvent` for code that wants an event handle.
    """

    __slots__ = ("_items", "_waiters")

    def __init__(self) -> None:
        self._items: Deque[Any] = deque()
        self._waiters: Deque[Callable[[Any], None]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_receivers(self) -> int:
        return len(self._waiters)

    def put(self, item: Any) -> None:
        if self._waiters:
            self._waiters.popleft()(item)
        else:
            self._items.append(item)

    def add_receiver(self, cb: Callable[[Any], None]) -> None:
        """Run ``cb`` with the next item — now if one is queued, else when
        the next ``put`` arrives.  Each callback receives exactly one item
        (FIFO among waiting receivers)."""
        items = self._items
        if items:
            cb(items.popleft())
        else:
            self._waiters.append(cb)

    def get_event(self) -> SimEvent:
        ev = SimEvent()
        self.add_receiver(ev.succeed)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking receive; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (receive order), without consuming."""
        return list(self._items)
