"""Engine-level syscalls usable by any simulated process.

Runtime-level syscalls (send/recv/rpc) live in :mod:`repro.runtime.context`
because they need a machine; the primitives here only need the engine.
"""

from __future__ import annotations

from typing import Any

from .engine import SimulationError
from .events import Mailbox, SimEvent
from .process import Process, Syscall


class Sleep(Syscall):
    """Suspend the process for ``duration`` simulated seconds.

    ``Compute`` (in the runtime context) is a ``Sleep`` that additionally
    books the time as CPU work in the statistics.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise SimulationError(f"negative sleep duration {duration!r}")
        self.duration = duration

    def apply(self, proc: Process) -> None:
        # The trampoline resumes with the stashed value, which is None for
        # a sleeping process — no closure needed.
        proc.engine.call_after(self.duration, proc.trampoline)


class WaitEvent(Syscall):
    """Block until a :class:`SimEvent` fires; resumes with the event value."""

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event

    def apply(self, proc: Process) -> None:
        self.event.add_callback(proc.resume)


class GetFromMailbox(Syscall):
    """Receive the next item from a :class:`Mailbox` (blocking)."""

    __slots__ = ("mailbox",)

    def __init__(self, mailbox: Mailbox) -> None:
        self.mailbox = mailbox

    def apply(self, proc: Process) -> None:
        self.mailbox.add_receiver(proc.resume)


class Immediate(Syscall):
    """Resume immediately with ``value`` — a deterministic yield point."""

    __slots__ = ("value",)

    def __init__(self, value: Any = None) -> None:
        self.value = value

    def apply(self, proc: Process) -> None:
        proc.resume(self.value)
