"""Generator-based simulated processes.

A process body is a Python generator that yields :class:`Syscall` objects
(see :mod:`repro.sim.primitives`).  The value the syscall produces is sent
back into the generator, so application code reads naturally::

    def body(ctx):
        yield ctx.compute(1e-3)
        msg = yield ctx.recv(tag="work")

Composite operations are ordinary sub-generators used with ``yield from``.

Scheduling note: a process is resumed through one reusable bound-method
trampoline (:attr:`Process.trampoline`).  ``resume``/``throw`` stash the
value (or exception) on the process and enqueue the trampoline on the
engine's zero-delay ready queue, so the per-switch cost is one deque
append — no closure is allocated.  Syscalls that resume at a later time
may schedule the same trampoline with ``engine.call_at(when, proc.trampoline)``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .engine import Engine

ProcessBody = Generator[Any, Any, Any]


class Syscall:
    """Base class for everything a process may yield.

    ``apply`` arranges for ``proc.resume(value)`` (or ``proc.throw(exc)``)
    to be called later; it must not resume the process synchronously.
    """

    __slots__ = ()

    def apply(self, proc: "Process") -> None:
        raise NotImplementedError


class Process:
    """Wraps a generator and steps it through the engine.

    The process is *not* started on construction; call :meth:`start` (the
    runtime does this for you).  When the generator returns, the process is
    finished and :attr:`result` holds its return value.
    """

    __slots__ = ("engine", "name", "daemon", "_body", "finished", "failed",
                 "result", "_done_callbacks", "_started", "_value", "_exc",
                 "trampoline")

    def __init__(self, engine: Engine, body: ProcessBody, name: str = "proc",
                 daemon: bool = False) -> None:
        self.engine = engine
        self.name = name
        self.daemon = daemon
        self._body = body
        self.finished = False
        self.failed: Optional[BaseException] = None
        self.result: Any = None
        self._done_callbacks: List[Callable[["Process"], None]] = []
        self._started = False
        #: value/exception handed to the generator at the next trampoline hop
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        #: the one bound method every resume of this process schedules
        self.trampoline = self._hop

    # ------------------------------------------------------------------
    def start(self) -> "Process":
        if self._started:
            raise RuntimeError(f"process {self.name} already started")
        self._started = True
        self.engine.call_soon(self.trampoline)
        return self

    def resume(self, value: Any = None) -> None:
        """Schedule the generator to continue with ``value`` at the current time."""
        self._value = value
        self.engine.call_soon(self.trampoline)

    def throw(self, exc: BaseException) -> None:
        """Schedule the generator to continue by raising ``exc`` inside it."""
        self._exc = exc
        self.engine.call_soon(self.trampoline)

    def on_done(self, cb: Callable[["Process"], None]) -> None:
        if self.finished:
            cb(self)
        else:
            self._done_callbacks.append(cb)

    # ------------------------------------------------------------------
    def _hop(self) -> None:
        """Engine callback: deliver the stashed value/exception to the body."""
        value = self._value
        exc = self._exc
        if value is not None:
            self._value = None
        if exc is not None:
            self._exc = None
        if self.finished:
            return
        try:
            if exc is not None:
                item = self._body.throw(exc)
            else:
                item = self._body.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001 - surface process crashes
            self.failed = err
            self._finish(result=None)
            raise
        if not isinstance(item, Syscall):
            bad = type(item).__name__
            self.failed = TypeError(
                f"process {self.name} yielded {bad}; processes must yield Syscall "
                f"objects (did you forget 'yield from' on a sub-operation?)"
            )
            self._finish(result=None)
            raise self.failed
        item.apply(self)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        """Deliver ``value``/``exc`` to the body synchronously (compat shim
        around :meth:`_hop`, the engine-scheduled fast path)."""
        self._value = value
        self._exc = exc
        self._hop()

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        callbacks, self._done_callbacks = self._done_callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else ("live" if self._started else "new")
        return f"Process({self.name}, {state})"
