"""Deterministic random-number utilities.

Every stochastic choice in the simulator draws from a ``random.Random``
seeded from a run-level seed plus a stable string key, so that adding a
new consumer of randomness never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, key: str) -> int:
    """Derive a 64-bit child seed from ``base_seed`` and a stable ``key``."""
    digest = hashlib.sha256(f"{base_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(base_seed: int, key: str) -> random.Random:
    """An independent, reproducible RNG stream for component ``key``."""
    return random.Random(derive_seed(base_seed, key))
