"""Deterministic discrete-event simulation kernel.

Public surface:

- :class:`~repro.sim.engine.Engine` — the event scheduler.
- :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.Syscall`
  — generator-based processes.
- :mod:`~repro.sim.primitives` — ``Sleep``, ``WaitEvent``, ``GetFromMailbox``.
- :class:`~repro.sim.events.SimEvent` / :class:`~repro.sim.events.Mailbox`.
- :func:`~repro.sim.rng.make_rng` — reproducible per-component RNG streams.
"""

from .engine import Engine, SimulationError
from .events import Mailbox, SimEvent
from .primitives import GetFromMailbox, Immediate, Sleep, WaitEvent
from .process import Process, Syscall
from .rng import derive_seed, make_rng

__all__ = [
    "Engine",
    "SimulationError",
    "Mailbox",
    "SimEvent",
    "GetFromMailbox",
    "Immediate",
    "Sleep",
    "WaitEvent",
    "Process",
    "Syscall",
    "derive_seed",
    "make_rng",
]
