"""Discrete-event simulation engine.

The engine is a minimal, deterministic event scheduler.  Every pending
event is a ``(time, sequence, callback)`` entry; ties in time are broken
by the monotonically increasing sequence number, so two runs of the same
program produce identical event orders (see DESIGN.md section 6).

Internally the entries live in three structures, merged on pop by their
``(time, sequence)`` key — the observable order is exactly that of a
single binary heap, but the common scheduling patterns skip the heap:

- ``_ready`` — a FIFO of zero-delay events (:meth:`call_soon`, and
  :meth:`call_after` with ``delay == 0``).  Entries are appended with
  ``time == now``; since ``now`` and the sequence counter are both
  monotone the deque is already sorted, so push and pop are O(1).  This
  is the dominant pattern in process scheduling (start/resume/throw).
- ``_sorted`` / ``_si`` — a sorted array walked by index.  When
  :meth:`run` finds a large backlog (events scheduled before the run
  started), it sorts the backlog once and then pops by incrementing an
  index instead of paying an O(log n) heap sift per event.
- ``_queue`` — the binary heap, used for everything scheduled at a
  positive delay while the simulation runs.

The engine knows nothing about processes, networks or messages; those are
layered on top (``repro.sim.process``, ``repro.runtime``).
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Heap size at :meth:`Engine.run` entry above which the backlog is
#: sorted once and walked by index instead of heap-popped.
_BATCH_THRESHOLD = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class Engine:
    """A deterministic discrete-event scheduler.

    Typical use::

        eng = Engine()
        eng.call_at(1.5, lambda: print("fired at", eng.now))
        eng.run()
    """

    __slots__ = ("now", "_queue", "_ready", "_sorted", "_si", "_seq",
                 "_events_processed", "_running", "_stopped")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._ready: deque = deque()
        self._sorted: List[Tuple[float, int, Callable[[], None]]] = []
        self._si = 0
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_soon(self, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at the current time, after already-pending
        events at this time (identical to ``call_after(0.0, fn)``)."""
        self._ready.append((self.now, next(self._seq), fn))

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when!r}, which is before now={self.now!r}"
            )
        if when != when:  # NaN compares false against everything
            raise SimulationError("cannot schedule at NaN time")
        _heappush(self._queue, (when, next(self._seq), fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        if delay == 0.0:
            self._ready.append((self.now, next(self._seq), fn))
            return
        when = self.now + delay
        if when != when:
            raise SimulationError("cannot schedule at NaN time")
        _heappush(self._queue, (when, next(self._seq), fn))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Make the current :meth:`run` return after the active callback.

        The pending queue is left intact; a later ``run`` resumes where
        this one stopped.  (:class:`~repro.runtime.machine.Machine` uses
        this to end the simulation when the last main process finishes.)
        """
        self._stopped = True

    def _pop_next(self):
        """Pop the globally earliest entry, or None when idle."""
        ready = self._ready
        queue = self._queue
        if self._si < len(self._sorted):
            entry = self._sorted[self._si]
            if ready and ready[0] < entry:
                entry = ready[0]
            if queue and queue[0] < entry:
                return _heappop(queue)
            if ready and entry is ready[0]:
                return ready.popleft()
            self._si += 1
            if self._si == len(self._sorted):
                self._sorted = []
                self._si = 0
            return entry
        if ready:
            if queue and queue[0] < ready[0]:
                return _heappop(queue)
            return ready.popleft()
        if queue:
            return _heappop(queue)
        return None

    def step(self) -> bool:
        """Run the single earliest pending event.  Returns False if idle."""
        entry = self._pop_next()
        if entry is None:
            return False
        self.now = entry[0]
        self._events_processed += 1
        entry[2]()
        return True

    def _adopt_backlog(self) -> None:
        """Move a large pre-run heap into the sorted batch array."""
        batch = self._sorted
        if self._si:
            del batch[:self._si]
            self._si = 0
        batch.extend(self._queue)
        batch.sort()
        self._queue.clear()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached,
        ``max_events`` have been processed in this call, or :meth:`stop`
        is called from a callback.

        ``until`` is inclusive: events scheduled exactly at ``until``
        run, and the clock is left at ``until`` even when the queue
        drains before reaching it.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._stopped = False
        if len(self._queue) >= _BATCH_THRESHOLD:
            self._adopt_backlog()
        # Locals for the hot loop: these bindings are stable for the whole
        # run (callbacks mutate the structures in place, never rebind them).
        queue = self._queue
        ready = self._ready
        popleft = ready.popleft
        pop = _heappop
        batch = self._sorted
        si = self._si
        sn = len(batch)
        n = 0
        try:
            if until is None and max_events is None:
                while True:
                    if si < sn:
                        entry = batch[si]
                        if ready and ready[0] < entry:
                            if queue and queue[0] < ready[0]:
                                entry = pop(queue)
                            else:
                                entry = popleft()
                        elif queue and queue[0] < entry:
                            entry = pop(queue)
                        else:
                            si += 1
                            self._si = si
                    elif ready:
                        if queue and queue[0] < ready[0]:
                            entry = pop(queue)
                        else:
                            entry = popleft()
                    elif queue:
                        entry = pop(queue)
                    else:
                        break
                    self.now = entry[0]
                    n += 1
                    entry[2]()
                    if self._stopped:
                        break
            else:
                while not self._stopped:
                    if max_events is not None and n >= max_events:
                        break
                    if si < sn:
                        nxt = batch[si]
                        if ready and ready[0] < nxt:
                            nxt = ready[0]
                        if queue and queue[0] < nxt:
                            nxt = queue[0]
                    elif ready:
                        nxt = ready[0]
                        if queue and queue[0] < nxt:
                            nxt = queue[0]
                    elif queue:
                        nxt = queue[0]
                    else:
                        # Drained early: the horizon still passes.
                        if until is not None and until > self.now:
                            self.now = until
                        break
                    if until is not None and nxt[0] > until:
                        self.now = until
                        break
                    if si < sn and nxt is batch[si]:
                        si += 1
                        self._si = si
                        entry = nxt
                    elif ready and nxt is ready[0]:
                        entry = popleft()
                    else:
                        entry = pop(queue)
                    self.now = entry[0]
                    n += 1
                    entry[2]()
        finally:
            self._events_processed += n
            if si == sn:
                self._sorted = []
                self._si = 0
            else:
                self._si = si
            self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue) + len(self._ready) + len(self._sorted) - self._si

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    def peek(self) -> float:
        """Time of the next pending event (``inf`` when idle)."""
        best = math.inf
        if self._si < len(self._sorted):
            best = self._sorted[self._si][0]
        if self._ready and self._ready[0][0] < best:
            best = self._ready[0][0]
        if self._queue and self._queue[0][0] < best:
            best = self._queue[0][0]
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self.now:.6f}, pending={self.pending})"


def make_any_callback(fn: Callable[..., Any]) -> Callable[[], None]:
    """Wrap an arbitrary callable as a zero-argument engine callback."""
    return lambda: fn()
