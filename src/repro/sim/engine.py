"""Discrete-event simulation engine.

The engine is a minimal, deterministic event scheduler: a binary heap of
``(time, sequence, callback)`` entries.  Ties in time are broken by the
monotonically increasing sequence number, so two runs of the same program
produce identical event orders (see DESIGN.md section 6).

The engine knows nothing about processes, networks or messages; those are
layered on top (``repro.sim.process``, ``repro.runtime``).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class Engine:
    """A deterministic discrete-event scheduler.

    Typical use::

        eng = Engine()
        eng.call_at(1.5, lambda: print("fired at", eng.now))
        eng.run()
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when!r}, which is before now={self.now!r}"
            )
        if math.isnan(when):
            raise SimulationError("cannot schedule at NaN time")
        heapq.heappush(self._queue, (when, next(self._seq), fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.call_at(self.now + delay, fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest pending event.  Returns False if idle."""
        if not self._queue:
            return False
        when, _seq, fn = heapq.heappop(self._queue)
        self.now = when
        self._events_processed += 1
        fn()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed in this call.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if until is not None and self._queue[0][0] > until:
                    self.now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    def peek(self) -> float:
        """Time of the next pending event (``inf`` when idle)."""
        return self._queue[0][0] if self._queue else math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self.now:.6f}, pending={self.pending})"


def make_any_callback(fn: Callable[..., Any]) -> Callable[[], None]:
    """Wrap an arbitrary callable as a zero-argument engine callback."""
    return lambda: fn()
