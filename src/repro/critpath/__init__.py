"""Causal critical-path profiler with time attribution and blame.

Public surface:

- :class:`Profiler` — probe-bus subscriber; attach before a run, then
  ``finalize(machine)`` into a :class:`Profile`.
- :class:`Profile` — per-rank and whole-run time attribution (buckets in
  :data:`BUCKETS`, sums exactly to wall time), lazy
  :meth:`~Profile.critical_path`, text/JSON/metrics exports.
- :class:`CriticalPath` / :class:`PathStep` — the exact path with
  per-edge resource decomposition, slack, and sensitivity blame.
- :func:`profile_run` / :func:`profile_app` — one-call conveniences.

Importing this package costs nothing at run time: nothing subscribes to
the probe bus until a :class:`Profiler` is explicitly attached, so a run
without one is byte-identical to a run without the package (pinned by
the golden-parity and overhead-guard tests).
"""

from .path import MAX_STEPS, CriticalPath, PathStep, compute_critical_path
from .profile import (BUCKET_LETTERS, BUCKETS, Profile, Profiler,
                      RankAttribution, profile_app, profile_run)

__all__ = [
    "BUCKETS",
    "BUCKET_LETTERS",
    "CriticalPath",
    "MAX_STEPS",
    "PathStep",
    "Profile",
    "Profiler",
    "RankAttribution",
    "compute_critical_path",
    "profile_app",
    "profile_run",
]
