"""``python -m repro profile``: critical-path profile of one app run.

Runs a single application variant on a chosen grid point with the
causal profiler attached, then prints the time attribution (per-rank
buckets summing exactly to wall time), the extracted critical path with
per-edge resource decomposition, and the first-order WAN sensitivity
blame (latency traversals / bytes on path)::

    python -m repro profile asp --scale bench
    python -m repro profile water --variant unoptimized --bw 0.3 --lat 30
    python -m repro profile tsp --faults 0.01 --json
    python -m repro profile fft --out fft.trace.json   # + critical-path track

``--out`` writes a Perfetto trace with the usual rank/link/gateway
tracks plus a dedicated critical-path track (and queue-depth counters);
``--report`` appends a JSON-lines run record whose metrics section
carries the attribution buckets (``critpath.run.<bucket>_s``).
"""

from __future__ import annotations

import json
import sys
from typing import Optional

import argparse

from ..apps import app_names, default_config, get_builder
from ..experiments import grids
from ..obs.bus import ProbeBus
from ..obs.report import RunReporter, run_record
from ..runtime.run import run_spmd
from .profile import Profiler


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro profile", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("app", choices=sorted(app_names()))
    parser.add_argument("--variant", default="optimized",
                        choices=["unoptimized", "optimized"])
    parser.add_argument("--scale", default="bench", choices=["paper", "bench"])
    parser.add_argument("--bw", type=float, default=grids.FIGURE1_BANDWIDTH,
                        help="WAN bandwidth, MByte/s per link")
    parser.add_argument("--lat", type=float, default=grids.FIGURE1_LATENCY_MS,
                        help="WAN one-way latency, ms")
    parser.add_argument("--clusters", type=int, default=grids.NUM_CLUSTERS)
    parser.add_argument("--cluster-size", type=int, default=grids.CLUSTER_SIZE)
    parser.add_argument("--wan-shape", default="full",
                        choices=["full", "star", "ring"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--faults", type=float, default=None, metavar="LOSS",
                        help="run under uniform WAN loss with the reliable "
                             "transport (probability, e.g. 0.01)")
    parser.add_argument("--json", action="store_true",
                        help="print the full profile as JSON instead of text")
    parser.add_argument("--top", type=int, default=8,
                        help="longest critical-path edges to list")
    parser.add_argument("--path-steps", type=int, default=50,
                        help="longest path steps to keep in JSON output")
    parser.add_argument("--out", default=None,
                        help="also write a Perfetto trace (with the "
                             "critical-path track) to this path")
    parser.add_argument("--report", default=None,
                        help="append a JSON-lines run record here")
    args = parser.parse_args(argv)

    topo = grids.multi_cluster(args.bw, args.lat, args.clusters,
                               args.cluster_size, args.wan_shape)
    faults = None
    if args.faults is not None:
        from ..faults import FaultPlan

        faults = FaultPlan.wan_loss(args.faults)

    bus = ProbeBus()
    profiler = Profiler(topo)
    bus.attach(profiler)
    perfetto = None
    if args.out:
        from ..obs.perfetto import PerfettoTrace

        perfetto = PerfettoTrace(topology=topo)
        bus.attach(perfetto)

    config = default_config(args.app, args.scale)
    body = get_builder(args.app, args.variant)(config)
    result = run_spmd(topo, body, seed=args.seed, bus=bus, faults=faults)
    profile = profiler.finalize(result.machine)
    path = profile.critical_path()

    meta = {"app": args.app, "variant": args.variant, "scale": args.scale,
            "bandwidth_mbyte_s": args.bw, "latency_ms": args.lat,
            "seed": args.seed, "harness": "profile"}
    if faults is not None:
        meta["wan_loss"] = args.faults

    if perfetto is not None:
        perfetto.add_critical_path(path)
        events = perfetto.write(args.out)
        print(f"wrote {events} trace events to {args.out}", file=sys.stderr)
    if args.report:
        with RunReporter(args.report) as reporter:
            reporter.emit(run_record(result.machine, result.runtime,
                                     result.wall_time, meta=meta,
                                     metrics=profile.metrics_registry()))
        print(f"wrote run report to {args.report}", file=sys.stderr)

    if args.json:
        doc = {"meta": meta, "profile": profile.to_dict(args.path_steps)}
        print(json.dumps(doc, sort_keys=True, indent=2))
    else:
        print(f"=== {args.app} {args.variant} on {topo.describe()}")
        print(profile.render_text(top_edges=args.top))
        print(f"dominant bottleneck: {profile.dominant_bucket()}  "
              f"(attribution residual {profile.max_residual():.2e}s)")


if __name__ == "__main__":
    main()
