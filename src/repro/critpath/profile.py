"""Causal profiler: per-process interval ledgers and time attribution.

:class:`Profiler` is an ordinary probe-bus subscriber (attach with
``bus.attach(profiler)``; zero cost when not attached, like the
sanitizer and fault injector).  During a run it reconstructs every
process's *gapless* timeline from the ``op``/``compute``/``unblock``
event streams: compute reservations, send/receive host overheads,
blocked-receive intervals annotated with the releasing message, and
timers.  After the run, :meth:`Profiler.finalize` turns the ledgers into
a :class:`Profile`:

- a **time attribution** per rank and whole-run — every simulated second
  of every rank lands in exactly one bucket (:data:`BUCKETS`), and the
  bucket sums provably equal the simulated wall time (the contributions
  telescope over each rank's timeline and are totalled with
  ``math.fsum``, so the error is a few ULPs, far inside the 1e-9 the
  tests assert);
- the inputs for the exact **critical path** walk
  (:mod:`repro.critpath.path`): per-process segment ledgers plus a
  send registry mapping every message to the op that produced it.

Blocked intervals are decomposed against the analytic two-layer model
(:meth:`~repro.network.router.Router.uncontended_time` generalised to
multi-hop WAN shapes): local/WAN propagation latency, per-hop bandwidth
serialization, gateway store-and-forward service; whatever the observed
transit took *beyond* the analytic components is attributed to transport
retries (bounded by the reliable-transport retransmit ledger) and then
to queueing.  Time the receiver waited before the releasing message even
departed is ``wait`` — the sender had not reached its send yet, which is
imbalance/synchronization, not the network's fault.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..network.topology import Topology
from ..obs.events import (ComputeEvent, DeliverEvent, OpEvent,
                          RetransmitEvent, SendEvent, UnblockEvent)

#: Attribution buckets, in render order.  Every simulated second of
#: every rank lands in exactly one of these.
BUCKETS: Tuple[str, ...] = (
    "compute",        # application CPU work (the op's own duration)
    "overhead",       # send/receive host overheads (LogP o)
    "cpu_wait",       # waiting for the rank CPU (daemons share the clock)
    "sleep",          # explicit timers (ctx.sleep)
    "lat_local",      # L0 (Myrinet) propagation on the blocking path
    "lat_wan",        # L1 (WAN) propagation on the blocking path
    "bw_local",       # bandwidth serialization on local links
    "bw_wan",         # bandwidth serialization on WAN links
    "gateway",        # gateway store-and-forward service
    "queue",          # contention: NIC/gateway/WAN queueing residual
    "retry",          # reliable-transport retransmit/RTO stalls
    "wait",           # blocked before the releasing send departed
    "imbalance",      # done, waiting for the slowest rank to finish
    "unattributed",   # ledger gaps (engine-level primitives; ~0)
)

#: One-letter code per bucket, for dense grid annotations.
BUCKET_LETTERS: Dict[str, str] = {
    "compute": "C", "overhead": "O", "cpu_wait": "U", "sleep": "Z",
    "lat_local": "l", "bw_local": "b", "lat_wan": "L", "bw_wan": "B",
    "gateway": "G", "queue": "Q", "retry": "R", "wait": "W",
    "imbalance": "I", "unattributed": "?",
}

_BUCKET_SET = frozenset(BUCKETS)


class Segment:
    """One interval on a process timeline (half-open ``[start, end]``)."""

    __slots__ = ("kind", "start", "end", "pure", "src", "size", "tag",
                 "send_time", "inter")

    def __init__(self, kind: str, start: float, end: float,
                 pure: float = 0.0, src: int = -1, size: int = 0,
                 tag: Any = None, send_time: float = -1.0,
                 inter: bool = False) -> None:
        self.kind = kind          # compute | send_ov | recv_ov | blocked | sleep
        self.start = start
        self.end = end
        self.pure = pure          # compute: the op's own duration
        self.src = src            # blocked: sender rank of the release
        self.size = size
        self.tag = tag
        self.send_time = send_time
        self.inter = inter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Segment({self.kind}, {self.start:.6f}..{self.end:.6f})")


class ProcLedger:
    """Chronological segments of one simulated process."""

    __slots__ = ("name", "rank", "daemon", "segs", "_starts")

    def __init__(self, name: str, rank: int, daemon: bool) -> None:
        self.name = name
        self.rank = rank
        self.daemon = daemon
        self.segs: List[Segment] = []
        self._starts: Optional[List[float]] = None

    def starts(self) -> List[float]:
        """Segment start times (for bisecting); built once, after the run."""
        if self._starts is None or len(self._starts) != len(self.segs):
            self._starts = [s.start for s in self.segs]
        return self._starts


class RankAttribution:
    """Bucketed wall-time attribution of one rank's timeline."""

    __slots__ = ("rank", "finish", "wall", "buckets")

    def __init__(self, rank: int, finish: float, wall: float,
                 buckets: Dict[str, float]) -> None:
        self.rank = rank
        self.finish = finish
        self.wall = wall
        self.buckets = buckets

    @property
    def total(self) -> float:
        return math.fsum(self.buckets.values())

    def residual(self) -> float:
        """Attribution-sum error: ``total - wall`` (must be ~ULPs)."""
        return self.total - self.wall


class Profiler:
    """Probe-bus subscriber reconstructing causal process timelines.

    Attach to the run's bus *before* the run; call :meth:`finalize` with
    the finished machine.  Needs the run's :class:`Topology` to price
    overheads and transit components analytically.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.ledgers: Dict[str, ProcLedger] = {}
        #: (src, dst, tag, depart) -> (proc name, send-op time); one entry
        #: per message, feeding the critical-path walk.
        self.send_index: Dict[Tuple[int, int, Any, float],
                              Tuple[str, float]] = {}
        self.retransmits = 0
        self._pending_compute: Dict[int, ComputeEvent] = {}
        self._pending_unblock: Dict[int, deque] = {}
        #: reliable-transport wire ledger: (src, dst, seq) -> first depart
        self._rt_first: Dict[Tuple[int, int, int], float] = {}
        #: (src, dst, original depart) -> extra delay the *delivered* wire
        #: copy accumulated over the first transmission (0 if no retry won)
        self._rt_delay: Dict[Tuple[int, int, float], float] = {}
        local, wide = topology.local, topology.wide
        self._cluster = topology._rank_cluster
        self._local_send_ov = local.send_overhead
        self._wide_send_ov = wide.send_overhead
        self._local_recv_ov = local.recv_overhead
        self._wide_recv_ov = wide.recv_overhead

    # ------------------------------------------------------------------
    # Bus handlers
    # ------------------------------------------------------------------
    def _ledger(self, ev: OpEvent) -> ProcLedger:
        led = self.ledgers.get(ev.proc)
        if led is None:
            led = self.ledgers[ev.proc] = ProcLedger(ev.proc, ev.rank,
                                                     ev.daemon)
        return led

    def on_compute(self, ev: ComputeEvent) -> None:
        # Consumed by the op event emitted immediately after (same engine
        # time, same publisher call), which identifies the process.
        self._pending_compute[ev.rank] = ev

    def on_unblock(self, ev: UnblockEvent) -> None:
        self._pending_unblock.setdefault(ev.rank, deque()).append(ev)

    def on_op(self, ev: OpEvent) -> None:
        kind = ev.kind
        if kind == "compute":
            pend = (self._pending_compute.pop(ev.rank, None)
                    if ev.duration > 0 else None)
            end = pend.end if pend is not None else ev.time + ev.duration
            if end > ev.time:
                self._ledger(ev).segs.append(
                    Segment("compute", ev.time, end, pure=ev.duration))
        elif kind == "send":
            inter = self._cluster[ev.dst] != self._cluster[ev.rank]
            ov = self._wide_send_ov if inter else self._local_send_ov
            depart = ev.time + ov
            if ov > 0:
                self._ledger(ev).segs.append(
                    Segment("send_ov", ev.time, depart))
            self.send_index.setdefault(
                (ev.rank, ev.dst, ev.tag, depart), (ev.proc, ev.time))
        elif kind == "multicast":
            ov = self._local_send_ov
            depart = ev.time + ov
            if ov > 0:
                self._ledger(ev).segs.append(
                    Segment("send_ov", ev.time, depart))
            for dst in ev.dst:
                self.send_index.setdefault(
                    (ev.rank, dst, ev.tag, depart), (ev.proc, ev.time))
        elif kind == "recv_done":
            led = self._ledger(ev)
            pend = self._pending_unblock.get(ev.rank)
            ub = pend.popleft() if pend else None
            if ub is not None and ub.waited > 0:
                led.segs.append(Segment(
                    "blocked", ev.time - ub.waited, ev.time, src=ub.src,
                    size=ub.size, tag=ev.tag, send_time=ub.send_time,
                    inter=ub.inter_cluster))
            inter = ub.inter_cluster if ub is not None else False
            ov = self._wide_recv_ov if inter else self._local_recv_ov
            if ov > 0:
                led.segs.append(Segment("recv_ov", ev.time, ev.time + ov))
        elif kind == "sleep":
            if ev.duration > 0:
                self._ledger(ev).segs.append(
                    Segment("sleep", ev.time, ev.time + ev.duration))
        elif kind == "recv":
            # Ensure the ledger exists even for a process that only ever
            # blocks (a parked daemon) — the walk may pass through it.
            self._ledger(ev)
        # poll/spawn take no simulated time.

    def on_send(self, ev: SendEvent) -> None:
        tag = ev.tag
        if type(tag) is tuple and len(tag) == 4 and tag[0] == "_rt":
            self._rt_first.setdefault((tag[1], tag[2], tag[3]), ev.time)

    def on_deliver(self, ev: DeliverEvent) -> None:
        tag = ev.tag
        if type(tag) is tuple and len(tag) == 4 and tag[0] == "_rt":
            first = self._rt_first.get((tag[1], tag[2], tag[3]))
            if first is not None:
                # The copy that arrived departed at (time - its transit);
                # anything after the first transmission is retry stall.
                copy_depart = ev.time - ev.latency
                self._rt_delay.setdefault(
                    (tag[1], tag[2], first), max(0.0, copy_depart - first))

    def on_fault_retransmit(self, ev: RetransmitEvent) -> None:
        self.retransmits += 1

    # ------------------------------------------------------------------
    # Analytic transit model
    # ------------------------------------------------------------------
    def transit_components(self, src: int, dst: int, size: int,
                           inter: bool) -> List[Tuple[str, float]]:
        """Uncontended components of one message's transit, in path order.

        Mirrors :meth:`Router.uncontended_time`, split per resource and
        generalised to multi-hop WAN shapes (star/ring relays pay one
        WAN channel and one gateway service per hop).
        """
        topo = self.topology
        local = topo.local
        if not inter:
            return [("lat_local", local.latency),
                    ("bw_local", size / local.bandwidth)]
        wide = topo.wide
        hops = len(topo.wan_route(self._cluster[src], self._cluster[dst]))
        return [
            ("lat_local", 2 * local.latency),
            ("bw_local", 2 * (size / local.bandwidth)),
            ("lat_wan", hops * wide.latency),
            ("bw_wan", hops * (size / wide.bandwidth)),
            ("gateway", (hops + 1) * topo.gateway_overhead),
        ]

    def transit_breakdown(self, seg: Segment, dst_rank: int,
                          window_start: float) -> List[Tuple[str, float]]:
        """Split ``[window_start, seg.end]`` of a blocked interval over
        the transit components of its releasing message.

        The components are priced over the *full* transit
        ``[send_time, release]`` and scaled to the visible window; the
        final piece is computed as the exact float remainder so the
        pieces always sum to the window length.
        """
        release = seg.end
        send_time = seg.send_time
        visible = release - window_start
        if visible <= 0:
            return []
        full = release - send_time
        if full <= 0:
            return [("queue", visible)]
        comps = self.transit_components(seg.src, dst_rank, seg.size,
                                        seg.inter)
        base = math.fsum(c for _, c in comps)
        residual = full - base
        if residual > 0:
            retry = 0.0
            if seg.inter:
                retry = self._rt_delay.get(
                    (seg.src, dst_rank, send_time), 0.0)
            retry_part = min(residual, retry) if retry > 0 else 0.0
            comps = comps + [("retry", retry_part),
                             ("queue", residual - retry_part)]
            scale = visible / full
        else:
            # Observed transit under the analytic floor (float rounding,
            # or a window clipped below the components): scale down.
            scale = visible / base if base > 0 else 0.0
        out = [(name, c * scale) for name, c in comps[:-1]]
        out.append((comps[-1][0],
                    visible - math.fsum(v for _, v in out)))
        return out

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _contributions(self, led: ProcLedger, finish: float,
                       wall: float) -> List[Tuple[str, float]]:
        """(bucket, seconds) pieces telescoping over ``[0, wall]``."""
        out: List[Tuple[str, float]] = []
        cursor = 0.0
        for seg in led.segs:
            if seg.start != cursor:
                # Positive: engine-level primitive or zero-compute CPU
                # stall we cannot see.  (Negative would mean overlapping
                # segments; keeping the signed gap preserves the sum.)
                out.append(("unattributed", seg.start - cursor))
            kind = seg.kind
            if kind == "compute":
                out.append(("compute", seg.pure))
                queued = (seg.end - seg.start) - seg.pure
                if queued != 0.0:
                    out.append(("cpu_wait", queued))
            elif kind == "blocked":
                length = seg.end - seg.start
                if seg.send_time < 0:
                    out.append(("wait", length))
                else:
                    window_start = (seg.send_time
                                    if seg.send_time > seg.start
                                    else seg.start)
                    visible = seg.end - window_start
                    if visible < length:
                        out.append(("wait", length - visible))
                    out.extend(self.transit_breakdown(seg, led.rank,
                                                      window_start))
            elif kind == "sleep":
                out.append(("sleep", seg.end - seg.start))
            else:  # send_ov / recv_ov
                out.append(("overhead", seg.end - seg.start))
            cursor = seg.end
        if finish != cursor:
            out.append(("unattributed", finish - cursor))
        if wall != finish:
            out.append(("imbalance", wall - finish))
        return out

    def finalize(self, machine) -> "Profile":
        """Seal the ledgers into a :class:`Profile` for ``machine``'s run."""
        wall = machine.runtime()
        per_rank: List[RankAttribution] = []
        for rank in machine.topology.ranks():
            finish = machine.rank_stats[rank].finish_time
            led = self.ledgers.get(f"rank{rank}")
            if led is None:
                led = ProcLedger(f"rank{rank}", rank, False)
            pieces = self._contributions(led, finish, wall)
            values: Dict[str, List[float]] = {}
            for bucket, v in pieces:
                values.setdefault(bucket, []).append(v)
            buckets = {b: math.fsum(values.get(b, ())) for b in BUCKETS}
            per_rank.append(RankAttribution(rank, finish, wall, buckets))
        return Profile(self, wall, per_rank)


class Profile:
    """Finished attribution: per-rank buckets, run totals, critical path."""

    def __init__(self, profiler: Profiler, wall: float,
                 per_rank: List[RankAttribution]) -> None:
        self.profiler = profiler
        self.topology = profiler.topology
        self.wall = wall
        self.per_rank = per_rank
        self._path = None

    # -- attribution ----------------------------------------------------
    @property
    def run_buckets(self) -> Dict[str, float]:
        """Whole-run attribution: mean over ranks (each rank spans the
        same ``[0, wall]``, so the mean sums to wall time too)."""
        n = len(self.per_rank) or 1
        return {b: math.fsum(r.buckets[b] for r in self.per_rank) / n
                for b in BUCKETS}

    def max_residual(self) -> float:
        """Largest per-rank attribution-sum error (should be ~ULPs)."""
        if not self.per_rank:
            return 0.0
        return max(abs(r.residual()) for r in self.per_rank)

    def dominant_bucket(self, exclude: Tuple[str, ...] = ()) -> str:
        """The largest whole-run bucket (ties break in BUCKETS order)."""
        buckets = self.run_buckets
        best, best_v = BUCKETS[0], -math.inf
        for b in BUCKETS:
            if b in exclude:
                continue
            if buckets[b] > best_v:
                best, best_v = b, buckets[b]
        return best

    # -- critical path --------------------------------------------------
    def critical_path(self):
        """The exact critical path (lazy; see :mod:`repro.critpath.path`)."""
        if self._path is None:
            from .path import compute_critical_path

            self._path = compute_critical_path(self)
        return self._path

    # -- exports --------------------------------------------------------
    def to_dict(self, path_steps: int = 50) -> Dict[str, Any]:
        path = self.critical_path()
        return {
            "wall_time_s": self.wall,
            "attribution": {
                "run": self.run_buckets,
                "per_rank": [
                    {"rank": r.rank, "finish_s": r.finish,
                     "buckets": r.buckets, "residual_s": r.residual()}
                    for r in self.per_rank
                ],
                "max_residual_s": self.max_residual(),
            },
            "critical_path": path.to_dict(max_steps=path_steps),
            "sensitivity": path.sensitivity(),
            "retransmits_seen": self.profiler.retransmits,
        }

    def metrics_registry(self):
        """Attribution as a :class:`~repro.obs.metrics.MetricsRegistry`
        (gauges ``critpath.run.<bucket>_s`` etc.), for run reports."""
        from ..obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        for bucket, v in self.run_buckets.items():
            reg.gauge(f"critpath.run.{bucket}_s").set(v)
        reg.gauge("critpath.wall_s").set(self.wall)
        sens = self.critical_path().sensitivity()
        for key, v in sens.items():
            reg.gauge(f"critpath.{key}").set(v)
        return reg

    def render_text(self, top_edges: int = 8) -> str:
        """Human-readable attribution + critical-path report."""
        lines = []
        run = self.run_buckets
        wall = self.wall or 1.0
        lines.append(f"wall time {self.wall:.6f}s; whole-run attribution "
                     f"(mean over {len(self.per_rank)} ranks):")
        for bucket in BUCKETS:
            v = run[bucket]
            if abs(v) < 1e-12:
                continue
            lines.append(f"  {bucket:<13s} {v:12.6f}s  {100 * v / wall:6.2f}%")
        lines.append(f"  attribution residual: {self.max_residual():.3e}s "
                     f"(worst rank)")
        path = self.critical_path()
        lines.append("")
        lines.append(path.render_text(top_edges=top_edges))
        return "\n".join(lines)


def profile_run(topology: Topology, main, seed: int = 0, faults=None,
                bus=None, extra_subscribers: Tuple[Any, ...] = ()):
    """Run ``main`` on ``topology`` with a profiler attached.

    Returns ``(RunResult, Profile)``.  ``extra_subscribers`` are attached
    to the same bus (e.g. a :class:`~repro.obs.perfetto.PerfettoTrace`).
    """
    from ..obs.bus import ProbeBus
    from ..runtime.run import run_spmd

    if bus is None:
        bus = ProbeBus()
    profiler = Profiler(topology)
    bus.attach(profiler)
    for sub in extra_subscribers:
        bus.attach(sub)
    result = run_spmd(topology, main, seed=seed, bus=bus, faults=faults)
    return result, profiler.finalize(result.machine)


def profile_app(app: str, variant: str, topology: Topology,
                config: Any = None, scale: str = "bench", seed: int = 0,
                faults=None, extra_subscribers: Tuple[Any, ...] = ()):
    """Profile one registered application variant; ``(result, profile)``."""
    from ..apps import default_config, get_builder

    if config is None:
        config = default_config(app, scale)
    main = get_builder(app, variant)(config)
    return profile_run(topology, main, seed=seed, faults=faults,
                       extra_subscribers=extra_subscribers)
