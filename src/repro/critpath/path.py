"""Exact critical-path extraction and sensitivity blame.

The critical path of a run is the chain of causally-dependent intervals
that ends at the slowest rank's finish and cannot be shortened without
changing some dependency's timing.  We extract it by walking *backward*
through the profiler's per-process ledgers:

- inside a process, time flows through whatever segment covers the
  current instant (compute, overhead, sleep — all "on-path");
- a **blocked** segment means the instant was waiting on a message: the
  path crosses a dependency edge to the *sender*, resuming at the send
  op that produced the releasing message (resolved through the
  profiler's send registry — exact, not heuristic);
- if the receiver blocked before the sender even departed, the wait up
  to the depart time is the sender's fault, so the walk transfers at the
  depart instant and charges only the transit window to the edge.

Each edge step carries the analytic per-resource decomposition of its
transit (local/WAN latency, bandwidth serialization, gateway service,
transport retries, queueing residual) from
:meth:`~repro.critpath.profile.Profiler.transit_breakdown`, plus its
**slack**: how much the message's own transit could grow before this
edge stops hiding behind the receiver's earlier block (slack 0 means the
transit is fully exposed — any latency/bandwidth degradation of this
edge lengthens the run).

Summing the WAN-latency traversals over exposed edges yields the
first-order **latency sensitivity** ``dT/dL`` (how many WAN latencies
the run serializes end-to-end); the analogous byte sum gives the
bandwidth blame.  These are the quantities the paper's Figure 3 grid
measures empirically — the tests cross-validate the predicted ranking
against direct simulation.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

from .profile import BUCKETS, ProcLedger, Segment

#: Hard cap on walk length; a run with more causal steps than this on a
#: single path would be pathological (bench runs are ~1e4-1e5 steps).
MAX_STEPS = 2_000_000


class PathStep:
    """One interval on the critical path, earliest first after the walk."""

    __slots__ = ("kind", "proc", "rank", "start", "end", "src_rank",
                 "size", "resource", "components", "slack", "hops")

    def __init__(self, kind: str, proc: str, rank: int, start: float,
                 end: float, src_rank: int = -1, size: int = 0,
                 resource: str = "", components=None,
                 slack: float = 0.0, hops: int = 0) -> None:
        self.kind = kind          # compute|overhead|sleep|edge|wait|gap
        self.proc = proc
        self.rank = rank          # the rank whose timeline holds the step
        self.start = start
        self.end = end
        self.src_rank = src_rank  # edge: sender rank
        self.size = size          # edge: message bytes
        self.resource = resource  # edge: dominant component bucket
        self.components = components or {}
        self.slack = slack
        self.hops = hops          # edge: WAN channels crossed (0 = local)

    @property
    def length(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        d = {"kind": self.kind, "proc": self.proc, "rank": self.rank,
             "start_s": self.start, "end_s": self.end,
             "length_s": self.length}
        if self.kind == "edge":
            d.update(src_rank=self.src_rank, size=self.size,
                     resource=self.resource, slack_s=self.slack,
                     wan_hops=self.hops,
                     components={k: v for k, v in self.components.items()
                                 if v != 0.0})
        return d


class CriticalPath:
    """The extracted path plus its per-resource totals and blame."""

    def __init__(self, steps: List[PathStep], wall: float,
                 end_rank: int, wan_latency: float,
                 wan_bandwidth: float) -> None:
        self.steps = steps
        self.wall = wall
        self.end_rank = end_rank
        self._wan_latency = wan_latency
        self._wan_bandwidth = wan_bandwidth
        self._totals: Optional[Dict[str, float]] = None

    # -- aggregation ----------------------------------------------------
    def totals(self) -> Dict[str, float]:
        """Seconds per bucket along the path (sums to ~wall time)."""
        if self._totals is not None:
            return self._totals
        pieces: Dict[str, List[float]] = {}
        for step in self.steps:
            if step.kind == "edge":
                for bucket, v in step.components.items():
                    pieces.setdefault(bucket, []).append(v)
            elif step.kind == "compute":
                pieces.setdefault("compute", []).append(step.length)
            elif step.kind == "overhead":
                pieces.setdefault("overhead", []).append(step.length)
            elif step.kind == "sleep":
                pieces.setdefault("sleep", []).append(step.length)
            elif step.kind == "wait":
                pieces.setdefault("wait", []).append(step.length)
            else:
                pieces.setdefault("unattributed", []).append(step.length)
        self._totals = {b: math.fsum(pieces.get(b, ())) for b in BUCKETS}
        return self._totals

    def sensitivity(self) -> Dict[str, float]:
        """First-order blame: how the path responds to L1 degradation.

        - ``wan_latency_traversals``: WAN channels crossed by on-path
          edges (dT ~= traversals * dL to first order — each on-path
          release shifts by the full latency change per hop);
        - ``wan_bytes_on_path``: bytes * hops over on-path edges
          (dT ~= bytes_on_path * d(1/bw));
        - ``latency_blame_s`` / ``bandwidth_blame_s``: seconds the path
          currently spends in WAN propagation / WAN serialization
          (scaled to the visible windows, so they sum into wall time);
        - ``exposed_edges`` / ``slack_hidden_edges``: edges whose transit
          is fully on the path vs. partially hidden behind receiver work.
        """
        totals = self.totals()
        lat = totals["lat_wan"]
        bw = totals["bw_wan"]
        traversals = 0.0
        bytes_on_path = 0.0
        for s in self.steps:
            if s.kind == "edge" and s.hops:
                traversals += s.hops
                bytes_on_path += s.size * s.hops
        exposed = sum(1 for s in self.steps
                      if s.kind == "edge" and s.slack == 0.0)
        hidden = sum(1 for s in self.steps
                     if s.kind == "edge" and s.slack > 0.0)
        return {
            "wan_latency_traversals": traversals,
            "wan_bytes_on_path": bytes_on_path,
            "latency_blame_s": lat,
            "bandwidth_blame_s": bw,
            "latency_blame_frac": lat / self.wall if self.wall else 0.0,
            "bandwidth_blame_frac": bw / self.wall if self.wall else 0.0,
            "exposed_edges": float(exposed),
            "slack_hidden_edges": float(hidden),
        }

    # -- exports --------------------------------------------------------
    def to_dict(self, max_steps: int = 50) -> Dict[str, Any]:
        """JSON form: totals plus the ``max_steps`` longest steps."""
        longest = sorted(self.steps, key=lambda s: -s.length)[:max_steps]
        longest.sort(key=lambda s: s.start)
        return {
            "num_steps": len(self.steps),
            "end_rank": self.end_rank,
            "totals": {k: v for k, v in self.totals().items() if v != 0.0},
            "longest_steps": [s.to_dict() for s in longest],
        }

    def render_text(self, top_edges: int = 8) -> str:
        totals = self.totals()
        lines = [f"critical path: {len(self.steps)} steps ending on "
                 f"rank {self.end_rank}; per-resource totals:"]
        wall = self.wall or 1.0
        for bucket in BUCKETS:
            v = totals[bucket]
            if abs(v) < 1e-12:
                continue
            lines.append(f"  {bucket:<13s} {v:12.6f}s  {100 * v / wall:6.2f}%")
        edges = [s for s in self.steps if s.kind == "edge"]
        if edges:
            edges.sort(key=lambda s: -s.length)
            lines.append(f"  {len(edges)} message edges; longest:")
            for s in edges[:top_edges]:
                lines.append(
                    f"    r{s.src_rank}->r{s.rank} {s.size}B "
                    f"@{s.start:.6f}s +{s.length * 1e6:.1f}us "
                    f"[{s.resource}] slack {s.slack * 1e6:.1f}us")
        sens = self.sensitivity()
        lines.append(
            f"  sensitivity: {sens['wan_latency_traversals']:.1f} WAN-latency "
            f"traversals ({100 * sens['latency_blame_frac']:.1f}% of wall), "
            f"{sens['wan_bytes_on_path'] / 1e6:.2f}MB WAN bytes on path "
            f"({100 * sens['bandwidth_blame_frac']:.1f}% of wall)")
        return "\n".join(lines)


def _locate(led: ProcLedger, t: float) -> Optional[Segment]:
    """Last segment starting strictly before ``t`` (None if t precedes all)."""
    idx = bisect_left(led.starts(), t) - 1
    if idx < 0:
        return None
    return led.segs[idx]


def compute_critical_path(profile) -> CriticalPath:
    """Walk backward from the slowest rank's finish to time zero."""
    profiler = profile.profiler
    ledgers = profiler.ledgers
    send_index = profiler.send_index
    topo = profile.topology

    # Deterministic end: slowest rank, lowest rank number on ties.
    end_rank = 0
    end_t = -1.0
    for att in profile.per_rank:
        if att.finish > end_t:
            end_rank, end_t = att.rank, att.finish
    led = ledgers.get(f"rank{end_rank}")
    steps: List[PathStep] = []
    t = end_t
    while led is not None and t > 0.0 and len(steps) < MAX_STEPS:
        seg = _locate(led, t)
        if seg is None:
            # Before the process's first segment: startup gap to zero.
            if t > 0:
                steps.append(PathStep("gap", led.name, led.rank, 0.0, t))
            break
        if seg.end < t:
            # A hole in the ledger (engine-level primitive): bridge it.
            steps.append(PathStep("gap", led.name, led.rank, seg.end, t))
            t = seg.end
            continue
        if seg.kind == "blocked":
            prev_t = t
            if t < seg.end:
                # Mid-window entry: the release at seg.end hadn't happened
                # by t, so it cannot explain progress at t — the process
                # was simply waiting since seg.start.  (Reached only via
                # float fuzz at a segment boundary, where a blocked start
                # computed as ``time - waited`` lands a few ULPs below
                # the depart instant the walk jumped to.)
                steps.append(PathStep("wait", led.name, led.rank,
                                      seg.start, t))
                t = seg.start
                continue
            if seg.send_time < 0:
                # Unknown cause (hand-built event): treat as pure wait.
                steps.append(PathStep("wait", led.name, led.rank,
                                      seg.start, t))
                t = seg.start
                continue
            # Resolve the sender first: with the send op in hand the path
            # runs through the message's *full* transit (the part hidden
            # behind the receiver's earlier work included — the chain is
            # causal, not a slice of the receiver's timeline).  Without
            # it, cover only the visible window and stay on the receiver.
            sender = None
            hit = send_index.get((seg.src, led.rank, seg.tag,
                                  seg.send_time))
            if hit is not None:
                cand = ledgers.get(hit[0])
                if (cand is not None and hit[1] < prev_t
                        and seg.send_time < prev_t):
                    sender = cand
            window_start = (seg.send_time if seg.send_time > seg.start
                            else seg.start)
            edge_start = seg.send_time if sender is not None else window_start
            slack = max(0.0, window_start - seg.send_time)
            comps = dict(profiler.transit_breakdown(seg, led.rank,
                                                    edge_start))
            resource = ""
            best = -math.inf
            for bucket in BUCKETS:
                v = comps.get(bucket, 0.0)
                if v > best:
                    resource, best = bucket, v
            hops = 0
            if seg.inter:
                hops = len(topo.wan_route(topo.cluster_of(seg.src),
                                          topo.cluster_of(led.rank)))
            if t > edge_start:
                steps.append(PathStep(
                    "edge", led.name, led.rank, edge_start, t,
                    src_rank=seg.src, size=seg.size, resource=resource,
                    components=comps, slack=slack, hops=hops))
            if sender is not None:
                # Resume on the sender at the depart instant — its own
                # send-overhead segment ends exactly there, so the walk
                # picks up the sender's timeline without a hole.
                led = sender
                t = seg.send_time
                continue
            # Unresolved sender: charge the receiver's wait before the
            # window and stay on this timeline.
            wait_end = min(window_start, prev_t)
            if wait_end > seg.start:
                steps.append(PathStep("wait", led.name, led.rank,
                                      seg.start, wait_end))
            t = seg.start
        else:
            kind = ("compute" if seg.kind == "compute"
                    else "sleep" if seg.kind == "sleep" else "overhead")
            steps.append(PathStep(kind, led.name, led.rank, seg.start,
                                  min(seg.end, t)))
            t = seg.start
    steps.reverse()
    return CriticalPath(steps, profile.wall, end_rank,
                        wan_latency=topo.wide.latency,
                        wan_bandwidth=topo.wide.bandwidth)
