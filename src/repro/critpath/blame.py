"""Dominant-bottleneck annotation of experiment grids.

Profiles an application at each requested (bandwidth, latency) grid
point and reduces every point to the one-letter code of its dominant
attribution bucket (see :data:`~repro.critpath.profile.BUCKET_LETTERS`),
so a Figure-3 panel can be read next to *why* each cell is slow:
``C`` compute-bound, ``L`` WAN-latency-bound, ``B`` WAN-bandwidth-bound,
``Q`` queueing, ``W`` sender-wait/imbalance, and so on.

The helpers take explicit bandwidth/latency lists rather than hardwiring
the paper grid, so tests can annotate a single point cheaply while the
CLI sweeps the full 6x7 grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..experiments import grids
from .profile import BUCKET_LETTERS, profile_app


def dominant_bucket_at(app: str, variant: str, bandwidth: float,
                       latency_ms: float, scale: str = "bench",
                       seed: int = 0, faults=None,
                       clusters: int = grids.NUM_CLUSTERS,
                       cluster_size: int = grids.CLUSTER_SIZE) -> str:
    """Profile one grid point; return its dominant attribution bucket."""
    topo = grids.multi_cluster(bandwidth, latency_ms, clusters, cluster_size)
    _, profile = profile_app(app, variant, topo, scale=scale, seed=seed,
                             faults=faults)
    return profile.dominant_bucket()


def blame_grid(app: str, variant: str,
               bandwidths: Optional[List[float]] = None,
               latencies_ms: Optional[List[float]] = None,
               scale: str = "bench", seed: int = 0,
               faults=None) -> Dict[Tuple[float, float], str]:
    """Dominant bucket per (bandwidth, latency) point of a panel grid."""
    bandwidths = list(bandwidths if bandwidths is not None
                      else grids.BANDWIDTHS_MBYTE_S)
    latencies_ms = list(latencies_ms if latencies_ms is not None
                        else grids.LATENCIES_MS)
    out: Dict[Tuple[float, float], str] = {}
    for bw in bandwidths:
        for lat in latencies_ms:
            out[(bw, lat)] = dominant_bucket_at(
                app, variant, bw, lat, scale=scale, seed=seed, faults=faults)
    return out


def render_blame_panel(app: str, variant: str,
                       grid: Dict[Tuple[float, float], str],
                       bandwidths: Optional[List[float]] = None,
                       latencies_ms: Optional[List[float]] = None) -> str:
    """Letter-grid rendering of a :func:`blame_grid` result plus legend."""
    from ..experiments.report import render_table

    bandwidths = sorted(bandwidths if bandwidths is not None
                        else grids.BANDWIDTHS_MBYTE_S, reverse=True)
    latencies_ms = list(latencies_ms if latencies_ms is not None
                        else grids.LATENCIES_MS)
    headers = ["latency \\ bw MByte/s"] + [f"{bw:g}" for bw in bandwidths]
    rows = []
    used = set()
    for lat in latencies_ms:
        cells = []
        for bw in bandwidths:
            bucket = grid[(bw, lat)]
            used.add(bucket)
            cells.append(BUCKET_LETTERS[bucket])
        rows.append([f"{lat:g} ms"] + cells)
    table = render_table(
        headers, rows,
        title=f"{app.upper()} {variant} — dominant bottleneck bucket")
    legend = "  ".join(f"{BUCKET_LETTERS[b]}={b}" for b in sorted(used))
    return table + "\nlegend: " + legend
